"""Tests for timeline rendering: view model, predominant-pixel logic
and the five modes (Sections II-B, VI-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TopologyInfo, TraceBuilder, WorkerState
from repro.render import (HeatmapMode, NumaHeatmapMode, NumaMode, StateMode,
                          TimelineView, TypeMode, render_timeline, state_color)
from repro.render.timeline import _predominant_keys


class TestTimelineView:
    def test_fit_covers_trace(self, seidel_trace_small):
        view = TimelineView.fit(seidel_trace_small, 640, 200)
        assert view.start == seidel_trace_small.begin
        assert view.end == seidel_trace_small.end

    def test_pixel_intervals_partition_view(self):
        view = TimelineView(0, 1000, width=7, height=10)
        cursor = 0
        for x in range(view.width):
            t0, t1 = view.pixel_interval(x)
            assert t0 == cursor
            assert t1 > t0
            cursor = t1
        assert cursor == 1000

    def test_zoom_in_narrows_span(self):
        view = TimelineView(0, 1000, width=10, height=10)
        zoomed = view.zoom(2.0)
        assert zoomed.duration == 500
        center = (view.start + view.end) // 2
        assert zoomed.start <= center <= zoomed.end

    def test_zoom_rejects_nonpositive(self):
        view = TimelineView(0, 100)
        with pytest.raises(ValueError):
            view.zoom(0)

    def test_scroll_shifts_window(self):
        view = TimelineView(0, 1000)
        assert view.scroll(0.5).start == 500
        assert view.scroll(-0.25).start == -250

    def test_views_are_immutable(self):
        view = TimelineView(0, 100)
        with pytest.raises(Exception):
            view.start = 5

    def test_empty_view_rejected(self):
        with pytest.raises(ValueError):
            TimelineView(10, 10)

    def test_lane_geometry(self):
        view = TimelineView(0, 100, width=10, height=64)
        lane, tops = view.lane_geometry(16)
        assert lane == 4
        assert tops == [4 * core for core in range(16)]


class TestPredominantKeys:
    def brute_force(self, starts, ends, keys, view):
        result = np.full(view.width, -1, dtype=np.int64)
        for x in range(view.width):
            t0, t1 = view.pixel_interval(x)
            coverage = {}
            for index in range(len(starts)):
                overlap = min(ends[index], t1) - max(starts[index], t0)
                if overlap > 0 and keys[index] >= 0:
                    coverage[keys[index]] = (coverage.get(keys[index], 0)
                                             + overlap)
            if coverage:
                result[x] = max(coverage,
                                key=lambda k: (coverage[k], -k))
        return result

    def test_single_event_fills_its_pixels(self):
        view = TimelineView(0, 100, width=10, height=4)
        starts = np.asarray([20])
        ends = np.asarray([50])
        keys = np.asarray([3])
        pixels = _predominant_keys(starts, ends, keys, view)
        assert list(pixels[2:5]) == [3, 3, 3]
        assert (pixels[:2] == -1).all()
        assert (pixels[5:] == -1).all()

    def test_majority_wins_within_pixel(self):
        view = TimelineView(0, 100, width=1, height=4)
        starts = np.asarray([0, 60])
        ends = np.asarray([60, 100])
        keys = np.asarray([1, 2])
        assert _predominant_keys(starts, ends, keys, view)[0] == 1

    @given(seed=st.integers(min_value=0, max_value=1000),
           width=st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, seed, width):
        rng = np.random.default_rng(seed)
        cursor = 0
        starts, ends, keys = [], [], []
        for __ in range(rng.integers(0, 15)):
            cursor += int(rng.integers(0, 30))
            duration = int(rng.integers(1, 60))
            starts.append(cursor)
            ends.append(cursor + duration)
            keys.append(int(rng.integers(0, 4)))
            cursor += duration
        view = TimelineView(0, max(cursor, 1) + 10, width=width, height=4)
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.int64)
        fast = _predominant_keys(starts, ends, keys, view)
        slow = self.brute_force(starts, ends, keys, view)
        assert (fast == slow).all()


def single_core_trace():
    """One core, two states: RUNNING [0, 600), IDLE [600, 1000)."""
    builder = TraceBuilder(TopologyInfo(1, 1))
    builder.state_interval(0, int(WorkerState.RUNNING), 0, 600)
    builder.state_interval(0, int(WorkerState.IDLE), 600, 1000)
    builder.task_execution(0, 0, 0, 0, 600)
    builder.describe_task_type(
        __import__("repro.core", fromlist=["TaskTypeInfo"]).TaskTypeInfo(
            type_id=0, name="t"))
    return builder.build()


class TestStateMode:
    def test_colors_match_states(self):
        trace = single_core_trace()
        view = TimelineView(0, 1000, width=10, height=4)
        fb = render_timeline(trace, StateMode(), view)
        assert tuple(fb.pixels[0, 0]) == state_color(WorkerState.RUNNING)
        assert tuple(fb.pixels[0, 9]) == state_color(WorkerState.IDLE)

    def test_rect_aggregation_reduces_calls(self):
        trace = single_core_trace()
        view = TimelineView(0, 1000, width=100, height=4)
        fb = render_timeline(trace, StateMode(), view)
        # Two constant-color runs -> exactly two rectangles.
        assert fb.rect_calls == 2

    def test_naive_mode_draws_per_event(self, seidel_trace_small):
        view = TimelineView.fit(seidel_trace_small, 300, 120)
        optimized = render_timeline(seidel_trace_small, StateMode(), view,
                                    optimized=True)
        naive = render_timeline(seidel_trace_small, StateMode(), view,
                                optimized=False)
        assert naive.rect_calls == len(seidel_trace_small.states)
        assert optimized.rect_calls < naive.rect_calls

    def test_all_modes_render_real_trace(self, seidel_trace_small):
        view = TimelineView.fit(seidel_trace_small, 200, 100)
        for mode in (StateMode(), HeatmapMode(), TypeMode(),
                     NumaMode("read"), NumaMode("write"),
                     NumaHeatmapMode()):
            fb = render_timeline(seidel_trace_small, mode, view)
            assert len(fb.unique_colors()) > 1


class TestHeatmapMode:
    def test_longer_tasks_darker(self):
        builder = TraceBuilder(TopologyInfo(1, 1))
        builder.task_execution(0, 0, 0, 0, 100)        # short
        builder.task_execution(1, 0, 0, 500, 1500)     # long
        trace = builder.build()
        view = TimelineView(0, 1500, width=15, height=4)
        fb = render_timeline(trace, HeatmapMode(shades=10), view)
        short_pixel = fb.pixels[0, 0]
        long_pixel = fb.pixels[0, 10]
        # Darker = lower green/blue channels.
        assert long_pixel[1] < short_pixel[1]

    def test_explicit_bounds(self, seidel_trace_small):
        mode = HeatmapMode(shades=5, minimum=0, maximum=10**9)
        view = TimelineView.fit(seidel_trace_small, 100, 50)
        fb = render_timeline(seidel_trace_small, mode, view)
        # All durations tiny vs. the maximum: everything in shade 0
        # (plus the two lane backgrounds and the unused bottom strip).
        shades = set(fb.unique_colors())
        assert len(shades) <= 4

    def test_filtered_tasks_not_rendered(self, seidel_trace_small):
        from repro.core import TaskTypeFilter
        view = TimelineView.fit(seidel_trace_small, 120, 60)
        everything = render_timeline(seidel_trace_small,
                                     HeatmapMode(), view)
        only_init = render_timeline(
            seidel_trace_small,
            HeatmapMode(task_filter=TaskTypeFilter("seidel_init")), view)
        assert only_init.pixels_drawn < everything.pixels_drawn


class TestNumaModes:
    def test_numa_mode_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            NumaMode("sideways")

    def test_numa_read_map_band_colors(self, seidel_trace_small):
        view = TimelineView.fit(seidel_trace_small, 150, 64)
        fb = render_timeline(seidel_trace_small, NumaMode("read"), view)
        from repro.render import numa_palette
        palette = set(
            numa_palette(seidel_trace_small.topology.num_nodes))
        present = fb.unique_colors() & palette
        assert len(present) >= 2

    def test_numa_heatmap_gradient_colors(self, seidel_trace_small):
        view = TimelineView.fit(seidel_trace_small, 150, 64)
        fb = render_timeline(seidel_trace_small, NumaHeatmapMode(), view)
        assert len(fb.unique_colors()) > 2


class TestZoomConsistency:
    def test_zoomed_render_matches_full_render_colors(
            self, seidel_trace_small):
        """Zooming into a region renders the same states (possibly at
        finer granularity) — no events appear or vanish."""
        trace = seidel_trace_small
        full_view = TimelineView.fit(trace, 400, 64)
        full = render_timeline(trace, StateMode(), full_view)
        zoom = full_view.zoom(4.0)
        zoomed = render_timeline(trace, StateMode(), zoom)
        assert zoomed.unique_colors() <= (full.unique_colors()
                                          | {(16, 16, 16), (40, 40, 40)})
