"""The documentation is part of the test surface.

CI runs doctests over the docs' code examples and a docstring-presence
lint over the public trace-format/analysis API; this module runs the
same checks locally so they cannot rot between CI environments.
"""

import doctest
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = ["docs/trace-format.md", "docs/architecture.md",
             "docs/service-api.md"]


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_doc_examples_execute(relpath):
    results = doctest.testfile(str(ROOT / relpath),
                               module_relative=False, verbose=False)
    assert results.attempted > 0, "doc has no examples: " + relpath
    assert results.failed == 0


def test_docs_exist_and_cross_link():
    readme = (ROOT / "README.md").read_text()
    for relpath in ("docs/architecture.md", "docs/trace-format.md",
                    "docs/service-api.md", "docs/paper-mapping.md"):
        assert (ROOT / relpath).is_file(), relpath
        assert relpath in readme, "README does not link " + relpath


def test_no_dangling_doc_references():
    """Every markdown link and repo path named in README/docs
    resolves to a real file (tools/check_docs_links.py, CI-wired)."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from check_docs_links import check
        paths = [ROOT / "README.md"] + sorted(ROOT.glob("docs/*.md"))
        assert check(paths) == []
    finally:
        sys.path.pop(0)


def test_paper_mapping_covers_every_benchmark():
    mapping = (ROOT / "docs" / "paper-mapping.md").read_text()
    benches = sorted((ROOT / "benchmarks").glob("bench_*.py"))
    assert benches
    for bench in benches:
        assert bench.name in mapping, \
            bench.name + " missing from docs/paper-mapping.md"
        assert "docs/paper-mapping.md" in bench.read_text(), \
            bench.name + " docstring does not link the mapping doc"


def test_quickstart_example_runs_and_covers_both_stores(tmp_path,
                                                        capsys):
    """The README's runnable quickstart executes end to end, and its
    columnar-store step reports parity with the object store."""
    import importlib.util
    spec = importlib.util.spec_from_file_location(
        "quickstart", str(ROOT / "examples" / "quickstart.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main(str(tmp_path))
    out = capsys.readouterr().out
    assert "columnar statistics identical to object statistics: True" \
        in out
    assert "columnar reload matches conversion: True" in out
    assert "matches parsed store: True" in out
    assert "self-diff empty: True" in out
    assert "quickstart.prv -> paraver, quickstart.json -> chrome" in out
    assert "paraver round trip keeps state times: True" in out
    assert "chrome round trip is exact: True" in out
    assert "crash-resumable sweep: 2 of 4 points survived the " \
        "interruption" in out
    assert "resumed sweep re-simulated completed points: 0" in out
    assert "sweep complete: 4 of 4 traces" in out
    assert "shared mapping on second open: True" in out
    assert "stats identical across clients: True" in out
    assert (tmp_path / "quickstart_suite" / "journal.sqlite").exists()
    assert (tmp_path / "quickstart.ostc").exists()
    assert (tmp_path / "quickstart_states.ppm").exists()
    assert (tmp_path / "quickstart_compare.ppm").exists()
    assert (tmp_path / "quickstart.prv").exists()
    assert (tmp_path / "quickstart.json").exists()


def test_public_trace_format_api_is_documented():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from lint_docstrings import lint
        assert lint(root=str(ROOT)) == []
    finally:
        sys.path.pop(0)
