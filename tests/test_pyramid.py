"""Tests for the persisted render pyramids (state index, tiles and
mapped min/max levels) and the deep-zoom render kernels they serve."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MinMaxTree, StateIndex, build_state_tiles
from repro.core.pyramid import tile_level_counts
from repro.render import (Framebuffer, StateMode, TimelineView,
                          render_counter, render_timeline)
from repro.render.counter_overlay import (_column_extremes,
                                          _column_extremes_zoomed)
from trace_gen import make_random_trace


def brute_dominant(starts, ends, states, t0, t1):
    """Reference: the dominant non-negative state of [t0, t1), ties to
    the smallest id, -1 when nothing overlaps."""
    coverage = {}
    for start, end, state in zip(starts, ends, states):
        overlap = min(int(end), t1) - max(int(start), t0)
        if overlap > 0 and state >= 0:
            coverage[state] = coverage.get(state, 0) + overlap
    if not coverage:
        return -1
    return max(coverage, key=lambda k: (coverage[k], -k))


def lane_strategy():
    """Sorted non-overlapping per-core state intervals, like the
    builders produce."""
    return st.lists(
        st.tuples(st.integers(0, 400), st.integers(1, 40),
                  st.integers(-1, 5)),
        min_size=0, max_size=30)


def materialize(items):
    """(starts, ends, states) arrays from (gap, duration, state)."""
    starts, ends, states = [], [], []
    cursor = 0
    for gap, duration, state in items:
        cursor += gap
        starts.append(cursor)
        cursor += duration
        ends.append(cursor)
        states.append(state)
    return (np.asarray(starts, dtype=np.int64),
            np.asarray(ends, dtype=np.int64),
            np.asarray(states, dtype=np.int64))


class TestStateIndex:
    @given(items=lane_strategy(), start=st.integers(0, 500),
           span=st.integers(1, 700), width=st.integers(1, 64))
    @settings(max_examples=150, deadline=None)
    def test_pixel_keys_match_brute_force(self, items, start, span,
                                          width):
        starts, ends, states = materialize(items)
        index = StateIndex.build(starts, ends, states)
        assert index is not None
        view = TimelineView(start, start + span, width=width, height=8)
        keys = index.pixel_keys(view)
        for x in range(width):
            t0, t1 = view.pixel_interval(x)
            assert keys[x] == brute_dominant(starts, ends, states,
                                             t0, t1), x

    def test_overlapping_state_lane_is_rejected(self):
        starts = np.asarray([0, 5], dtype=np.int64)
        ends = np.asarray([10, 15], dtype=np.int64)
        states = np.asarray([2, 2], dtype=np.int64)
        assert StateIndex.build(starts, ends, states) is None

    def test_overlap_across_states_is_fine(self):
        """Different states may overlap in time (only within-state
        overlap breaks the prefix sums)."""
        starts = np.asarray([0, 5], dtype=np.int64)
        ends = np.asarray([10, 15], dtype=np.int64)
        states = np.asarray([1, 2], dtype=np.int64)
        index = StateIndex.build(starts, ends, states)
        assert index is not None
        view = TimelineView(0, 15, width=3, height=8)
        assert list(index.pixel_keys(view)) == [1, 1, 2]

    def test_negative_states_never_dominate(self):
        starts = np.asarray([0, 10], dtype=np.int64)
        ends = np.asarray([10, 20], dtype=np.int64)
        states = np.asarray([-1, 3], dtype=np.int64)
        index = StateIndex.build(starts, ends, states)
        view = TimelineView(0, 20, width=2, height=8)
        assert list(index.pixel_keys(view)) == [-1, 3]

    def test_empty_lane(self):
        empty = np.empty(0, dtype=np.int64)
        index = StateIndex.build(empty, empty, empty)
        assert index is not None
        view = TimelineView(0, 100, width=10, height=8)
        assert (index.pixel_keys(view) == -1).all()


class TestStateTiles:
    def test_tiles_match_brute_force(self):
        trace = make_random_trace(7, events_per_core=40).to_columnar()
        for core in (0, 1):
            lane = trace.states.lane(core)
            index = trace.state_index(core)
            tiles = trace.state_tiles(core)
            assert tiles.level_counts() == \
                tile_level_counts(trace.end - trace.begin)
            for level in range(len(tiles.levels)):
                edges = tiles.edges(level)
                dominant = tiles.dominant(level)
                events = tiles.event_counts(level)
                for i in range(len(dominant)):
                    t0, t1 = int(edges[i]), int(edges[i + 1])
                    assert dominant[i] == brute_dominant(
                        lane["start"], lane["end"], lane["state"],
                        t0, t1), (level, i)
                    expected = int(((lane["start"] >= t0)
                                    & (lane["start"] < t1)).sum())
                    assert events[i] == expected, (level, i)

    def test_level_for_width_picks_coarsest_sufficient(self):
        trace = make_random_trace(7, events_per_core=40).to_columnar()
        tiles = trace.state_tiles(0)
        counts = tiles.level_counts()
        assert counts == [16, 64, 256, 1024]
        assert counts[tiles.level_for_width(10)] == 16
        assert counts[tiles.level_for_width(16)] == 16
        assert counts[tiles.level_for_width(17)] == 64
        assert counts[tiles.level_for_width(5000)] == 1024

    def test_tiny_span_drops_fine_levels(self):
        empty = np.empty(0, dtype=np.int64)
        index = StateIndex.build(empty, empty, empty)
        tiles = build_state_tiles(index, empty, 0, 100)
        assert tiles.level_counts() == [16, 64]


class TestFromLevels:
    @given(values=st.lists(st.floats(min_value=-1e9, max_value=1e9,
                                     allow_nan=False), min_size=0,
                           max_size=300),
           arity=st.integers(2, 7))
    @settings(max_examples=100, deadline=None)
    def test_roundtrips_built_tree(self, values, arity):
        built = MinMaxTree(values, arity=arity)
        tree = MinMaxTree.from_levels(np.asarray(values,
                                                 dtype=np.float64),
                                      built._mins[1:], built._maxs[1:],
                                      arity=arity)
        assert tree.bounds() == built.bounds()
        boundaries = np.linspace(0, len(values), 7).astype(np.int64)
        for got, expected in zip(tree.query_segments(boundaries),
                                 built.query_segments(boundaries)):
            assert np.array_equal(got, expected, equal_nan=True)

    def test_rejects_wrong_level_sizes(self):
        built = MinMaxTree(np.arange(500, dtype=np.float64), arity=10)
        with pytest.raises(ValueError):
            MinMaxTree.from_levels(np.arange(400, dtype=np.float64),
                                   built._mins[1:], built._maxs[1:],
                                   arity=10)

    def test_rejects_missing_root(self):
        built = MinMaxTree(np.arange(500, dtype=np.float64), arity=10)
        with pytest.raises(ValueError):
            MinMaxTree.from_levels(np.arange(500, dtype=np.float64),
                                   built._mins[1:2], built._maxs[1:2],
                                   arity=10)


class TestDeepZoomCounterKernel:
    """The gather-based deep-zoom kernel must match the scalar
    per-pixel loop bit for bit (satellite: `_pixel_edges` is only a
    partition when duration >= width — the widened-interval regime
    needs its own kernel)."""

    @given(samples=st.lists(st.tuples(st.integers(0, 300),
                                      st.floats(-1e6, 1e6,
                                                allow_nan=False)),
                            min_size=1, max_size=60),
           start=st.integers(-50, 320), span=st.integers(1, 400),
           width=st.integers(1, 128))
    @settings(max_examples=200, deadline=None)
    def test_vectorized_matches_scalar_all_regimes(self, samples, start,
                                                   span, width):
        samples.sort(key=lambda sample: sample[0])
        timestamps = np.asarray([t for t, __ in samples],
                                dtype=np.int64)
        values = np.asarray([v for __, v in samples], dtype=np.float64)
        view = TimelineView(start, start + span, width=width, height=16)
        if view.duration >= view.width:
            xs, vmins, vmaxs = _column_extremes(timestamps, values,
                                                view)
        else:
            xs, vmins, vmaxs = _column_extremes_zoomed(timestamps,
                                                       values, view)
        columns = {}
        for x in range(view.width):
            t0, t1 = view.pixel_interval(x)
            lo = int(np.searchsorted(timestamps, t0, side="left"))
            hi = int(np.searchsorted(timestamps, t1, side="left"))
            if hi > lo:
                columns[x] = (float(values[lo:hi].min()),
                              float(values[lo:hi].max()))
            else:
                center = (t0 + t1) // 2
                if timestamps[0] <= center <= timestamps[-1]:
                    value = float(np.interp(center, timestamps, values))
                    columns[x] = (value, value)
        assert list(xs) == sorted(columns)
        for x, vmin, vmax in zip(xs, vmins, vmaxs):
            assert (vmin, vmax) == columns[int(x)], x

    def test_deep_zoom_render_parity_both_stores(self):
        trace = make_random_trace(5, events_per_core=50)
        columnar = trace.to_columnar()
        base = TimelineView.fit(trace, width=100, height=40)
        deep = base.zoom(max(trace.duration, 2))
        for view in (deep, TimelineView(trace.begin, trace.begin + 60,
                                        width=100, height=40)):
            assert view.duration < view.width
            reference = Framebuffer(view.width, view.height)
            calls = render_counter(trace, 0, view, reference,
                                   vectorized=False)
            for store in (trace, columnar):
                fb = Framebuffer(view.width, view.height)
                assert render_counter(store, 0, view, fb) == calls
                assert np.array_equal(fb.pixels, reference.pixels)


class TestEmptyLaneGuards:
    """A counter with zero samples on a core draws nothing — on both
    stores and straight through the batched kernels (which used to
    index timestamps[0] unguarded)."""

    def empty_timestamps(self):
        return (np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))

    def test_kernels_accept_empty_lane(self):
        timestamps, values = self.empty_timestamps()
        view = TimelineView(0, 1000, width=50, height=20)
        for kernel in (_column_extremes, _column_extremes_zoomed):
            xs, vmins, vmaxs = kernel(timestamps, values, view)
            assert len(xs) == len(vmins) == len(vmaxs) == 0

    def test_render_empty_core_draws_nothing_both_stores(self):
        trace = make_random_trace(9, events_per_core=20)
        columnar = trace.to_columnar()
        absent = 999          # a counter no core ever sampled
        assert all(len(trace.counter_samples(core, absent)[0]) == 0
                   for core in range(trace.num_cores))
        view = TimelineView.fit(trace, width=80, height=30)
        for store in (trace, columnar):
            for core in range(trace.num_cores):
                for vectorized in (True, False):
                    fb = Framebuffer(view.width, view.height)
                    calls = render_counter(store, absent, view, fb,
                                           core=core,
                                           vectorized=vectorized)
                    assert calls == 0
                    assert fb.draw_calls == 0


class TestIndexedTimeline:
    def test_indexed_matches_reference_both_regimes(self):
        trace = make_random_trace(13, events_per_core=50)
        columnar = trace.to_columnar()
        base = TimelineView.fit(trace, width=160,
                                height=5 * trace.num_cores)
        views = (base, base.zoom(6),
                 base.zoom(max(trace.duration, 2)))
        for view in views:
            reference = render_timeline(trace, StateMode(), view,
                                        indexed=False)
            for store in (trace, columnar):
                fb = render_timeline(store, StateMode(), view)
                assert np.array_equal(fb.pixels, reference.pixels), view
                assert fb.draw_calls == reference.draw_calls, view

    def test_unindexable_lane_falls_back(self):
        """Lanes whose index cannot be built (within-state overlap)
        render through the reference path instead of wrong pixels."""
        trace = make_random_trace(13, events_per_core=30).to_columnar()
        view = TimelineView.fit(trace, width=64,
                                height=4 * trace.num_cores)
        reference = render_timeline(trace, StateMode(), view,
                                    indexed=False)
        # Poison the memoized indexes the way an unindexable lane
        # would: state_index(core) -> None for every core.
        trace._state_indexes = {core: None
                                for core in range(trace.num_cores)}
        fb = render_timeline(trace, StateMode(), view)
        assert np.array_equal(fb.pixels, reference.pixels)
        assert fb.draw_calls == reference.draw_calls

    def test_overlapping_lane_build_returns_none(self):
        starts = np.asarray([0, 5], dtype=np.int64)
        ends = np.asarray([10, 15], dtype=np.int64)
        states = np.asarray([3, 3], dtype=np.int64)
        assert StateIndex.build(starts, ends, states) is None
