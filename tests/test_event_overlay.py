"""Tests for discrete-event and annotation overlays."""


from repro.core import (Annotation, AnnotationStore, DiscreteEventKind,
                        TopologyInfo, TraceBuilder)
from repro.render import (Framebuffer, TimelineView, render_annotations,
                          render_discrete_events)


def trace_with_events():
    builder = TraceBuilder(TopologyInfo(1, 2))
    builder.state_interval(0, 0, 0, 1000)
    builder.state_interval(1, 0, 0, 1000)
    builder.discrete_event(0, int(DiscreteEventKind.TASK_CREATED), 100, 1)
    builder.discrete_event(0, int(DiscreteEventKind.TASK_CREATED), 105, 2)
    builder.discrete_event(0, int(DiscreteEventKind.TASK_STOLEN), 500, 1)
    builder.discrete_event(1, int(DiscreteEventKind.TASK_STOLEN), 700, 2)
    return builder.build()


class TestDiscreteEventOverlay:
    def test_markers_drawn_per_lane(self):
        trace = trace_with_events()
        view = TimelineView(0, 1000, width=400, height=20)
        fb = Framebuffer(400, 20)
        markers = render_discrete_events(trace, view, fb)
        # 100 and 105 fall in different pixels at width 400 -> 4 markers.
        assert markers == 4
        assert fb.pixels_drawn > 0

    def test_same_pixel_aggregation(self):
        trace = trace_with_events()
        view = TimelineView(0, 1000, width=10, height=20)
        fb = Framebuffer(10, 20)
        markers = render_discrete_events(trace, view, fb)
        # 100 and 105 now share a pixel column: one marker for both.
        assert markers == 3

    def test_kind_filter(self):
        trace = trace_with_events()
        view = TimelineView(0, 1000, width=100, height=20)
        fb = Framebuffer(100, 20)
        markers = render_discrete_events(
            trace, view, fb, kind=DiscreteEventKind.TASK_STOLEN)
        assert markers == 2

    def test_out_of_view_events_skipped(self):
        trace = trace_with_events()
        view = TimelineView(2000, 3000, width=50, height=20)
        fb = Framebuffer(50, 20)
        assert render_discrete_events(trace, view, fb) == 0

    def test_real_trace_creation_markers(self, seidel_trace_small):
        trace = seidel_trace_small
        view = TimelineView.fit(trace, 400, 4 * trace.num_cores)
        fb = Framebuffer(view.width, view.height)
        markers = render_discrete_events(
            trace, view, fb, kind=DiscreteEventKind.TASK_CREATED)
        assert markers > 0


class TestAnnotationOverlay:
    def test_global_annotation_spans_height(self):
        trace = trace_with_events()
        store = AnnotationStore([Annotation(500, "look here")])
        view = TimelineView(0, 1000, width=100, height=40)
        fb = Framebuffer(100, 40)
        drawn = render_annotations(store, view, fb, trace)
        assert drawn == 1
        x = view.time_to_pixel(500)
        assert (fb.pixels[:, x] == (255, 255, 0)).all()

    def test_core_annotation_marks_one_lane(self):
        trace = trace_with_events()
        store = AnnotationStore([Annotation(500, "core 1 slow", core=1)])
        view = TimelineView(0, 1000, width=100, height=40)
        fb = Framebuffer(100, 40)
        assert render_annotations(store, view, fb, trace) == 1
        x = view.time_to_pixel(500)
        lane_height = 40 // 2
        assert (fb.pixels[lane_height:, x] == (255, 255, 0)).all()
        assert (fb.pixels[:lane_height, x] == (0, 0, 0)).all()

    def test_annotations_outside_view_skipped(self):
        trace = trace_with_events()
        store = AnnotationStore([Annotation(5000, "later")])
        view = TimelineView(0, 1000, width=100, height=40)
        fb = Framebuffer(100, 40)
        assert render_annotations(store, view, fb, trace) == 0
