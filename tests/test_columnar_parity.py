"""Columnar/object parity sweep.

For every analysis entry point in :mod:`repro.core.statistics`,
:mod:`repro.core.metrics` and :mod:`repro.core.filters` (plus the
index helpers and timeline rendering they feed), assert that running
on the columnar store (:class:`~repro.core.columnar.ColumnarTrace`)
produces *exactly* the same result as running on the object store
(:class:`~repro.core.trace.Trace`) — bit-identical arrays, equal
floats, equal report text — on randomized traces.  The pure-Python
object-model implementations in :mod:`repro.core.reference` tie both
stores to the executable specification.
"""

import numpy as np
import pytest

from repro.core import (AllTasks, CoreFilter, DurationFilter,
                        IntervalFilter, NumaNodeFilter, PredicateFilter,
                        TaskTypeFilter, WorkerState, filtered_tasks,
                        reference)
from repro.core import anomalies, correlation
from repro.core import index as core_index
from repro.core import metrics, statistics
from repro.core.derived import (AverageTaskDuration, DerivedMetricMenu,
                                WorkersInState)
from repro.render import (Framebuffer, StateMode, TimelineView,
                          render_counter, render_discrete_events,
                          render_matrix, render_timeline, value_bounds)
from trace_gen import make_random_trace

SEEDS = (1, 2, 3)


@pytest.fixture(scope="module", params=SEEDS)
def pair(request):
    trace = make_random_trace(request.param, events_per_core=60)
    return trace, trace.to_columnar()


def windows(trace):
    """The whole trace plus one interior sub-interval."""
    span = trace.end - trace.begin
    yield None, None
    yield trace.begin + span // 4, trace.begin + (3 * span) // 4


class TestStatisticsParity:
    def test_state_time_summary(self, pair):
        trace, columnar = pair
        for start, end in windows(trace):
            assert (statistics.state_time_summary(trace, start, end)
                    == statistics.state_time_summary(columnar, start, end)
                    == reference.state_time_summary(trace, start, end))

    def test_per_core_state_time(self, pair):
        trace, columnar = pair
        for state in WorkerState:
            for start, end in windows(trace):
                expected = statistics.per_core_state_time(trace, state,
                                                          start, end)
                assert np.array_equal(
                    expected, statistics.per_core_state_time(
                        columnar, state, start, end))
                assert np.array_equal(
                    expected, reference.per_core_state_time(
                        trace, state, start, end))

    def test_average_parallelism(self, pair):
        trace, columnar = pair
        for start, end in windows(trace):
            expected = statistics.average_parallelism(trace, start, end)
            assert expected == statistics.average_parallelism(columnar,
                                                              start, end)
            assert expected == reference.average_parallelism(trace,
                                                             start, end)

    def test_task_duration_histogram(self, pair):
        trace, columnar = pair
        for start, end in windows(trace):
            edges, fractions = statistics.task_duration_histogram(
                trace, bins=12, start=start, end=end)
            col_edges, col_fractions = statistics.task_duration_histogram(
                columnar, bins=12, start=start, end=end)
            ref_edges, ref_fractions = reference.task_duration_histogram(
                trace, bins=12, start=start, end=end)
            assert np.array_equal(edges, col_edges)
            assert np.array_equal(fractions, col_fractions)
            assert np.array_equal(edges, ref_edges)
            assert np.array_equal(fractions, ref_fractions)

    def test_counter_histogram(self, pair):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        name = trace.counter_descriptions[0].name
        edges, fractions = statistics.counter_histogram(trace, name,
                                                        bins=8)
        col_edges, col_fractions = statistics.counter_histogram(
            columnar, name, bins=8)
        assert np.array_equal(edges, col_edges)
        assert np.array_equal(fractions, col_fractions)

    def test_communication_matrix(self, pair):
        trace, columnar = pair
        for kind in ("any", "read", "write"):
            for normalize in (True, False):
                expected = statistics.communication_matrix(
                    trace, kind=kind, normalize=normalize)
                assert np.array_equal(
                    expected, statistics.communication_matrix(
                        columnar, kind=kind, normalize=normalize))
                assert np.array_equal(
                    expected, reference.communication_matrix(
                        trace, kind=kind, normalize=normalize))

    def test_locality_fraction(self, pair):
        trace, columnar = pair
        assert (statistics.locality_fraction(trace)
                == statistics.locality_fraction(columnar))

    def test_steal_matrix(self, pair):
        trace, columnar = pair
        for start, end in windows(trace):
            expected = statistics.steal_matrix(trace, start, end)
            assert np.array_equal(expected,
                                  statistics.steal_matrix(columnar,
                                                          start, end))
            assert np.array_equal(expected,
                                  reference.steal_matrix(trace, start,
                                                         end))

    def test_interval_report(self, pair):
        trace, columnar = pair
        for start, end in windows(trace):
            assert (statistics.interval_report(trace, start, end)
                    .describe()
                    == statistics.interval_report(columnar, start, end)
                    .describe())


class TestMetricsParity:
    def test_interval_edges(self, pair):
        trace, columnar = pair
        assert np.array_equal(metrics.interval_edges(trace, 37),
                              metrics.interval_edges(columnar, 37))

    def test_state_count_series(self, pair):
        trace, columnar = pair
        for state in (WorkerState.RUNNING, WorkerState.IDLE):
            edges, values = metrics.state_count_series(trace, state, 50)
            col_edges, col_values = metrics.state_count_series(
                columnar, state, 50)
            assert np.array_equal(edges, col_edges)
            assert np.array_equal(values, col_values)

    def test_average_task_duration_series(self, pair):
        trace, columnar = pair
        edges, values = metrics.average_task_duration_series(trace, 40)
        col_edges, col_values = metrics.average_task_duration_series(
            columnar, 40)
        assert np.array_equal(edges, col_edges)
        assert np.array_equal(values, col_values)

    def test_counter_series_metrics(self, pair):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        name = trace.counter_descriptions[0].name
        for function in (metrics.aggregate_counter_series,
                         metrics.counter_derivative_series):
            edges, values = function(trace, name, 30)
            col_edges, col_values = function(columnar, name, 30)
            assert np.array_equal(edges, col_edges)
            assert np.array_equal(values, col_values)
        if len(trace.counter_descriptions) > 1:
            other = trace.counter_descriptions[1].name
            edges, values = metrics.counter_ratio_series(trace, name,
                                                         other, 30)
            col_edges, col_values = metrics.counter_ratio_series(
                columnar, name, other, 30)
            assert np.array_equal(values, col_values)

    def test_bytes_between_nodes_series(self, pair):
        trace, columnar = pair
        nodes = trace.topology.num_nodes
        for src in range(nodes):
            edges, values = metrics.bytes_between_nodes_series(
                trace, src, (src + 1) % nodes, 25)
            col_edges, col_values = metrics.bytes_between_nodes_series(
                columnar, src, (src + 1) % nodes, 25)
            assert np.array_equal(edges, col_edges)
            assert np.array_equal(values, col_values)

    def test_task_duration_stats(self, pair):
        trace, columnar = pair
        expected = metrics.task_duration_stats(trace)
        assert expected == metrics.task_duration_stats(columnar)
        assert expected == reference.task_duration_stats(trace)


class TestFilterParity:
    def filters_for(self, trace):
        yield AllTasks()
        yield DurationFilter(minimum=20, maximum=250)
        span = trace.end - trace.begin
        yield IntervalFilter(trace.begin + span // 3,
                             trace.begin + (2 * span) // 3)
        yield CoreFilter(range(0, trace.num_cores, 2))
        if trace.task_types:
            yield TaskTypeFilter(trace.task_types[0].name)
        for mode in ("read", "write", "any"):
            yield NumaNodeFilter(range(trace.topology.num_nodes),
                                 mode=mode)
        yield PredicateFilter(lambda execution:
                              execution.duration % 2 == 0)
        yield (DurationFilter(minimum=20) & CoreFilter([0])) | \
            ~AllTasks()

    def test_masks_identical(self, pair):
        trace, columnar = pair
        for task_filter in self.filters_for(trace):
            assert np.array_equal(task_filter.mask(trace),
                                  task_filter.mask(columnar)), task_filter

    def test_filtered_tasks_identical(self, pair):
        trace, columnar = pair
        for task_filter in (None, DurationFilter(minimum=50)):
            expected = filtered_tasks(trace, task_filter)
            actual = filtered_tasks(columnar, task_filter)
            assert sorted(expected) == sorted(actual)
            for name in expected:
                assert np.array_equal(expected[name], actual[name])


class TestIndexParity:
    def test_interval_queries(self, pair):
        trace, columnar = pair
        span = trace.end - trace.begin
        start = trace.begin + span // 3
        end = trace.begin + (2 * span) // 3
        for core in range(trace.num_cores):
            for query in (core_index.states_in_interval,
                          core_index.tasks_in_interval,
                          core_index.discrete_in_interval):
                expected = query(trace, core, start, end)
                actual = query(columnar, core, start, end)
                assert sorted(expected) == sorted(actual)
                for name in expected:
                    assert np.array_equal(expected[name], actual[name])

    def test_counter_queries(self, pair):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        span = trace.end - trace.begin
        for core in range(trace.num_cores):
            expected = core_index.counter_samples_in_interval(
                trace, core, 0, trace.begin + span // 3,
                trace.end - span // 3)
            actual = core_index.counter_samples_in_interval(
                columnar, core, 0, trace.begin + span // 3,
                trace.end - span // 3)
            assert np.array_equal(expected[0], actual[0])
            assert np.array_equal(expected[1], actual[1])


class TestBatchAccumulatorParity:
    """The vectorized ``consume_batch`` path must match the scalar
    ``consume`` path bit for bit, through every entry point that
    threads ``columnar=True`` and across batch-flush boundaries."""

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        from repro.trace_format import write_trace
        path = tmp_path_factory.mktemp("batch") / "random.ost"
        write_trace(make_random_trace(5, events_per_core=50), str(path),
                    chunk_records=64)
        return str(path)

    def test_streaming_statistics(self, trace_file):
        from repro.trace_format import streaming_statistics
        assert (streaming_statistics(trace_file, columnar=True)
                == streaming_statistics(trace_file))

    def test_streaming_task_histogram(self, trace_file):
        from repro.trace_format import streaming_task_histogram
        edges, counts = streaming_task_histogram(trace_file, 16, (0, 500))
        col_edges, col_counts = streaming_task_histogram(
            trace_file, 16, (0, 500), columnar=True)
        assert np.array_equal(edges, col_edges)
        assert np.array_equal(counts, col_counts)

    def test_parallel_entry_points(self, trace_file):
        from repro.analysis import parallel_streaming_statistics
        from repro.analysis.parallel import (parallel_comm_matrix,
                                             parallel_task_histogram)
        assert (parallel_streaming_statistics(trace_file, workers=2,
                                              columnar=True)
                == parallel_streaming_statistics(trace_file, workers=2))
        assert np.array_equal(
            parallel_comm_matrix(trace_file, workers=2, columnar=True),
            parallel_comm_matrix(trace_file, workers=2))
        __, counts = parallel_task_histogram(trace_file, 12, (0, 400),
                                             workers=2)
        __, col_counts = parallel_task_histogram(trace_file, 12, (0, 400),
                                                 workers=2, columnar=True)
        assert np.array_equal(counts, col_counts)

    def test_state_time_summary_out_of_core(self, trace_file):
        assert (statistics.state_time_summary_out_of_core(
                    trace_file, columnar=True)
                == statistics.state_time_summary_out_of_core(trace_file))

    def test_fold_records_across_flush_boundaries(self, trace_file):
        """A tiny batch size forces many partial flushes; every
        aggregate must still equal the scalar pass exactly."""
        from repro.trace_format import (StreamingStatistics, fold_records,
                                        stream_records,
                                        streaming_statistics)
        batched = fold_records(stream_records(trace_file),
                               StreamingStatistics(), columnar=True,
                               batch_records=7)
        assert batched == streaming_statistics(trace_file)


class TestRenderParity:
    def test_state_timeline_pixels_identical(self, pair):
        trace, columnar = pair
        view = TimelineView.fit(trace, width=200,
                                height=4 * trace.num_cores)
        object_fb = render_timeline(trace, StateMode(), view)
        columnar_fb = render_timeline(columnar, StateMode(), view)
        assert np.array_equal(object_fb.pixels, columnar_fb.pixels)


class TestOverlayParity:
    """The vectorized overlay kernels must draw the exact pixels (and
    issue the exact draw-call counts) of the scalar reference loops,
    on both stores, across zoom levels."""

    def overlay_views(self, trace):
        base = TimelineView.fit(trace, width=150,
                                height=5 * trace.num_cores)
        yield base
        yield base.zoom(4)
        yield base.zoom(4).scroll(0.4)
        # Zoomed below one cycle per pixel: the scalar fallback path.
        yield base.zoom(max(trace.duration, 2))

    def test_counter_overlay_pixels_identical(self, pair):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        for view in self.overlay_views(trace):
            for core in range(trace.num_cores):
                frames = {}
                for label, target, kwargs in (
                        ("scalar", trace, {"vectorized": False}),
                        ("object", trace, {}),
                        ("columnar", columnar, {})):
                    fb = Framebuffer(view.width, view.height)
                    calls = render_counter(target, 0, view, fb,
                                           core=core, **kwargs)
                    frames[label] = (calls, fb.pixels)
                reference_calls, reference_pixels = frames["scalar"]
                for label in ("object", "columnar"):
                    calls, pixels = frames[label]
                    assert calls == reference_calls, (label, view)
                    assert np.array_equal(pixels, reference_pixels), \
                        (label, view)

    def test_derived_series_overlay_identical(self, pair):
        from repro.render import render_derived_series
        trace, columnar = pair
        for store in (trace, columnar):
            series = AverageTaskDuration().materialize(store,
                                                       num_intervals=60)
            for view in self.overlay_views(trace):
                scalar_fb = Framebuffer(view.width, view.height)
                scalar_calls = render_derived_series(
                    series, view, scalar_fb, vectorized=False)
                vector_fb = Framebuffer(view.width, view.height)
                vector_calls = render_derived_series(series, view,
                                                     vector_fb)
                assert vector_calls == scalar_calls, view
                assert np.array_equal(vector_fb.pixels,
                                      scalar_fb.pixels), view

    def test_value_bounds_matches_reference(self, pair):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        expected = reference.counter_value_bounds(trace, 0)
        assert value_bounds(trace, 0) == expected
        assert value_bounds(columnar, 0) == expected

    def test_discrete_event_overlay_identical(self, pair):
        trace, columnar = pair
        view = TimelineView.fit(trace, width=120,
                                height=4 * trace.num_cores)
        results = {}
        for label, target, kwargs in (
                ("scalar", trace, {"vectorized": False}),
                ("object", trace, {}),
                ("columnar", columnar, {})):
            fb = Framebuffer(view.width, view.height)
            markers = render_discrete_events(target, view, fb, **kwargs)
            results[label] = (markers, fb.pixels)
        markers, pixels = results["scalar"]
        for label in ("object", "columnar"):
            assert results[label][0] == markers
            assert np.array_equal(results[label][1], pixels)

    def test_matrix_render_identical(self, pair):
        trace, columnar = pair
        matrix = statistics.steal_matrix(trace).astype(np.float64)
        expected = render_matrix(matrix, vectorized=False).pixels
        assert np.array_equal(render_matrix(matrix).pixels, expected)
        assert np.array_equal(
            render_matrix(statistics.steal_matrix(columnar)
                          .astype(np.float64)).pixels, expected)


class TestAnomalyParity:
    def test_bin_scans_match_reference(self, pair):
        trace, columnar = pair
        for store in (trace, columnar):
            assert (anomalies.detect_load_imbalance(store)
                    == reference.detect_load_imbalance(trace))
            assert (anomalies.detect_locality_anomalies(store)
                    == reference.detect_locality_anomalies(trace))

    def test_full_scan_identical_across_stores(self, pair):
        trace, columnar = pair
        assert anomalies.scan(trace) == anomalies.scan(columnar)


class TestCorrelationParity:
    def test_counter_increase_matches_reference(self, pair):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        __, expected = reference.counter_increase_per_task(trace, 0)
        for store in (trace, columnar):
            __, increases = correlation.counter_increase_per_task(store,
                                                                  0)
            assert np.array_equal(increases, expected)

    def test_filtered_increase_matches_reference(self, pair):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        task_filter = DurationFilter(minimum=20)
        __, expected = reference.counter_increase_per_task(
            trace, 0, task_filter)
        for store in (trace, columnar):
            __, increases = correlation.counter_increase_per_task(
                store, 0, task_filter)
            assert np.array_equal(increases, expected)

    def test_export_identical_across_stores(self, pair, tmp_path):
        trace, columnar = pair
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        counters = [trace.counter_descriptions[0].name]
        object_path = tmp_path / "object.csv"
        columnar_path = tmp_path / "columnar.csv"
        rows = correlation.export_task_table(trace, str(object_path),
                                             counters=counters)
        assert rows == correlation.export_task_table(
            columnar, str(columnar_path), counters=counters)
        assert object_path.read_text() == columnar_path.read_text()


class TestDerivedParity:
    def test_materialized_series_identical(self, pair):
        trace, columnar = pair
        menu = DerivedMetricMenu()
        menu.add(WorkersInState(state=int(WorkerState.IDLE)))
        menu.add(AverageTaskDuration())
        menu.add(AverageTaskDuration().derivative(), name="derivative")
        menu.add(WorkersInState(state=int(WorkerState.RUNNING))
                 / AverageTaskDuration(), name="ratio")
        object_series = menu.materialize_all(trace, num_intervals=40)
        columnar_series = menu.materialize_all(columnar,
                                               num_intervals=40)
        assert sorted(object_series) == sorted(columnar_series)
        for name, series in object_series.items():
            other = columnar_series[name]
            assert np.array_equal(series.edges, other.edges), name
            assert np.array_equal(series.values, other.values), name


class TestPyramidParity:
    """ISSUE 8: frames served by the persisted render pyramids must be
    bit-identical to the scalar references — on the plain stores, the
    memory-mapped (cached) store whose pyramids come from the sidecar,
    and ingested foreign traces."""

    def stores(self, tmp_path, seed=4):
        from repro.trace_format import (export_chrome, ingest_trace,
                                        read_trace, write_trace)
        trace = make_random_trace(seed, events_per_core=50)
        path = str(tmp_path / "pyramid.ost")
        write_trace(trace, path, chunk_records=64)
        plain = read_trace(path, columnar=True, cache=False)
        read_trace(path, cache=True)            # writes the sidecar
        mapped = read_trace(path, cache=True)   # maps it back
        assert mapped.pyramids is not None
        chrome = str(tmp_path / "pyramid.json")
        export_chrome(trace, chrome)
        ingested = ingest_trace(chrome, columnar=True)
        return (("object", trace), ("columnar", plain),
                ("mapped", mapped), ("ingested", ingested))

    def parity_views(self, trace):
        base = TimelineView.fit(trace, width=160,
                                height=5 * trace.num_cores)
        yield base
        yield base.zoom(5)
        # Below one cycle per pixel: the deep-zoom regime.
        yield base.zoom(max(trace.duration, 2))

    def test_timeline_frames_match_reference(self, tmp_path):
        for label, store in self.stores(tmp_path):
            for view in self.parity_views(store):
                reference_fb = render_timeline(store, StateMode(),
                                               view, indexed=False)
                indexed_fb = render_timeline(store, StateMode(), view)
                assert np.array_equal(indexed_fb.pixels,
                                      reference_fb.pixels), (label,
                                                             view)
                assert indexed_fb.draw_calls == \
                    reference_fb.draw_calls, (label, view)

    def test_counter_frames_match_reference(self, tmp_path):
        for label, store in self.stores(tmp_path):
            if not store.counter_descriptions:
                continue
            for view in self.parity_views(store):
                for core in range(store.num_cores):
                    scalar = Framebuffer(view.width, view.height)
                    calls = render_counter(store, 0, view, scalar,
                                           core=core, vectorized=False)
                    served = Framebuffer(view.width, view.height)
                    assert render_counter(store, 0, view, served,
                                          core=core) == calls, \
                        (label, view, core)
                    assert np.array_equal(served.pixels,
                                          scalar.pixels), (label, view,
                                                           core)

    def test_value_bounds_match_reference(self, tmp_path):
        for label, store in self.stores(tmp_path):
            if not store.counter_descriptions:
                continue
            expected = reference.counter_value_bounds(store, 0)
            assert value_bounds(store, 0) == expected, label
            # And the in-memory tree path agrees with the served one.
            from repro.core import MinMaxTree
            for core in range(store.num_cores):
                served = store.minmax_tree(core, 0)
                built = MinMaxTree(store.counter_samples(core, 0)[1])
                assert served.bounds() == built.bounds(), (label, core)
