"""Tests for out-of-core streaming trace processing."""

import pytest

from repro.core import state_time_summary, task_duration_histogram
from repro.trace_format import (split_time_window, stream_records,
                                streaming_statistics,
                                streaming_task_histogram, write_trace)


@pytest.fixture(scope="module")
def trace_file(seidel_trace_small, tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "seidel.ost.gz"
    write_trace(seidel_trace_small, str(path))
    return str(path)


class TestStreamRecords:
    def test_record_count_matches_writer(self, seidel_trace_small,
                                         trace_file):
        count = sum(1 for __ in stream_records(trace_file))
        expected = write_trace(seidel_trace_small,
                               trace_file + ".again.gz")
        assert count == expected

    def test_topology_streamed_first(self, trace_file):
        kind, fields = next(stream_records(trace_file))
        assert kind == "topology"
        assert fields.num_cores == 16

    def test_event_kinds_known(self, trace_file):
        known = {"topology", "counter_description", "task_type",
                 "region", "state_interval", "task_execution",
                 "counter_sample", "discrete_event", "comm_event",
                 "memory_access"}
        for kind, __ in stream_records(trace_file):
            assert kind in known


class TestStreamingStatistics:
    def test_matches_in_memory_summary(self, seidel_trace_small,
                                       trace_file):
        stats = streaming_statistics(trace_file)
        summary = state_time_summary(seidel_trace_small)
        for state, cycles in summary.items():
            assert stats.state_cycles[state] == cycles
        assert stats.total_tasks == len(seidel_trace_small.tasks)
        assert stats.begin == seidel_trace_small.begin
        assert stats.end == seidel_trace_small.end

    def test_per_type_means(self, seidel_trace_small, trace_file):
        from repro.core import TaskTypeFilter, task_duration_stats
        stats = streaming_statistics(trace_file)
        init_id = next(info.type_id
                       for info in seidel_trace_small.task_types
                       if info.name == "seidel_init")
        expected, __ = task_duration_stats(seidel_trace_small,
                                           TaskTypeFilter("seidel_init"))
        assert stats.mean_duration(init_id) == pytest.approx(expected)

    def test_describe(self, trace_file):
        text = streaming_statistics(trace_file).describe()
        assert "seidel_block" in text


class TestStreamingHistogram:
    def test_matches_in_memory_histogram(self, seidel_trace_small,
                                         trace_file):
        columns = seidel_trace_small.tasks.columns
        durations = columns["end"] - columns["start"]
        value_range = (0, int(durations.max()) + 1)
        edges, counts = streaming_task_histogram(trace_file, 10,
                                                 value_range)
        expected_edges, fractions = task_duration_histogram(
            seidel_trace_small, bins=10, value_range=value_range)
        assert edges == pytest.approx(expected_edges)
        total = counts.sum()
        assert counts / total == pytest.approx(fractions)

    def test_invalid_range_rejected(self, trace_file):
        with pytest.raises(ValueError):
            streaming_task_histogram(trace_file, 10, (100, 100))
        with pytest.raises(ValueError):
            streaming_task_histogram(trace_file, 0, (0, 100))


class TestSplitTimeWindow:
    def test_window_preserves_overlapping_events(self,
                                                 seidel_trace_small,
                                                 trace_file):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        window = split_time_window(trace_file, trace.begin, mid)
        columns = window.tasks.columns
        assert (columns["start"] < mid).all()
        expected = ((trace.tasks.columns["start"] < mid)
                    & (trace.tasks.columns["end"] > trace.begin)).sum()
        assert len(window.tasks) == expected

    def test_window_keeps_static_tables(self, seidel_trace_small,
                                        trace_file):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        window = split_time_window(trace_file, trace.begin, mid)
        assert window.task_types == trace.task_types
        assert window.regions == trace.regions
        assert (window.counter_descriptions
                == trace.counter_descriptions)

    def test_window_is_analyzable(self, seidel_trace_small, trace_file):
        """The extracted window supports the normal interactive path."""
        from repro.render import StateMode, TimelineView, render_timeline
        trace = seidel_trace_small
        quarter = trace.begin + trace.duration // 4
        window = split_time_window(trace_file, trace.begin, quarter)
        fb = render_timeline(window, StateMode(),
                             TimelineView.fit(window, 100, 64))
        assert fb.pixels_drawn > 0

    def test_empty_window(self, seidel_trace_small, trace_file):
        window = split_time_window(trace_file,
                                   seidel_trace_small.end + 10**6,
                                   seidel_trace_small.end + 10**6 + 10)
        assert len(window.tasks) == 0
        assert window.task_types       # static tables survive
