"""Tests for the machine topology model."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import Machine, opteron_6282, uv2000


class TestMachineConstruction:
    def test_core_count(self):
        machine = Machine(3, 5)
        assert machine.num_cores == 15
        assert machine.num_nodes == 3

    def test_core_node_assignment_is_contiguous(self):
        machine = Machine(4, 4)
        for node in machine.nodes:
            assert [machine.node_of_core(core) for core in node.core_ids] \
                == [node.node_id] * 4

    def test_core_ids_are_dense(self):
        machine = Machine(2, 3)
        assert [core.core_id for core in machine.cores] == list(range(6))

    def test_rejects_empty_machine(self):
        with pytest.raises(ValueError):
            Machine(0, 4)
        with pytest.raises(ValueError):
            Machine(2, 0)

    def test_single_node_machine(self):
        machine = Machine(1, 8)
        assert machine.num_cores == 8
        assert machine.distance(0, 0) == 10


class TestDistances:
    def test_local_distance_is_ten(self):
        machine = Machine(6, 2)
        for node in range(6):
            assert machine.distance(node, node) == 10

    def test_remote_distances_symmetric(self):
        machine = Machine(8, 1)
        for a in range(8):
            for b in range(8):
                assert machine.distance(a, b) == machine.distance(b, a)

    def test_distance_grows_with_hops(self):
        machine = Machine(8, 1)
        assert machine.distance(0, 1) < machine.distance(0, 2)
        assert machine.distance(0, 2) < machine.distance(0, 4)

    def test_access_factor_local_is_one(self):
        machine = Machine(4, 2)
        assert machine.access_factor(2, 2) == 1.0

    def test_access_factor_remote_above_two(self):
        machine = Machine(4, 2)
        assert machine.access_factor(0, 1) >= 2.0

    @given(nodes=st.integers(min_value=2, max_value=16))
    def test_remote_always_costlier_than_local(self, nodes):
        machine = Machine(nodes, 1)
        for a in range(nodes):
            for b in range(nodes):
                if a != b:
                    assert machine.distance(a, b) > machine.distance(a, a)


class TestPresets:
    def test_uv2000_shape(self):
        machine = uv2000()
        assert machine.num_nodes == 24
        assert machine.num_cores == 192

    def test_opteron_shape(self):
        machine = opteron_6282()
        assert machine.num_nodes == 8
        assert machine.num_cores == 64

    def test_scaling_preserves_cores_per_node(self):
        machine = uv2000(scale=0.25)
        assert machine.num_nodes == 6
        assert machine.cores_per_node == 8

    def test_scale_floor_is_two_nodes(self):
        assert uv2000(scale=0.01).num_nodes == 2
