"""Tests for selection and detail views (Fig. 1, box 4)."""

import pytest

from repro.core import (WorkerState, describe_selection, state_at,
                        task_at, task_details)


class TestHitTesting:
    def test_task_at_execution_time(self, seidel_trace_small):
        trace = seidel_trace_small
        expected = next(trace.task_executions())
        hit = task_at(trace, expected.core,
                      (expected.start + expected.end) // 2)
        assert hit == expected

    def test_task_at_boundary_semantics(self, seidel_trace_small):
        """Half-open intervals: the start hits, the end does not
        (unless the next task starts exactly there)."""
        trace = seidel_trace_small
        execution = next(trace.task_executions())
        assert task_at(trace, execution.core, execution.start) \
            == execution
        at_end = task_at(trace, execution.core, execution.end)
        assert at_end is None or at_end.start == execution.end

    def test_task_at_idle_time_is_none(self, seidel_trace_small):
        trace = seidel_trace_small
        assert task_at(trace, 0, trace.end + 10**9) is None

    def test_state_at_covers_every_task(self, seidel_trace_small):
        trace = seidel_trace_small
        execution = next(trace.task_executions())
        state = state_at(trace, execution.core, execution.start)
        assert state is not None
        assert state["state"] == int(WorkerState.RUNNING)

    def test_state_at_gap_is_none(self, seidel_trace_small):
        assert state_at(seidel_trace_small, 0, -100) is None


class TestTaskDetails:
    def test_details_fields(self, seidel_trace_small):
        trace = seidel_trace_small
        execution = next(trace.task_executions())
        details = task_details(trace, execution.task_id)
        assert details.task_id == execution.task_id
        assert details.core == execution.core
        assert details.duration == execution.duration
        assert details.numa_node == trace.topology.node_of_core(
            execution.core)
        assert details.type_name in {"seidel_init", "seidel_block"}

    def test_details_resolve_data_endpoints(self, seidel_trace_small):
        trace = seidel_trace_small
        # Pick a compute task: it reads and writes.
        compute_type = next(info.type_id for info in trace.task_types
                            if info.name == "seidel_block")
        task_id = next(execution.task_id
                       for execution in trace.task_executions()
                       if execution.type_id == compute_type)
        details = task_details(trace, task_id)
        assert details.reads
        assert details.writes
        for endpoint in details.reads + details.writes:
            assert endpoint.numa_node is not None
            assert endpoint.region_name.startswith("block_")

    def test_details_counter_attribution(self, seidel_trace_small):
        trace = seidel_trace_small
        execution = next(trace.task_executions())
        details = task_details(trace, execution.task_id)
        assert "cache_misses" in details.counter_increases
        assert details.counter_increases["cache_misses"] >= 0

    def test_describe_text(self, seidel_trace_small):
        trace = seidel_trace_small
        execution = next(trace.task_executions())
        text = task_details(trace, execution.task_id).describe()
        assert "work function" in text
        assert "core {}".format(execution.core) in text

    def test_unknown_task_raises(self, seidel_trace_small):
        with pytest.raises(KeyError):
            task_details(seidel_trace_small, 10**9)


class TestDescribeSelection:
    def test_click_on_task(self, seidel_trace_small):
        trace = seidel_trace_small
        execution = next(trace.task_executions())
        text = describe_selection(trace, execution.core,
                                  execution.start)
        assert "task execution" in text
        assert "task {}".format(execution.task_id) in text

    def test_click_on_nothing(self, seidel_trace_small):
        text = describe_selection(seidel_trace_small, 0, -50)
        assert "no activity" in text

    def test_click_on_idle(self, seidel_trace_small):
        """Find a moment some core idles and click it."""
        trace = seidel_trace_small
        for interval in trace.state_intervals():
            if interval.state == int(WorkerState.IDLE):
                text = describe_selection(trace, interval.core,
                                          interval.start)
                assert "idle" in text
                break
        else:
            pytest.skip("no idle interval in the small trace")
