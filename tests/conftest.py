"""Shared fixtures: small machines, programs and traces.

Trace-producing fixtures are session-scoped: simulations are
deterministic, traces are immutable, and reusing them keeps the suite
fast.
"""

from __future__ import annotations

import pytest

from repro.runtime import (Machine, NumaAwareScheduler,
                           RandomStealScheduler, TraceCollector,
                           run_program)
from repro.workloads import (KmeansConfig, SeidelConfig, build_fork_join,
                             build_kmeans, build_random_dag, build_seidel)

TINY_SEIDEL = SeidelConfig(blocks=6, block_dim=16, steps=4)
TINY_KMEANS = KmeansConfig(num_points=64_000, block_size=4_000,
                           iterations=3)


@pytest.fixture(scope="session")
def machine():
    """A 4-node, 16-core NUMA machine."""
    return Machine(4, 4, name="test-machine")


@pytest.fixture(scope="session")
def seidel_program(machine):
    return build_seidel(machine, TINY_SEIDEL)


@pytest.fixture(scope="session")
def seidel_run(machine, seidel_program):
    collector = TraceCollector(machine)
    result, trace = run_program(seidel_program,
                                RandomStealScheduler(machine, seed=7),
                                collector=collector)
    return result, trace


@pytest.fixture(scope="session")
def seidel_trace_small(seidel_run):
    return seidel_run[1]


@pytest.fixture(scope="session")
def seidel_result(seidel_run):
    return seidel_run[0]


@pytest.fixture(scope="session")
def kmeans_run(machine):
    program = build_kmeans(machine, TINY_KMEANS)
    collector = TraceCollector(machine)
    result, trace = run_program(program,
                                NumaAwareScheduler(machine, seed=7),
                                collector=collector)
    return result, trace


@pytest.fixture(scope="session")
def kmeans_trace_small(kmeans_run):
    return kmeans_run[1]


@pytest.fixture(scope="session")
def forkjoin_trace(machine):
    program = build_fork_join(machine, width=12)
    collector = TraceCollector(machine)
    __, trace = run_program(program, RandomStealScheduler(machine, seed=3),
                            collector=collector)
    return trace


@pytest.fixture(scope="session")
def random_dag_trace(machine):
    program = build_random_dag(machine, num_tasks=120, seed=5)
    collector = TraceCollector(machine)
    __, trace = run_program(program, RandomStealScheduler(machine, seed=5),
                            collector=collector)
    return trace
