"""Tests for the discrete-event simulator: execution invariants."""


import pytest

from repro.core import WorkerState
from repro.runtime import (Machine, NumaAwareScheduler, Program,
                           RandomStealScheduler, SimConfig, TraceCollector,
                           run_program)
from repro.workloads import build_chain, build_fork_join, build_random_dag


@pytest.fixture
def machine():
    return Machine(2, 4)


def simulate(program, machine, seed=0, **kwargs):
    collector = TraceCollector(machine)
    return run_program(program, RandomStealScheduler(machine, seed=seed),
                       collector=collector, **kwargs)


class TestBasicExecution:
    def test_all_tasks_execute_exactly_once(self, machine):
        program = build_random_dag(machine, num_tasks=80, seed=1)
        result, trace = simulate(program, machine)
        executed = list(trace.tasks.columns["task_id"])
        assert sorted(executed) == [t.task_id for t in program.tasks]

    def test_makespan_positive(self, machine):
        program = build_chain(machine, length=5)
        result, __ = simulate(program, machine)
        assert result.makespan > 0

    def test_empty_program(self, machine):
        program = Program(machine).finalize()
        result, trace = simulate(program, machine)
        assert result.makespan == 0
        assert len(trace.tasks) == 0

    def test_single_task(self, machine):
        program = Program(machine)
        program.spawn("only", 1000)
        program.finalize()
        result, trace = simulate(program, machine)
        assert len(trace.tasks) == 1
        assert result.tasks_executed == 1

    def test_deterministic_given_seed(self, machine):
        spans = set()
        for __ in range(3):
            program = build_random_dag(machine, num_tasks=60, seed=2)
            result, __trace = simulate(program, machine, seed=11)
            spans.add(result.makespan)
        assert len(spans) == 1

    def test_different_seeds_change_schedule(self, machine):
        spans = set()
        for seed in range(4):
            program = build_random_dag(machine, num_tasks=60, seed=2)
            result, __trace = simulate(program, machine, seed=seed)
            spans.add(result.makespan)
        assert len(spans) > 1


class TestDependenceOrdering:
    def test_dependencies_complete_before_dependents_start(self, machine):
        program = build_random_dag(machine, num_tasks=100, seed=3)
        __, trace = simulate(program, machine)
        executions = {execution.task_id: execution
                      for execution in trace.task_executions()}
        for task in program.tasks:
            for dependency in task.dependencies:
                assert (executions[dependency.task_id].end
                        <= executions[task.task_id].start)

    def test_chain_is_fully_serial(self, machine):
        program = build_chain(machine, length=8)
        __, trace = simulate(program, machine)
        executions = sorted(trace.task_executions(),
                            key=lambda execution: execution.start)
        for first, second in zip(executions, executions[1:]):
            assert first.end <= second.start

    def test_creator_runs_before_created(self, machine):
        program = Program(machine)
        parent = program.spawn("parent", 1000)
        child = program.spawn("child", 1000, creator=parent)
        program.finalize()
        __, trace = simulate(program, machine)
        parent_exec = trace.task_by_id(parent.task_id)
        child_exec = trace.task_by_id(child.task_id)
        assert parent_exec.end <= child_exec.start


class TestStateIntervals:
    def test_no_overlapping_states_per_core(self, machine):
        program = build_random_dag(machine, num_tasks=120, seed=4)
        __, trace = simulate(program, machine)
        for core in range(trace.num_cores):
            starts = trace.states.core_column(core, "start")
            ends = trace.states.core_column(core, "end")
            for index in range(len(starts) - 1):
                assert ends[index] <= starts[index + 1]

    def test_states_have_positive_duration(self, machine):
        program = build_fork_join(machine)
        __, trace = simulate(program, machine)
        columns = trace.states.columns
        assert ((columns["end"] - columns["start"]) > 0).all()

    def test_running_time_matches_task_time(self, machine):
        program = build_random_dag(machine, num_tasks=50, seed=5)
        result, trace = simulate(program, machine)
        columns = trace.tasks.columns
        task_cycles = int((columns["end"] - columns["start"]).sum())
        assert result.state_cycles[int(WorkerState.RUNNING)] == task_cycles

    def test_sync_emitted_at_end(self, machine):
        program = build_fork_join(machine)
        result, trace = simulate(program, machine)
        sync = [interval for interval in trace.state_intervals()
                if interval.state == int(WorkerState.SYNC)]
        assert len(sync) == trace.num_cores
        assert all(interval.start == result.makespan for interval in sync)

    def test_workers_idle_while_waiting(self, machine):
        program = build_chain(machine, length=6)
        result, __ = simulate(program, machine)
        assert result.idle_cycles > 0


class TestCounters:
    def test_counter_samples_at_task_boundaries(self, machine):
        program = build_fork_join(machine, width=6)
        __, trace = simulate(program, machine)
        counter_id = trace.counter_id("branch_mispredictions")
        for execution in trace.task_executions():
            timestamps, __values = trace.counter_samples(execution.core,
                                                         counter_id)
            assert execution.start in timestamps
            assert execution.end in timestamps

    def test_counters_monotone(self, machine):
        program = build_random_dag(machine, num_tasks=60, seed=6)
        __, trace = simulate(program, machine)
        for description in trace.counter_descriptions:
            for core in range(trace.num_cores):
                __, values = trace.counter_samples(core,
                                                   description.counter_id)
                if len(values) > 1:
                    assert (values[1:] >= values[:-1]).all()

    def test_pinned_counter_increment_respected(self, machine):
        program = Program(machine)
        program.spawn("t", 10_000,
                      counters={"branch_mispredictions": 1234})
        program.finalize()
        __, trace = simulate(program, machine)
        execution = next(trace.task_executions())
        counter_id = trace.counter_id("branch_mispredictions")
        timestamps, values = trace.counter_samples(execution.core,
                                                   counter_id)
        assert values[-1] - values[0] == pytest.approx(1234)


class TestCostModel:
    def test_remote_execution_slower(self):
        """The same single task is slower when its data is remote."""
        durations = {}
        for node_of_data in (0, 1):
            machine = Machine(2, 1)
            program = Program(machine)
            region = program.allocate(64 * 4096)
            program.spawn("touch", 1,
                          writes=[(region, 0, region.size)])
            consumer = program.spawn("consume", 1,
                                     reads=[(region, 0, region.size)])
            program.finalize()
            # Pre-place the data on the requested node.
            program.memory.touch(region, 0, region.size, node_of_data)
            collector = TraceCollector(machine)
            __, trace = run_program(
                program, RandomStealScheduler(machine, seed=0),
                collector=collector)
            execution = trace.task_by_id(consumer.task_id)
            # Consumer runs on the core that resolved the dependence;
            # record duration keyed by data placement.
            durations[node_of_data] = (execution.duration, execution.core)
        # One placement was local to the executing core, the other
        # remote; remote must be slower.
        local = min(durations.values())[0]
        remote = max(durations.values())[0]
        assert remote > local

    def test_page_faults_counted(self, machine):
        program = Program(machine)
        region = program.allocate(16 * 4096)
        program.spawn("init", 1, writes=[(region, 0, region.size)])
        program.finalize()
        result, __ = simulate(program, machine)
        assert result.page_faults == 16

    def test_task_overhead_floor(self, machine):
        config = SimConfig(task_overhead=5000)
        program = Program(machine)
        program.spawn("tiny", 0)
        program.finalize()
        __, trace = simulate(program, machine, config=config)
        execution = next(trace.task_executions())
        assert execution.duration >= 5000


class TestStealing:
    def test_steals_occur_with_parallel_work(self, machine):
        program = build_fork_join(machine, width=16)
        result, __ = simulate(program, machine)
        assert result.steals > 0

    def test_steal_events_recorded(self, machine):
        program = build_fork_join(machine, width=16)
        __, trace = simulate(program, machine)
        assert len(trace.comm["timestamp"]) > 0

    def test_numa_scheduler_local_steals_only(self):
        machine = Machine(2, 4)
        program = build_fork_join(machine, width=24)
        collector = TraceCollector(machine)
        __, trace = run_program(
            program, NumaAwareScheduler(machine, seed=0),
            collector=collector)
        comm = trace.comm
        for index in range(len(comm["timestamp"])):
            src_node = comm["src_core"][index] // 4
            dst_node = comm["dst_core"][index] // 4
            assert src_node == dst_node


class TestBroadcast:
    def test_wide_fanout_triggers_broadcast_state(self, machine):
        program = build_fork_join(machine, width=12)
        result, __ = simulate(program, machine)
        assert result.state_cycles[int(WorkerState.BROADCAST)] > 0

    def test_narrow_fanout_no_broadcast(self, machine):
        program = build_chain(machine, length=4)
        result, __ = simulate(program, machine)
        assert result.state_cycles[int(WorkerState.BROADCAST)] == 0


class TestCreationPhase:
    def test_create_state_covers_root_creation(self, machine):
        config = SimConfig(create_cost=500)
        program = build_fork_join(machine, width=4)
        result, trace = simulate(program, machine, config=config)
        creates = [interval for interval in trace.state_intervals()
                   if interval.state == int(WorkerState.CREATE)]
        # Main creates all six root-declared tasks on core 0.
        main_create = [c for c in creates if c.core == 0 and c.start == 0]
        assert main_create
        assert main_create[0].duration == 500 * len(program.tasks)

    def test_created_events_match_task_count(self, machine):
        from repro.core import DiscreteEventKind
        program = build_fork_join(machine, width=5)
        __, trace = simulate(program, machine)
        created = [event for event in trace.discrete_events()
                   if event.kind == int(DiscreteEventKind.TASK_CREATED)]
        assert len(created) == len(program.tasks)
