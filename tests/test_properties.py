"""Cross-cutting property-based tests: random programs through the
whole pipeline (simulate -> trace -> analyze -> serialize)."""

import io

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (average_parallelism, graph_from_program,
                        reconstruct_task_graph, state_time_summary)
from repro.runtime import (Machine, NumaAwareScheduler,
                           RandomStealScheduler, TraceCollector,
                           run_program)
from repro.trace_format.reader import read_trace_stream
from repro.trace_format.writer import TraceWriter
from repro.workloads import build_random_dag

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def simulate_random(machine_shape, dag_seed, scheduler_seed,
                    numa_aware=False, num_tasks=40):
    nodes, per_node = machine_shape
    machine = Machine(nodes, per_node)
    program = build_random_dag(machine, num_tasks=num_tasks,
                               seed=dag_seed)
    scheduler = (NumaAwareScheduler(machine, seed=scheduler_seed)
                 if numa_aware
                 else RandomStealScheduler(machine, seed=scheduler_seed))
    collector = TraceCollector(machine)
    return run_program(program, scheduler, collector=collector), program


@st.composite
def machine_shapes(draw):
    return (draw(st.integers(min_value=1, max_value=6)),
            draw(st.integers(min_value=1, max_value=6)))


class TestSimulationProperties:
    @given(shape=machine_shapes(), dag_seed=st.integers(0, 100),
           scheduler_seed=st.integers(0, 100),
           numa=st.booleans())
    @SLOW
    def test_every_task_runs_once_and_in_order(self, shape, dag_seed,
                                               scheduler_seed, numa):
        (result, trace), program = simulate_random(
            shape, dag_seed, scheduler_seed, numa_aware=numa)
        # Completeness.
        executed = sorted(trace.tasks.columns["task_id"])
        assert executed == [task.task_id for task in program.tasks]
        # Dependence order.
        executions = {execution.task_id: execution
                      for execution in trace.task_executions()}
        for task in program.tasks:
            for dependency in task.dependencies:
                assert (executions[dependency.task_id].end
                        <= executions[task.task_id].start)
        # Makespan covers the last completion.
        assert result.makespan == max(execution.end for execution
                                      in executions.values())

    @given(shape=machine_shapes(), dag_seed=st.integers(0, 100),
           scheduler_seed=st.integers(0, 100))
    @SLOW
    def test_states_partition_worker_time(self, shape, dag_seed,
                                          scheduler_seed):
        """Per core, state intervals never overlap; per-state totals
        sum to the per-core busy span."""
        (result, trace), __ = simulate_random(shape, dag_seed,
                                              scheduler_seed)
        for core in range(trace.num_cores):
            starts = trace.states.core_column(core, "start")
            ends = trace.states.core_column(core, "end")
            assert (ends[:-1] <= starts[1:]).all()
            assert (ends > starts).all()

    @given(shape=machine_shapes(), dag_seed=st.integers(0, 100),
           scheduler_seed=st.integers(0, 100))
    @SLOW
    def test_reconstruction_matches_ground_truth(self, shape, dag_seed,
                                                 scheduler_seed):
        (__, trace), program = simulate_random(shape, dag_seed,
                                               scheduler_seed)
        truth = graph_from_program(program)
        rebuilt = reconstruct_task_graph(trace)
        truth_edges = {(src, dst) for src in truth.successors
                       for dst in truth.successors[src]}
        rebuilt_edges = {(src, dst) for src in rebuilt.successors
                         for dst in rebuilt.successors[src]}
        assert rebuilt_edges == truth_edges

    @given(shape=machine_shapes(), dag_seed=st.integers(0, 100),
           scheduler_seed=st.integers(0, 100))
    @SLOW
    def test_parallelism_bounded_by_cores(self, shape, dag_seed,
                                          scheduler_seed):
        (__, trace), __p = simulate_random(shape, dag_seed,
                                           scheduler_seed)
        assert average_parallelism(trace) <= trace.num_cores + 1e-9


class TestFormatProperties:
    @given(dag_seed=st.integers(0, 100),
           scheduler_seed=st.integers(0, 100))
    @SLOW
    def test_serialization_roundtrip_arbitrary_traces(self, dag_seed,
                                                      scheduler_seed):
        (__, trace), __p = simulate_random((2, 2), dag_seed,
                                           scheduler_seed, num_tasks=25)
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        writer.topology(trace.topology)
        for description in trace.counter_descriptions:
            writer.counter_description(description)
        for info in trace.task_types:
            writer.task_type(info)
        for info in trace.regions:
            writer.region(info)
        for interval in trace.state_intervals():
            writer.state_interval(interval.core, interval.state,
                                  interval.start, interval.end)
        for execution in trace.task_executions():
            writer.task_execution(execution.task_id, execution.type_id,
                                  execution.core, execution.start,
                                  execution.end)
        buffer.seek(0)
        loaded = read_trace_stream(buffer)
        assert state_time_summary(loaded) == state_time_summary(trace)
        assert len(loaded.tasks) == len(trace.tasks)

    @given(payload=st.binary(min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_reader_rejects_garbage_without_crashing(self, payload):
        """Fuzz: arbitrary bytes either parse as an (unlikely) valid
        trace or raise FormatError — never another exception."""
        from repro.trace_format import FormatError
        buffer = io.BytesIO(payload)
        try:
            read_trace_stream(buffer)
        except FormatError:
            pass

    @given(payload=st.binary(min_size=0, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_reader_rejects_corrupted_tail(self, payload):
        """Fuzz: a valid header followed by garbage raises FormatError."""
        import struct
        from repro.trace_format import FormatError, MAGIC, VERSION
        buffer = io.BytesIO(struct.pack("<4sI", MAGIC, VERSION)
                            + payload)
        try:
            read_trace_stream(buffer)
        except FormatError:
            pass
