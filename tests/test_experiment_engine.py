"""Tests for the parallel multi-trace experiment engine.

Covers the suite runner (pooled execution and ingestion through the
mapped cache), the cross-trace aggregation layer, the trace-diff
engine — including the self-diff-is-empty property at arbitrary
tolerances and a golden diff between the committed seidel and kmeans
golden traces — and the comparison renderers.
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import (DiffTolerances, EXACT,
                                        ExperimentSpec, analyze_traces,
                                        block_size_sweep, diff_traces,
                                        diff_trace_files,
                                        distribution_shift,
                                        merged_comm_matrix,
                                        merged_statistics,
                                        merged_task_histogram,
                                        render_matrices_side_by_side,
                                        render_state_overlay,
                                        render_timelines_side_by_side,
                                        run_suite, scheduler_sweep,
                                        speedup_curve, summarize_trace,
                                        sweep_table, synthetic_sweep)
from repro.trace_format import (read_trace, streaming_statistics,
                                streaming_task_histogram)
from trace_gen import make_random_trace

DATA_DIR = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def suite(tmp_path_factory):
    """Three tiny synthetic traces with warm sidecars."""
    directory = str(tmp_path_factory.mktemp("engine-suite"))
    specs = synthetic_sweep(3, events=3_000)
    paths = run_suite(specs, directory, workers=2)
    return specs, paths


class TestSweepSpecs:
    def test_synthetic_sweep_names_and_params(self):
        specs = synthetic_sweep(3, events=100, seed=5)
        assert [spec.name for spec in specs] == [
            "synthetic_0", "synthetic_1", "synthetic_2"]
        assert [spec.param_dict()["seed"] for spec in specs] == [5, 6, 7]

    def test_scheduler_sweep_contrasts_runtimes(self):
        nonopt, opt = scheduler_sweep("seidel")
        assert not nonopt.optimized and opt.optimized
        assert nonopt.param_dict()["scheduler"] == "random"

    def test_block_size_sweep_carries_block_size(self):
        specs = block_size_sweep([100, 200])
        assert [spec.block_size for spec in specs] == [100, 200]
        assert specs[0].workload == "kmeans"

    def test_unknown_workload_rejected(self, tmp_path):
        from repro.analysis.experiments import (ExperimentError,
                                                RetryPolicy)
        spec = ExperimentSpec(name="bad", workload="galactic")
        with pytest.raises(ExperimentError, match="unknown workload"):
            run_suite([spec], str(tmp_path),
                      retry=RetryPolicy(max_attempts=1))


class TestSuiteRunner:
    def test_writes_trace_and_sidecar_per_spec(self, suite):
        specs, paths = suite
        assert len(paths) == len(specs)
        for path in paths:
            assert pathlib.Path(path).exists()
            assert pathlib.Path(path + "c").exists()    # .ostc sidecar

    def test_pooled_equals_serial_analysis(self, suite):
        __, paths = suite
        serial = analyze_traces(paths, workers=1)
        pooled = analyze_traces(paths, workers=2)
        assert serial == pooled

    def test_summaries_carry_labels_and_params(self, suite):
        specs, paths = suite
        summaries = analyze_traces(
            paths, workers=1, names=[spec.name for spec in specs],
            params=[spec.param_dict() for spec in specs])
        assert [summary.name for summary in summaries] \
            == [spec.name for spec in specs]
        assert summaries[1].params == {"seed": 1}
        assert summaries[0].tasks > 0
        assert summaries[0].records > 0

    def test_summary_matches_direct_computation(self, suite):
        from repro.core.statistics import (average_parallelism,
                                           state_time_summary)
        __, paths = suite
        trace = read_trace(paths[0], cache=True)
        summary = summarize_trace(trace)
        assert summary.state_cycles == {
            int(state): int(cycles) for state, cycles
            in state_time_summary(trace).items()}
        assert summary.average_parallelism \
            == pytest.approx(average_parallelism(trace))
        assert summary.tasks == len(trace.tasks)

    def test_label_length_mismatch_rejected(self, suite):
        __, paths = suite
        with pytest.raises(ValueError):
            analyze_traces(paths, workers=1, names=["only-one"])
        with pytest.raises(ValueError):
            analyze_traces(paths, workers=1,
                           params=[{}] * (len(paths) - 1))

    def test_uncached_ingestion_matches_cached(self, suite):
        __, paths = suite
        cached = analyze_traces(paths, workers=1, cache=True)
        parsed = analyze_traces(paths, workers=1, cache=False)
        assert cached == parsed


class TestAggregation:
    def test_merged_statistics_equal_sum_of_parts(self, suite):
        __, paths = suite
        individual = [streaming_statistics(path) for path in paths]
        merged = merged_statistics(paths)
        assert merged.records == sum(stats.records
                                     for stats in individual)
        assert merged.total_tasks == sum(stats.total_tasks
                                         for stats in individual)
        assert merged.begin == min(stats.begin for stats in individual)
        assert merged.end == max(stats.end for stats in individual)
        for state in merged.state_cycles:
            assert merged.state_cycles[state] == sum(
                stats.state_cycles.get(state, 0)
                for stats in individual)

    def test_merged_histogram_counts_sum(self, suite):
        __, paths = suite
        value_range = (0, 30_000)
        __, merged_counts = merged_task_histogram(paths, 8, value_range)
        individual = [streaming_task_histogram(path, 8, value_range)[1]
                      for path in paths]
        assert np.array_equal(merged_counts, np.sum(individual, axis=0))

    def test_merged_comm_matrix_adds_entrywise(self, suite):
        from repro.analysis import parallel_comm_matrix
        __, paths = suite
        merged = merged_comm_matrix(paths)
        individual = [parallel_comm_matrix(path, workers=1)
                      for path in paths]
        assert np.array_equal(merged, np.sum(individual, axis=0))

    def test_merged_comm_matrix_rejects_topology_mismatch(self, suite,
                                                          tmp_path):
        from repro.trace_format import write_synthetic_trace
        __, paths = suite
        other = str(tmp_path / "narrow.ost")
        write_synthetic_trace(other, events=500, nodes=2,
                              cores_per_node=2)
        with pytest.raises(ValueError):
            merged_comm_matrix([paths[0], other])

    def test_sweep_table_rows_and_best(self, suite):
        specs, paths = suite
        summaries = analyze_traces(
            paths, workers=1, names=[spec.name for spec in specs],
            params=[spec.param_dict() for spec in specs])
        table = sweep_table(summaries)
        assert table.param_name == "seed"
        assert len(table) == len(paths)
        best = table.best()
        assert best.duration == min(row.duration for row in table.rows)
        text = table.describe()
        assert "seed" in text and "synthetic_0" in text
        payload = table.to_dict()
        assert len(payload["rows"]) == len(paths)

    def test_speedup_curve_normalizes_to_baseline(self, suite):
        __, paths = suite
        summaries = analyze_traces(paths, workers=1)
        names, speedups = speedup_curve(summaries)
        assert len(names) == len(paths)
        assert speedups[0] == pytest.approx(1.0)


TOLERANCE_VALUES = st.floats(min_value=0.0, max_value=10.0,
                             allow_nan=False)


class TestDiffEngine:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 40), relative=TOLERANCE_VALUES,
           absolute=TOLERANCE_VALUES, distribution=TOLERANCE_VALUES,
           anomalies=st.integers(0, 5))
    def test_self_diff_empty_at_every_tolerance(self, seed, relative,
                                                absolute, distribution,
                                                anomalies):
        """Diffing any trace against itself yields an empty report no
        matter how tight (even all-zero) the tolerances are."""
        trace = make_random_trace(seed, events_per_core=15)
        tolerances = DiffTolerances(relative=relative,
                                    absolute=absolute,
                                    distribution=distribution,
                                    anomalies=anomalies)
        report = diff_traces(trace, trace, tolerances)
        assert report.is_empty
        assert report.to_dict()["deviations"] == []

    def test_self_diff_empty_across_stores(self):
        trace = make_random_trace(3, events_per_core=20)
        assert diff_traces(trace, trace.to_columnar(), EXACT).is_empty
        assert diff_traces(trace.to_columnar(), trace, EXACT).is_empty

    def test_loose_tolerance_hides_small_deviations(self):
        baseline = make_random_trace(7, events_per_core=25)
        candidate = make_random_trace(8, events_per_core=25)
        strict = diff_traces(baseline, candidate, EXACT)
        loose = diff_traces(baseline, candidate,
                            DiffTolerances(relative=1e9, absolute=1e18,
                                           distribution=2.0,
                                           anomalies=10**6))
        assert not strict.is_empty
        assert loose.is_empty

    def test_report_serializes_to_json(self, tmp_path):
        baseline = make_random_trace(7, events_per_core=25)
        candidate = make_random_trace(8, events_per_core=25)
        report = diff_traces(baseline, candidate, EXACT)
        path = tmp_path / "report.json"
        text = report.to_json(str(path))
        payload = json.loads(path.read_text())
        assert payload == json.loads(text)
        assert payload["empty"] is False
        assert payload["tolerances"]["relative"] == 0.0
        assert all(entry["metric"] for entry in payload["deviations"])

    def test_distribution_shift_bounds(self):
        assert distribution_shift([], []) == 0.0
        assert distribution_shift([1.0], []) == 2.0
        assert distribution_shift([1.0, 2.0], [1.0, 2.0]) == 0.0
        disjoint = distribution_shift(np.zeros(10), np.ones(10) * 100)
        assert disjoint == pytest.approx(2.0)

    def test_diff_trace_files_uses_cache(self, suite):
        __, paths = suite
        report = diff_trace_files(paths[0], paths[0], tolerances=EXACT)
        assert report.is_empty
        assert report.baseline == "synthetic_0.ost"


class TestGoldenDiff:
    """The committed seidel/kmeans golden traces pin the diff output."""

    def test_golden_self_diffs_empty(self):
        for name in ("seidel", "kmeans"):
            path = str(DATA_DIR / "golden_{}.ost".format(name))
            assert diff_trace_files(path, path, tolerances=EXACT,
                                    cache=False).is_empty

    def test_golden_cross_diff_matches_pinned_report(self):
        with open(DATA_DIR / "golden_diff.json") as stream:
            pinned = json.load(stream)
        report = diff_trace_files(
            str(DATA_DIR / "golden_seidel.ost"),
            str(DATA_DIR / "golden_kmeans.ost"),
            tolerances=EXACT, cache=False)
        assert report.to_dict() == pinned


class TestComparisonRendering:
    def test_side_by_side_stacks_every_trace(self, suite):
        __, paths = suite
        traces = [read_trace(path, columnar=True) for path in paths]
        fb = render_timelines_side_by_side(traces, width=64,
                                           lane_height=2, gap=1)
        lanes = sum(2 * trace.num_cores for trace in traces)
        assert fb.height == lanes + (len(traces) - 1)
        assert fb.width == 64
        assert len(fb.unique_colors()) > 1

    def test_side_by_side_respects_window(self, suite):
        __, paths = suite
        trace = read_trace(paths[0], columnar=True)
        fb = render_timelines_side_by_side(
            [trace], width=32, lane_height=1,
            start=trace.begin, end=trace.begin + 10)
        assert fb.height == trace.num_cores

    def test_matrix_panel_shares_scale(self):
        """A cell with half the global peak must render strictly
        lighter than the peak cell of the other panel — per-panel
        self-normalization would paint them identically."""
        left = np.array([[1.0, 0.0], [0.0, 1.0]])
        right = np.array([[0.5, 0.0], [0.0, 0.5]])
        cell = 4
        gap = 2
        fb = render_matrices_side_by_side([left, right],
                                          cell_size=cell, gap=gap)
        assert fb.width > 2 * cell * 2
        # Center of each panel's top-left cell (gap=1 inside panels).
        left_pixel = fb.pixels[1 + cell // 2, 1 + cell // 2]
        panel_width = 2 * (cell + 1) + 1
        right_x = panel_width + gap + 1 + cell // 2
        right_pixel = fb.pixels[1 + cell // 2, right_x]
        assert not np.array_equal(left_pixel, right_pixel)
        with pytest.raises(ValueError):
            render_matrices_side_by_side([left, np.zeros((3, 3))])

    def test_state_overlay_one_color_per_trace(self, suite):
        __, paths = suite
        traces = [read_trace(path, columnar=True) for path in paths]
        fb, legend = render_state_overlay(traces, width=48, height=24)
        assert len(legend) == len(traces)
        assert fb.width == 48
        # At least the background plus one curve color.
        assert len(fb.unique_colors()) >= 2

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            render_timelines_side_by_side([])
        with pytest.raises(ValueError):
            render_matrices_side_by_side([])
        with pytest.raises(ValueError):
            render_state_overlay([])
