"""Tests for derived metrics (Section II-A.5, Figs. 3/8/10)."""

import numpy as np
import pytest

from repro.core import (TaskTypeFilter, WorkerState,
                        aggregate_counter_series,
                        average_task_duration_series,
                        bytes_between_nodes_series,
                        counter_derivative_series, counter_ratio_series,
                        discrete_derivative, interval_edges,
                        state_count_series, task_duration_stats)


class TestIntervalEdges:
    def test_edges_cover_trace(self, seidel_trace_small):
        trace = seidel_trace_small
        edges = interval_edges(trace, 10)
        assert edges[0] == trace.begin
        assert edges[-1] == trace.end
        assert len(edges) == 11

    def test_invalid_interval_count(self, seidel_trace_small):
        with pytest.raises(ValueError):
            interval_edges(seidel_trace_small, 0)

    def test_custom_range(self, seidel_trace_small):
        edges = interval_edges(seidel_trace_small, 4, start=100, end=500)
        assert list(edges) == [100, 200, 300, 400, 500]


class TestStateCountSeries:
    def test_counts_bounded_by_cores(self, seidel_trace_small):
        trace = seidel_trace_small
        for state in (WorkerState.RUNNING, WorkerState.IDLE):
            __, counts = state_count_series(trace, state, 30)
            assert (counts >= 0).all()
            assert (counts <= trace.num_cores + 1e-9).all()

    def test_total_time_conserved(self, seidel_trace_small):
        """Sum over bins of count*width equals total time in state."""
        trace = seidel_trace_small
        edges, counts = state_count_series(trace, WorkerState.RUNNING, 25)
        widths = np.diff(edges)
        total = float((counts * widths).sum())
        columns = trace.states.columns
        keep = columns["state"] == int(WorkerState.RUNNING)
        expected = float((columns["end"][keep]
                          - columns["start"][keep]).sum())
        assert total == pytest.approx(expected, rel=1e-9)

    def test_single_core_subset(self, seidel_trace_small):
        trace = seidel_trace_small
        __, all_counts = state_count_series(trace, WorkerState.RUNNING,
                                            20)
        __, one = state_count_series(trace, WorkerState.RUNNING, 20,
                                     cores=[0])
        assert (one <= all_counts + 1e-9).all()
        assert (one <= 1.0 + 1e-9).all()


class TestAverageTaskDuration:
    def test_weighted_average_in_duration_range(self, seidel_trace_small):
        trace = seidel_trace_small
        __, averages = average_task_duration_series(trace, 20)
        columns = trace.tasks.columns
        durations = columns["end"] - columns["start"]
        positive = averages[averages > 0]
        assert positive.min() >= durations.min()
        assert positive.max() <= durations.max()

    def test_filter_restricts_tasks(self, seidel_trace_small):
        trace = seidel_trace_small
        __, only_init = average_task_duration_series(
            trace, 20, task_filter=TaskTypeFilter("seidel_init"))
        # Init tasks run early: late bins must be zero.
        assert only_init[-1] == 0.0

    def test_uniform_durations_give_constant_series(self):
        from repro.core import TopologyInfo, TraceBuilder
        builder = TraceBuilder(TopologyInfo(1, 1))
        for index in range(10):
            builder.task_execution(index, 0, 0, index * 100,
                                   index * 100 + 100)
        trace = builder.build()
        __, averages = average_task_duration_series(trace, 5)
        assert averages == pytest.approx([100.0] * 5)


class TestDerivatives:
    def test_discrete_derivative_linear(self):
        edges = np.asarray([0.0, 10.0, 20.0, 30.0])
        values = np.asarray([0.0, 5.0, 10.0, 15.0])
        assert discrete_derivative(edges, values) == pytest.approx(
            [0.5, 0.5, 0.5])

    def test_aggregate_counter_is_monotone_for_monotone_counters(
            self, seidel_trace_small):
        trace = seidel_trace_small
        edges, totals = aggregate_counter_series(trace, "cache_misses",
                                                 30)
        assert (np.diff(totals) >= -1e-6).all()

    def test_counter_derivative_non_negative(self, seidel_trace_small):
        __, rates = counter_derivative_series(seidel_trace_small,
                                              "cache_misses", 30)
        assert (rates >= -1e-9).all()

    def test_ratio_series_shape(self, seidel_trace_small):
        edges, ratio = counter_ratio_series(
            seidel_trace_small, "branch_mispredictions", "cache_misses",
            15)
        assert len(ratio) == 15
        assert len(edges) == 16

    def test_counter_accepts_id_or_name(self, seidel_trace_small):
        trace = seidel_trace_small
        counter_id = trace.counter_id("cache_misses")
        __, by_name = aggregate_counter_series(trace, "cache_misses", 10)
        __, by_id = aggregate_counter_series(trace, counter_id, 10)
        assert by_name == pytest.approx(by_id)


class TestRusageSeries:
    def test_system_time_grows_only_during_faults(self,
                                                  seidel_trace_small):
        """Fig. 10: OS time and resident size increase almost
        exclusively during initialization (the first-touch phase)."""
        trace = seidel_trace_small
        edges, rss = aggregate_counter_series(trace, "os_resident_kb", 20)
        growth = np.diff(rss)
        first_half = growth[:10].sum()
        second_half = growth[10:].sum()
        assert first_half > 0
        assert second_half <= first_half * 0.05

    def test_resident_size_totals_match_footprint(self,
                                                  seidel_trace_small):
        trace = seidel_trace_small
        __, rss = aggregate_counter_series(trace, "os_resident_kb", 10)
        # 36 regions of 16x16 doubles = 2 KiB each -> one 4 KiB page.
        assert rss[-1] == pytest.approx(36 * 4, rel=0.01)


class TestBytesBetweenNodes:
    def test_totals_match_communication_matrix(self, seidel_trace_small):
        from repro.core import communication_matrix
        trace = seidel_trace_small
        matrix = communication_matrix(trace, normalize=False)
        src, dst = 1, 0
        __, series = bytes_between_nodes_series(trace, src, dst, 10)
        assert series.sum() == pytest.approx(matrix[src, dst])


class TestDurationStats:
    def test_matches_numpy(self, seidel_trace_small):
        trace = seidel_trace_small
        mean, std = task_duration_stats(trace)
        columns = trace.tasks.columns
        durations = (columns["end"] - columns["start"]).astype(float)
        assert mean == pytest.approx(durations.mean())
        assert std == pytest.approx(durations.std())

    def test_empty_filter(self, seidel_trace_small):
        from repro.core import DurationFilter
        mean, std = task_duration_stats(
            seidel_trace_small, DurationFilter(minimum=10**12))
        assert (mean, std) == (0.0, 0.0)
