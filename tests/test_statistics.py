"""Tests for statistics views (Section II-A.2, Figs. 15/16)."""

import numpy as np
import pytest

from repro.core import (TaskTypeFilter, WorkerState, average_parallelism,
                        communication_matrix, interval_report,
                        locality_fraction, per_core_state_time,
                        state_time_summary, steal_matrix,
                        task_duration_histogram)


class TestHistogram:
    def test_fractions_sum_to_one(self, seidel_trace_small):
        __, fractions = task_duration_histogram(seidel_trace_small,
                                                bins=12)
        assert fractions.sum() == pytest.approx(1.0)

    def test_filter_restricts_population(self, seidel_trace_small):
        trace = seidel_trace_small
        __, init_only = task_duration_histogram(
            trace, bins=5, task_filter=TaskTypeFilter("seidel_init"))
        assert init_only.sum() == pytest.approx(1.0)

    def test_pinned_range(self, seidel_trace_small):
        edges, __ = task_duration_histogram(seidel_trace_small, bins=4,
                                            value_range=(0, 1000))
        assert edges[0] == 0 and edges[-1] == 1000

    def test_interval_restriction(self, seidel_trace_small):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        __, early = task_duration_histogram(trace, bins=6, start=None,
                                            end=mid)
        assert early.sum() == pytest.approx(1.0)


class TestParallelism:
    def test_bounded_by_core_count(self, seidel_trace_small):
        value = average_parallelism(seidel_trace_small)
        assert 0 < value <= seidel_trace_small.num_cores

    def test_equals_busy_time_over_duration(self, seidel_trace_small):
        trace = seidel_trace_small
        columns = trace.tasks.columns
        busy = float((columns["end"] - columns["start"]).sum())
        expected = busy / trace.duration
        assert average_parallelism(trace) == pytest.approx(expected)

    def test_empty_interval(self, seidel_trace_small):
        assert average_parallelism(seidel_trace_small, 5, 5) == 0.0


class TestStateSummary:
    def test_totals_match_simulator(self, seidel_run):
        result, trace = seidel_run
        summary = state_time_summary(trace)
        for state, cycles in summary.items():
            if state == int(WorkerState.SYNC):
                continue    # SYNC extends past the makespan
            assert cycles == result.state_cycles[state]

    def test_per_core_sums_to_total(self, seidel_trace_small):
        trace = seidel_trace_small
        total = state_time_summary(trace)[int(WorkerState.RUNNING)]
        per_core = per_core_state_time(trace, WorkerState.RUNNING)
        assert per_core.sum() == total

    def test_interval_clipping(self, seidel_trace_small):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        first = state_time_summary(trace, trace.begin, mid)
        second = state_time_summary(trace, mid, trace.end)
        full = state_time_summary(trace)
        for state in full:
            if state == int(WorkerState.SYNC):
                continue
            assert (first.get(state, 0) + second.get(state, 0)
                    == full[state])


class TestCommunicationMatrix:
    def test_normalized_sums_to_one(self, seidel_trace_small):
        matrix = communication_matrix(seidel_trace_small)
        assert matrix.sum() == pytest.approx(1.0)

    def test_shape_is_node_square(self, seidel_trace_small):
        matrix = communication_matrix(seidel_trace_small)
        nodes = seidel_trace_small.topology.num_nodes
        assert matrix.shape == (nodes, nodes)

    def test_raw_bytes_match_access_total(self, seidel_trace_small):
        trace = seidel_trace_small
        matrix = communication_matrix(trace, normalize=False)
        accesses = trace.accesses
        nodes = trace.nodes_of_addresses(accesses["address"])
        placed = accesses["size"][nodes >= 0].sum()
        assert matrix.sum() == pytest.approx(float(placed))

    def test_read_write_split(self, seidel_trace_small):
        trace = seidel_trace_small
        total = communication_matrix(trace, normalize=False)
        reads = communication_matrix(trace, normalize=False, kind="read")
        writes = communication_matrix(trace, normalize=False,
                                      kind="write")
        assert reads.sum() + writes.sum() == pytest.approx(total.sum())

    def test_locality_fraction_is_diagonal_share(self,
                                                 seidel_trace_small):
        trace = seidel_trace_small
        matrix = communication_matrix(trace)
        assert locality_fraction(trace) == pytest.approx(
            float(np.trace(matrix)))


class TestStealMatrix:
    def test_no_self_steals(self, seidel_trace_small):
        matrix = steal_matrix(seidel_trace_small)
        assert np.trace(matrix) == 0

    def test_total_matches_comm_events(self, seidel_trace_small):
        matrix = steal_matrix(seidel_trace_small)
        assert matrix.sum() == len(seidel_trace_small.comm["timestamp"])


class TestIntervalReport:
    def test_report_fields(self, seidel_trace_small):
        trace = seidel_trace_small
        report = interval_report(trace)
        assert report.tasks == len(trace.tasks)
        assert 0 <= report.locality <= 1
        text = report.describe()
        assert "average parallelism" in text
        assert "RUNNING" in text

    def test_sub_interval_report(self, seidel_trace_small):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        report = interval_report(trace, trace.begin, mid)
        assert report.tasks <= len(trace.tasks)
