"""Property-based round-trips for the trace format and columnar store.

A seeded random trace generator (``trace_gen.py``) drives
write -> read -> compare over every record kind, across plain,
compressed and chunk-indexed files, and pins down that the
object <-> columnar conversions are lossless.  The oracle is
:func:`repro.core.traces_equal`, which compares record multisets
exactly (including counter-sample floats).
"""

import numpy as np
import pytest

from repro.core import traces_equal
from repro.trace_format import (load_cache, read_chunk_index, read_trace,
                                read_window_columnar, split_time_window,
                                write_cache, write_trace)
from trace_gen import make_random_trace

SEEDS = range(6)


@pytest.fixture(scope="module", params=SEEDS)
def random_trace(request):
    return make_random_trace(request.param)


class TestFileRoundTrip:
    @pytest.mark.parametrize("suffix,index", [
        ("plain.ost", False),
        ("indexed.ost", True),
        ("compressed.ost.gz", False),
    ])
    def test_write_read_preserves_every_record(self, random_trace,
                                               tmp_path, suffix, index):
        path = str(tmp_path / suffix)
        write_trace(random_trace, path, index=index, chunk_records=64)
        assert traces_equal(read_trace(path), random_trace)

    def test_columnar_reader_equals_object_reader(self, random_trace,
                                                  tmp_path):
        path = str(tmp_path / "trace.ost")
        write_trace(random_trace, path, chunk_records=64)
        columnar = read_trace(path, columnar=True)
        assert traces_equal(columnar, read_trace(path))
        assert traces_equal(columnar, random_trace.to_columnar())

    def test_indexed_file_has_an_index(self, random_trace, tmp_path):
        path = str(tmp_path / "trace.ost")
        write_trace(random_trace, path, index=True, chunk_records=64)
        assert read_chunk_index(path) is not None

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sparse_traces_round_trip(self, seed, tmp_path):
        """The format is incremental: traces missing whole record
        kinds still round-trip exactly."""
        trace = make_random_trace(seed, sparse=True)
        path = str(tmp_path / "sparse.ost")
        write_trace(trace, path, chunk_records=64)
        assert traces_equal(read_trace(path), trace)
        assert traces_equal(read_trace(path, columnar=True), trace)


class TestColumnarConversion:
    def test_object_columnar_object_is_lossless(self, random_trace):
        assert traces_equal(random_trace.to_columnar().to_objects(),
                            random_trace)

    def test_columnar_object_columnar_is_lossless(self, random_trace):
        columnar = random_trace.to_columnar()
        assert traces_equal(columnar.to_objects().to_columnar(),
                            columnar)

    def test_equality_is_actually_discriminating(self, random_trace):
        other = make_random_trace(10_001)
        assert not traces_equal(random_trace, other)


class TestWindowExtraction:
    def test_columnar_window_equals_object_window(self, random_trace,
                                                  tmp_path):
        path = str(tmp_path / "trace.ost")
        write_trace(random_trace, path, chunk_records=64)
        span = random_trace.end - random_trace.begin
        start = random_trace.begin + span // 4
        end = start + max(span // 3, 1)
        window = split_time_window(path, start, end)
        assert traces_equal(
            split_time_window(path, start, end, columnar=True), window)
        assert traces_equal(read_window_columnar(path, start, end),
                            window)


class TestMappedCache:
    """The ``.ostc`` sidecar: lossless round trip, and the mapped store
    must be indistinguishable from the parsed one."""

    def test_cache_round_trip_preserves_every_record(self, random_trace,
                                                     tmp_path):
        cache_path = str(tmp_path / "trace.ostc")
        write_cache(random_trace, cache_path)
        assert traces_equal(load_cache(cache_path), random_trace)

    def test_sparse_traces_round_trip_through_cache(self, tmp_path):
        for seed in SEEDS:
            trace = make_random_trace(seed, sparse=True)
            cache_path = str(tmp_path / "sparse_{}.ostc".format(seed))
            write_cache(trace, cache_path)
            assert traces_equal(load_cache(cache_path), trace)

    def test_mapped_store_equals_parsed_store(self, random_trace,
                                              tmp_path):
        """Every analysis surface gives bit-identical answers on the
        memory-mapped store and the freshly parsed columnar store."""
        from repro.core import statistics
        from repro.core.anomalies import scan
        path = str(tmp_path / "trace.ost")
        write_trace(random_trace, path, chunk_records=64)
        parsed = read_trace(path, columnar=True)
        mapped = read_trace(path, cache=True)   # writes, then maps
        mapped = read_trace(path, cache=True)   # second open: the map
        assert traces_equal(mapped, parsed)
        assert mapped.begin == parsed.begin and mapped.end == parsed.end
        assert (statistics.interval_report(mapped).describe()
                == statistics.interval_report(parsed).describe())
        assert scan(mapped) == scan(parsed)
        assert np.array_equal(
            statistics.communication_matrix(mapped),
            statistics.communication_matrix(parsed))

    def test_window_slice_equals_split_time_window(self, random_trace,
                                                   tmp_path):
        path = str(tmp_path / "trace.ost")
        write_trace(random_trace, path, chunk_records=64)
        read_trace(path, cache=True)            # writes the sidecar
        mapped = read_trace(path, cache=True)   # the actual memmap
        base = mapped.states.lane(0).base
        while base is not None and not isinstance(base, np.memmap):
            base = base.base          # views chain through plain ndarrays
        assert base is not None
        span = random_trace.end - random_trace.begin
        for lo_num, hi_num in ((0, 4), (1, 3), (2, 4), (0, 1)):
            start = random_trace.begin + span * lo_num // 4
            end = random_trace.begin + max(span * hi_num // 4,
                                           span * lo_num // 4 + 1)
            window = split_time_window(path, start, end)
            assert traces_equal(mapped.slice_time_window(start, end),
                                window)
            assert traces_equal(
                read_window_columnar(path, start, end, cache=True),
                window)
