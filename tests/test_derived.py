"""Tests for the configurable derived-metric generators (Fig. 1 box 5)."""

import numpy as np
import pytest

from repro.core import (AggregatedCounter, AverageTaskDuration,
                        BytesBetweenNodes, Derivative, DerivedMetricMenu,
                        Ratio, WorkerState, WorkersInState,
                        counter_histogram, state_count_series)
from repro.render import Framebuffer, TimelineView, \
    render_derived_series


class TestWorkersInState:
    def test_matches_metric_function(self, seidel_trace_small):
        trace = seidel_trace_small
        spec = WorkersInState(state=int(WorkerState.IDLE))
        series = spec.materialize(trace, num_intervals=50)
        __, expected = state_count_series(trace, WorkerState.IDLE, 50)
        assert np.asarray(series.values) == pytest.approx(expected)

    def test_name_mentions_state(self):
        assert "IDLE" in WorkersInState(int(WorkerState.IDLE)).name

    def test_core_restriction(self, seidel_trace_small):
        spec = WorkersInState(state=int(WorkerState.RUNNING),
                              cores=(0, 1))
        series = spec.materialize(seidel_trace_small, 20)
        assert max(series.values) <= 2.0 + 1e-9


class TestComposition:
    def test_derivative_of_aggregate(self, seidel_trace_small):
        spec = Derivative(AggregatedCounter("os_resident_kb"))
        series = spec.materialize(seidel_trace_small, 50)
        values = np.asarray(series.values)
        # RSS only grows: the derivative is non-negative and positive
        # somewhere in the initialization phase.
        assert (values >= -1e-9).all()
        assert values.max() > 0

    def test_ratio_operator(self, seidel_trace_small):
        mispred = AggregatedCounter("branch_mispredictions")
        misses = AggregatedCounter("cache_misses")
        ratio = mispred / misses
        assert isinstance(ratio, Ratio)
        series = ratio.materialize(seidel_trace_small, 30)
        assert len(series.values) == 30
        assert (np.asarray(series.values) >= 0).all()

    def test_derivative_method(self):
        spec = AverageTaskDuration().derivative()
        assert isinstance(spec, Derivative)

    def test_bytes_between_nodes_spec(self, seidel_trace_small):
        spec = BytesBetweenNodes(src_node=1, dst_node=0)
        series = spec.materialize(seidel_trace_small, 10)
        from repro.core import communication_matrix
        matrix = communication_matrix(seidel_trace_small,
                                      normalize=False)
        assert sum(series.values) == pytest.approx(matrix[1, 0])


class TestMenu:
    def build_menu(self):
        menu = DerivedMetricMenu()
        menu.add(WorkersInState(int(WorkerState.IDLE)))
        menu.add(AverageTaskDuration())
        menu.add(Derivative(AggregatedCounter("os_system_time_us")),
                 name="sys-time rate")
        return menu

    def test_materialize_all(self, seidel_trace_small):
        menu = self.build_menu()
        series = menu.materialize_all(seidel_trace_small,
                                      num_intervals=25)
        assert set(series) == set(menu.names())
        for entry in series.values():
            assert len(entry.values) in (24, 25)

    def test_config_roundtrip(self, seidel_trace_small):
        menu = self.build_menu()
        menu.add(Ratio(AggregatedCounter("branch_mispredictions"),
                       AggregatedCounter("cache_misses")), name="ratio")
        config = menu.to_config()
        rebuilt = DerivedMetricMenu.from_config(config)
        assert rebuilt.names() == menu.names()
        original = menu.materialize_all(seidel_trace_small, 20)
        recovered = rebuilt.materialize_all(seidel_trace_small, 20)
        for name in original:
            assert (np.asarray(original[name].values)
                    == pytest.approx(
                        np.asarray(recovered[name].values)))

    def test_remove(self):
        menu = self.build_menu()
        count = len(menu)
        menu.remove(menu.names()[0])
        assert len(menu) == count - 1

    def test_unknown_config_kind_rejected(self):
        with pytest.raises(ValueError):
            DerivedMetricMenu.from_config({"x": {"kind": "nope"}})


class TestRenderDerived:
    def test_overlay_draws(self, seidel_trace_small):
        trace = seidel_trace_small
        series = WorkersInState(int(WorkerState.IDLE)).materialize(
            trace, 100)
        view = TimelineView.fit(trace, 200, 80)
        fb = Framebuffer(200, 80)
        calls = render_derived_series(series, view, fb)
        assert calls > 0
        assert fb.pixels_drawn > 0

    def test_empty_series_noop(self, seidel_trace_small):
        from repro.core.derived import DerivedSeries
        series = DerivedSeries("empty", (0.0,), ())
        view = TimelineView(0, 100, width=10, height=10)
        fb = Framebuffer(10, 10)
        assert render_derived_series(series, view, fb) == 0


class TestCounterHistogram:
    def test_fractions_sum_to_one(self, kmeans_trace_small):
        from repro.core import TaskTypeFilter
        __, fractions = counter_histogram(
            kmeans_trace_small, "branch_mispredictions", bins=12,
            task_filter=TaskTypeFilter("kmeans_distance"))
        assert fractions.sum() == pytest.approx(1.0)

    def test_range_pinning(self, kmeans_trace_small):
        edges, __ = counter_histogram(kmeans_trace_small,
                                      "cache_misses", bins=4,
                                      value_range=(0, 100))
        assert edges[0] == 0 and edges[-1] == 100
