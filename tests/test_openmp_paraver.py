"""Tests for the OpenMP-style frontend and the Paraver exporter."""

import pytest

from repro.core import graph_from_program
from repro.runtime import (Machine, RandomStealScheduler, TraceCollector,
                           run_program)
from repro.trace_format import export_paraver
from repro.workloads import OpenMPProgram, build_fibonacci, \
    build_mergesort


@pytest.fixture
def omp_machine():
    return Machine(2, 4)


class TestOpenMPFrontend:
    def test_depend_in_after_out(self, omp_machine):
        omp = OpenMPProgram(omp_machine)
        producer = omp.task("produce", 100, depend_out=["x"])
        consumer = omp.task("consume", 100, depend_in=["x"])
        omp.finalize()
        assert consumer.dependencies == [producer]

    def test_depend_inout_chains(self, omp_machine):
        omp = OpenMPProgram(omp_machine)
        first = omp.task("init", 100, depend_out=["acc"])
        second = omp.task("add", 100, depend_inout=["acc"])
        third = omp.task("add", 100, depend_inout=["acc"])
        omp.finalize()
        assert second.dependencies == [first]
        assert third.dependencies == [second]

    def test_independent_variables_parallel(self, omp_machine):
        omp = OpenMPProgram(omp_machine)
        a = omp.task("a", 100, depend_out=["x"])
        b = omp.task("b", 100, depend_out=["y"])
        omp.finalize()
        assert a.dependencies == [] and b.dependencies == []

    def test_variable_sizes(self, omp_machine):
        omp = OpenMPProgram(omp_machine, variable_bytes=128)
        region = omp.variable("big", size=10_000)
        assert region.size == 10_000
        assert omp.variable("big") is region
        assert omp.variable("small").size == 128


class TestFibonacci:
    def test_structure_and_execution(self, omp_machine):
        program = build_fibonacci(omp_machine, n=8)
        graph = graph_from_program(program)
        # The combine chain forces depth ~n.
        assert graph.max_depth() >= 5
        collector = TraceCollector(omp_machine)
        result, trace = run_program(
            program, RandomStealScheduler(omp_machine, seed=1),
            collector=collector)
        assert result.tasks_executed == len(program.tasks)

    def test_dynamic_creation_chains(self, omp_machine):
        program = build_fibonacci(omp_machine, n=7)
        created_dynamically = [task for task in program.tasks
                               if task.creator is not None]
        assert len(created_dynamically) > len(program.tasks) // 2

    def test_task_types(self, omp_machine):
        program = build_fibonacci(omp_machine, n=6)
        names = {task_type.name for task_type in program.task_types}
        assert names == {"fib_leaf", "fib_spawn", "fib_combine"}


class TestMergesort:
    def test_structure(self, omp_machine):
        program = build_mergesort(omp_machine, elements=1 << 14,
                                  leaf_elements=1 << 11)
        leaves = [task for task in program.tasks
                  if task.task_type.name == "msort_leaf"]
        merges = [task for task in program.tasks
                  if task.task_type.name == "msort_merge"]
        assert len(leaves) == 8
        assert len(merges) == 7     # a balanced binary merge tree
        assert program.validate_acyclic()

    def test_executes_serial_merge_root_last(self, omp_machine):
        program = build_mergesort(omp_machine, elements=1 << 13,
                                  leaf_elements=1 << 11)
        collector = TraceCollector(omp_machine)
        __, trace = run_program(
            program, RandomStealScheduler(omp_machine, seed=2),
            collector=collector)
        last = max(trace.task_executions(), key=lambda e: e.end)
        assert trace.task_types[last.type_id].name == "msort_merge"


class TestParaverExport:
    def test_export_files(self, seidel_trace_small, tmp_path):
        path = tmp_path / "seidel.prv"
        records = export_paraver(seidel_trace_small, str(path))
        assert records == (len(seidel_trace_small.states)
                           + len(seidel_trace_small.tasks)
                           + len(seidel_trace_small.discrete))
        prv = path.read_text().splitlines()
        assert prv[0].startswith("#Paraver")
        assert len(prv) == records + 1
        pcf = (tmp_path / "seidel.pcf").read_text()
        assert "task execution" in pcf
        assert "seidel_block" in pcf

    def test_records_time_sorted(self, seidel_trace_small, tmp_path):
        path = tmp_path / "sorted.prv"
        export_paraver(seidel_trace_small, str(path))
        times = []
        for line in path.read_text().splitlines()[1:]:
            fields = line.split(":")
            times.append(int(fields[5]))
        assert times == sorted(times)

    def test_state_ids_offset_by_one(self, seidel_trace_small,
                                     tmp_path):
        path = tmp_path / "states.prv"
        export_paraver(seidel_trace_small, str(path))
        state_values = {int(line.split(":")[-1])
                        for line in path.read_text().splitlines()[1:]
                        if line.startswith("1:")}
        assert 0 not in state_values     # 0 is reserved for idle

    def test_requires_prv_suffix(self, seidel_trace_small, tmp_path):
        with pytest.raises(ValueError):
            export_paraver(seidel_trace_small, str(tmp_path / "x.trace"))
