"""Tests for the OpenMP-style frontend and the Paraver round trip
(export, the import path and the CLI ``ingest`` subcommand)."""

import numpy as np
import pytest

from repro.core import graph_from_program, state_time_summary
from repro.runtime import (Machine, RandomStealScheduler, TraceCollector,
                           run_program)
from repro.trace_format import (FormatError, export_paraver,
                                import_paraver)
from repro.workloads import OpenMPProgram, build_fibonacci, \
    build_mergesort


@pytest.fixture
def omp_machine():
    return Machine(2, 4)


class TestOpenMPFrontend:
    def test_depend_in_after_out(self, omp_machine):
        omp = OpenMPProgram(omp_machine)
        producer = omp.task("produce", 100, depend_out=["x"])
        consumer = omp.task("consume", 100, depend_in=["x"])
        omp.finalize()
        assert consumer.dependencies == [producer]

    def test_depend_inout_chains(self, omp_machine):
        omp = OpenMPProgram(omp_machine)
        first = omp.task("init", 100, depend_out=["acc"])
        second = omp.task("add", 100, depend_inout=["acc"])
        third = omp.task("add", 100, depend_inout=["acc"])
        omp.finalize()
        assert second.dependencies == [first]
        assert third.dependencies == [second]

    def test_independent_variables_parallel(self, omp_machine):
        omp = OpenMPProgram(omp_machine)
        a = omp.task("a", 100, depend_out=["x"])
        b = omp.task("b", 100, depend_out=["y"])
        omp.finalize()
        assert a.dependencies == [] and b.dependencies == []

    def test_variable_sizes(self, omp_machine):
        omp = OpenMPProgram(omp_machine, variable_bytes=128)
        region = omp.variable("big", size=10_000)
        assert region.size == 10_000
        assert omp.variable("big") is region
        assert omp.variable("small").size == 128


class TestFibonacci:
    def test_structure_and_execution(self, omp_machine):
        program = build_fibonacci(omp_machine, n=8)
        graph = graph_from_program(program)
        # The combine chain forces depth ~n.
        assert graph.max_depth() >= 5
        collector = TraceCollector(omp_machine)
        result, trace = run_program(
            program, RandomStealScheduler(omp_machine, seed=1),
            collector=collector)
        assert result.tasks_executed == len(program.tasks)

    def test_dynamic_creation_chains(self, omp_machine):
        program = build_fibonacci(omp_machine, n=7)
        created_dynamically = [task for task in program.tasks
                               if task.creator is not None]
        assert len(created_dynamically) > len(program.tasks) // 2

    def test_task_types(self, omp_machine):
        program = build_fibonacci(omp_machine, n=6)
        names = {task_type.name for task_type in program.task_types}
        assert names == {"fib_leaf", "fib_spawn", "fib_combine"}


class TestMergesort:
    def test_structure(self, omp_machine):
        program = build_mergesort(omp_machine, elements=1 << 14,
                                  leaf_elements=1 << 11)
        leaves = [task for task in program.tasks
                  if task.task_type.name == "msort_leaf"]
        merges = [task for task in program.tasks
                  if task.task_type.name == "msort_merge"]
        assert len(leaves) == 8
        assert len(merges) == 7     # a balanced binary merge tree
        assert program.validate_acyclic()

    def test_executes_serial_merge_root_last(self, omp_machine):
        program = build_mergesort(omp_machine, elements=1 << 13,
                                  leaf_elements=1 << 11)
        collector = TraceCollector(omp_machine)
        __, trace = run_program(
            program, RandomStealScheduler(omp_machine, seed=2),
            collector=collector)
        last = max(trace.task_executions(), key=lambda e: e.end)
        assert trace.task_types[last.type_id].name == "msort_merge"


class TestParaverExport:
    def test_export_files(self, seidel_trace_small, tmp_path):
        path = tmp_path / "seidel.prv"
        records = export_paraver(seidel_trace_small, str(path))
        samples = sum(
            len(timestamps) for timestamps, __ in
            seidel_trace_small.counter_series.values())
        assert records == (len(seidel_trace_small.states)
                           + len(seidel_trace_small.tasks)
                           + len(seidel_trace_small.discrete)
                           + len(seidel_trace_small.comm["timestamp"])
                           + samples)
        prv = path.read_text().splitlines()
        assert prv[0].startswith("#Paraver")
        assert len(prv) == records + 1
        pcf = (tmp_path / "seidel.pcf").read_text()
        assert "task execution" in pcf
        assert "seidel_block" in pcf

    def test_records_time_sorted(self, seidel_trace_small, tmp_path):
        path = tmp_path / "sorted.prv"
        export_paraver(seidel_trace_small, str(path))
        times = []
        for line in path.read_text().splitlines()[1:]:
            fields = line.split(":")
            times.append(int(fields[5]))
        assert times == sorted(times)

    def test_state_ids_offset_by_one(self, seidel_trace_small,
                                     tmp_path):
        path = tmp_path / "states.prv"
        export_paraver(seidel_trace_small, str(path))
        state_values = {int(line.split(":")[-1])
                        for line in path.read_text().splitlines()[1:]
                        if line.startswith("1:")}
        assert 0 not in state_values     # 0 is reserved for idle

    def test_requires_prv_suffix(self, seidel_trace_small, tmp_path):
        with pytest.raises(ValueError):
            export_paraver(seidel_trace_small, str(tmp_path / "x.trace"))


class TestParaverImport:
    """The other half of the round trip (the latent gap: the exporter
    shipped for a full PR generation without any importer)."""

    @pytest.fixture(scope="class")
    def round_tripped(self, seidel_trace_small, tmp_path_factory):
        path = tmp_path_factory.mktemp("prv") / "seidel.prv"
        export_paraver(seidel_trace_small, str(path))
        return import_paraver(str(path))

    def test_topology_shape(self, seidel_trace_small, round_tripped):
        assert (round_tripped.topology.num_nodes,
                round_tripped.topology.cores_per_node) == \
            (seidel_trace_small.topology.num_nodes,
             seidel_trace_small.topology.cores_per_node)

    def test_states_exact(self, seidel_trace_small, round_tripped):
        for name, column in seidel_trace_small.states.columns.items():
            assert np.array_equal(column,
                                  round_tripped.states.columns[name])

    def test_tasks_exact(self, seidel_trace_small, round_tripped):
        for name, column in seidel_trace_small.tasks.columns.items():
            assert np.array_equal(column,
                                  round_tripped.tasks.columns[name])

    def test_counters_exact(self, seidel_trace_small, round_tripped):
        assert sorted(round_tripped.counter_series) == \
            sorted(seidel_trace_small.counter_series)
        for key, (times, values) in \
                seidel_trace_small.counter_series.items():
            got_times, got_values = round_tripped.counter_series[key]
            assert np.array_equal(times, got_times)
            assert np.array_equal(values, got_values)
        assert round_tripped.counter_descriptions == \
            seidel_trace_small.counter_descriptions

    def test_statistics_match(self, seidel_trace_small, round_tripped):
        assert state_time_summary(round_tripped) == \
            state_time_summary(seidel_trace_small)
        assert (round_tripped.begin, round_tripped.end) == \
            (seidel_trace_small.begin, seidel_trace_small.end)

    def test_pcf_names_survive(self, seidel_trace_small, round_tripped):
        assert [info.name for info in round_tripped.task_types] == \
            [info.name for info in seidel_trace_small.task_types]

    def test_columnar_import(self, seidel_trace_small, tmp_path):
        from repro.core.columnar import ColumnarTrace
        path = tmp_path / "col.prv"
        export_paraver(seidel_trace_small, str(path))
        columnar = import_paraver(str(path), columnar=True)
        assert isinstance(columnar, ColumnarTrace)
        assert len(columnar.tasks) == len(seidel_trace_small.tasks)

    def test_malformed_record_raises(self, tmp_path):
        path = tmp_path / "bad.prv"
        path.write_text("#Paraver (x):100_ns:1(2):1:1(2:1)\n"
                        "1:not:a:valid:state:record\n")
        with pytest.raises(FormatError):
            import_paraver(str(path))

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "noheader.prv"
        path.write_text("2:1:1:1:1:0:60000001:1\n")
        with pytest.raises(FormatError):
            import_paraver(str(path))

    def test_import_without_pcf(self, seidel_trace_small, tmp_path):
        path = tmp_path / "nopcf.prv"
        export_paraver(seidel_trace_small, str(path))
        (tmp_path / "nopcf.pcf").unlink()
        trace = import_paraver(str(path))
        # Event data intact; names degrade to placeholders.
        assert len(trace.tasks) == len(seidel_trace_small.tasks)


class TestCliIngest:
    @pytest.fixture(scope="class")
    def cli(self):
        import importlib.util
        import pathlib
        cli_path = (pathlib.Path(__file__).parent.parent / "examples"
                    / "aftermath_cli.py")
        spec = importlib.util.spec_from_file_location("aftermath_cli",
                                                      cli_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_ingest_paraver_to_native(self, cli, seidel_trace_small,
                                      tmp_path, capsys):
        from repro.trace_format import read_trace
        prv = tmp_path / "in.prv"
        out = tmp_path / "out.ost"
        export_paraver(seidel_trace_small, str(prv))
        cli.main(["ingest", str(prv), str(out)])
        printed = capsys.readouterr().out
        assert "via paraver source" in printed
        native = read_trace(str(out))
        assert state_time_summary(native) == \
            state_time_summary(seidel_trace_small)

    def test_ingest_forced_format(self, cli, seidel_trace_small,
                                  tmp_path, capsys):
        from repro.trace_format import export_chrome
        source = tmp_path / "in.json"
        out = tmp_path / "out.ost"
        export_chrome(seidel_trace_small, str(source))
        cli.main(["ingest", str(source), str(out), "--format",
                  "chrome"])
        assert "via chrome source" in capsys.readouterr().out

    def test_subcommands_accept_foreign_traces(self, cli,
                                               seidel_trace_small,
                                               tmp_path, capsys):
        prv = tmp_path / "direct.prv"
        export_paraver(seidel_trace_small, str(prv))
        cli.main(["info", str(prv)])
        assert "seidel_block" in capsys.readouterr().out
        cli.main(["report", str(prv)])
        assert "average parallelism" in capsys.readouterr().out
