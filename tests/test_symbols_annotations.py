"""Tests for symbol tables and annotations (Section VI-C)."""

import pytest

from repro.core import (Annotation, AnnotationStore, Symbol, SymbolTable,
                        resolve_task, symbols_from_trace)


class TestSymbolTable:
    def make_table(self):
        return SymbolTable([
            Symbol(0x1000, "main", "main.c", 10),
            Symbol(0x2000, "worker", "worker.c", 42),
            Symbol(0x3000, "helper", "worker.c", 99),
        ])

    def test_exact_address(self):
        table = self.make_table()
        assert table.resolve(0x2000).name == "worker"

    def test_nearest_below(self):
        table = self.make_table()
        assert table.resolve(0x2ABC).name == "worker"

    def test_before_first_symbol(self):
        table = self.make_table()
        assert table.resolve(0xFFF) is None

    def test_past_last_symbol(self):
        table = self.make_table()
        assert table.resolve(0x99999).name == "helper"

    def test_add_keeps_sorted(self):
        table = self.make_table()
        table.add(Symbol(0x2800, "late", "late.c", 1))
        assert table.resolve(0x2900).name == "late"
        assert table.resolve(0x27FF).name == "worker"

    def test_by_name(self):
        table = self.make_table()
        assert table.by_name("helper").address == 0x3000
        assert table.by_name("missing") is None

    def test_editor_command(self):
        table = self.make_table()
        command = table.editor_command(0x2000, editor="vim")
        assert command == "vim +42 worker.c"

    def test_editor_command_unknown_address(self):
        table = self.make_table()
        assert table.editor_command(0x1) is None


class TestTraceSymbols:
    def test_table_from_trace(self, seidel_trace_small):
        table = symbols_from_trace(seidel_trace_small)
        assert len(table) == len(seidel_trace_small.task_types)

    def test_resolve_task(self, seidel_trace_small):
        trace = seidel_trace_small
        table = symbols_from_trace(trace)
        execution = next(trace.task_executions())
        name = resolve_task(trace, table, execution.task_id)
        assert name in {"seidel_init", "seidel_block"}


class TestAnnotations:
    def test_sorted_by_time(self):
        store = AnnotationStore()
        store.add(Annotation(500, "late"))
        store.add(Annotation(100, "early"))
        assert [note.text for note in store] == ["early", "late"]

    def test_in_interval(self):
        store = AnnotationStore([
            Annotation(100, "a", core=0),
            Annotation(200, "b", core=1),
            Annotation(300, "c", core=0),
        ])
        assert [n.text for n in store.in_interval(100, 300)] == ["a", "b"]
        assert [n.text for n in store.in_interval(0, 1000, core=0)] \
            == ["a", "c"]

    def test_remove(self):
        note = Annotation(1, "x")
        store = AnnotationStore([note])
        store.remove(note)
        assert len(store) == 0

    def test_save_load_roundtrip(self, tmp_path):
        """Annotations persist independently of the trace file."""
        path = tmp_path / "notes.json"
        store = AnnotationStore([
            Annotation(123, "look here", core=4, author="andi"),
            Annotation(456, "slow phase"),
        ])
        store.save(str(path))
        loaded = AnnotationStore.load(str(path))
        assert len(loaded) == 2
        first = list(loaded)[0]
        assert first.text == "look here"
        assert first.core == 4
        assert first.author == "andi"

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "annotations": []}')
        with pytest.raises(ValueError):
            AnnotationStore.load(str(path))
