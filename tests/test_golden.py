"""Golden-trace regression tests.

Two small canonical trace files (a seidel-like stencil and a
kmeans-like clustering run) are committed under ``tests/data/``
together with pinned JSON expectations for their analysis results.
Any numeric drift — in the trace format readers, the statistics, the
metrics or the columnar store — fails these tests with exact-equality
diffs.  A third fixture is committed in *foreign* formats (Paraver
``.prv``/``.pcf`` and Chrome trace-event JSON): both files must
dispatch through the ingestion registry and reproduce one shared set
of pinned numbers, so the foreign parsers cannot drift either.
Regenerate intentionally with ``python tools/make_golden.py``.
"""

import json
import pathlib
import sys

import pytest

from repro.trace_format import (detect_source, ingest_trace,
                                read_chunk_index, read_trace)

ROOT = pathlib.Path(__file__).resolve().parent.parent
DATA_DIR = ROOT / "tests" / "data"

sys.path.insert(0, str(ROOT / "tools"))
from make_golden import (FOREIGN_FIXTURES, GOLDEN_TRACES,  # noqa: E402
                         golden_expectations)

sys.path.pop(0)


@pytest.fixture(scope="module")
def pinned():
    with open(DATA_DIR / "golden_expectations.json") as stream:
        return json.load(stream)


@pytest.mark.parametrize("name", GOLDEN_TRACES)
class TestGoldenTraces:
    def test_fixture_files_exist(self, name, pinned):
        path = DATA_DIR / "golden_{}.ost".format(name)
        assert path.is_file()
        assert name in pinned
        assert read_chunk_index(str(path)) is not None

    def test_object_store_matches_pinned_results(self, name, pinned):
        trace = read_trace(str(DATA_DIR / "golden_{}.ost".format(name)))
        assert golden_expectations(trace) == pinned[name]

    def test_columnar_store_matches_pinned_results(self, name, pinned):
        columnar = read_trace(
            str(DATA_DIR / "golden_{}.ost".format(name)), columnar=True)
        assert golden_expectations(columnar) == pinned[name]


@pytest.mark.parametrize("filename,source",
                         sorted(FOREIGN_FIXTURES.items()))
class TestGoldenForeignTraces:
    def test_registry_dispatch(self, filename, source, pinned):
        path = DATA_DIR / filename
        assert path.is_file()
        assert detect_source(str(path)).name == source

    def test_ingested_analysis_matches_pinned(self, filename, source,
                                              pinned):
        trace = ingest_trace(str(DATA_DIR / filename))
        assert golden_expectations(trace) == pinned["foreign"]

    def test_columnar_ingest_matches_pinned(self, filename, source,
                                            pinned):
        columnar = ingest_trace(str(DATA_DIR / filename),
                                columnar=True)
        assert golden_expectations(columnar) == pinned["foreign"]


def test_expectations_cover_every_golden_trace(pinned):
    assert sorted(pinned) == sorted(GOLDEN_TRACES + ("foreign",))
    for name, values in pinned.items():
        assert values["counts"]["tasks"] > 0, name
        assert sum(values["state_time_summary"].values()) > 0, name
