"""Tests for the crash-resilient durable experiment engine.

Covers the SQLite job journal (states, leases, retry/backoff,
quarantine, reclaim), the content-addressed trace store (label-free
keys, atomic publication, artifact quarantine), the engine drain
(idempotent reruns, store dedup, poison-spec quarantine, corrupt
artifacts regenerated, SIGKILL resume), trace-file CRC verification
and salvage, sidecar-corruption recovery, and the CLI's one-line
error hygiene.
"""

import importlib.util
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.analysis.experiments import (ExperimentError, ExperimentSpec,
                                        JobQueue, QueueError, RetryPolicy,
                                        StoreError, TraceStore,
                                        analyze_traces, describe_queue,
                                        generate_trace, job_key,
                                        journal_path, resume_suite,
                                        run_suite, run_suite_engine,
                                        spec_key, synthetic_sweep)
from repro.analysis.experiments.store import spec_from_json, spec_to_json
from repro.core import TopologyInfo, TraceBuilder, traces_equal
from repro.session import AnalysisSession
from repro.trace_format import (CacheError, default_cache_path,
                                read_chunk_index, read_trace,
                                salvage_trace, verify_trace, write_trace)
from repro.trace_format import cache as ostc

CLI_PATH = (pathlib.Path(__file__).parent.parent / "examples"
            / "aftermath_cli.py")

#: Fast, jitter-free retries for tests that exercise the retry path.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0)


def make_queue(tmp_path, now, retry=None, **kwargs):
    """A journal with an injected clock (``now`` is a one-item list)."""
    return JobQueue(journal_path(tmp_path),
                    retry=retry or RetryPolicy(max_attempts=2,
                                               base_delay=8.0,
                                               jitter=0.0),
                    clock=lambda: now[0], **kwargs)


def corrupt_chunk(path, which=-1):
    """Flip bytes inside one data chunk of an indexed trace file."""
    entry = read_chunk_index(str(path)).entries[which]
    with open(str(path), "r+b") as stream:
        stream.seek(entry.offset + 3)
        original = stream.read(2)
        stream.seek(entry.offset + 3)
        stream.write(bytes(byte ^ 0xFF for byte in original))


class TestJobQueue:
    def test_enqueue_is_idempotent(self, tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            specs = synthetic_sweep(3, events=100)
            assert queue.enqueue(specs) == 3
            assert queue.enqueue(specs) == 0
            assert queue.counts()["pending"] == 3
            assert [spec.name for spec in queue.load_specs()] \
                == [spec.name for spec in specs]

    def test_name_conflict_rejected(self, tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            queue.enqueue([ExperimentSpec(name="point", seed=1,
                                          workload="synthetic")])
            with pytest.raises(QueueError, match="conflicts"):
                queue.enqueue([ExperimentSpec(name="point", seed=2,
                                              workload="synthetic")])

    def test_claim_lease_complete_cycle(self, tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim("host:1")
            assert (job.name, job.attempts) == ("synthetic_0", 1)
            assert queue.counts()["leased"] == 1
            assert queue.claim("host:2") is None     # nothing else
            queue.complete(job.key, "host:1", "out.ost", simulated=True)
            record = queue.record(job.key)
            assert (record.state, record.executions) == ("done", 1)

    def test_store_hit_completion_does_not_count_execution(self,
                                                           tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim("host:1")
            queue.complete(job.key, "host:1", "out.ost", simulated=False)
            assert queue.record(job.key).executions == 0

    def test_complete_requires_the_lease(self, tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim("host:1")
            with pytest.raises(QueueError, match="lost lease"):
                queue.complete(job.key, "intruder:2", "out.ost")
            with pytest.raises(QueueError, match="lost lease"):
                queue.fail(job.key, "intruder:2", "boom")

    def test_fail_backs_off_then_quarantines(self, tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim("host:1")
            assert queue.fail(job.key, "host:1", "ValueError: boom") \
                == "failed"
            assert queue.claim("host:1") is None     # backing off: 8s
            assert queue.runnable_in() == pytest.approx(8.0)
            now[0] = 9.0
            retry = queue.claim("host:1")
            assert retry.attempts == 2
            assert queue.fail(retry.key, "host:1", "ValueError: boom") \
                == "quarantined"
            assert queue.runnable_in() is None       # terminal
            (parked,) = queue.quarantined()
            assert parked.error == "ValueError: boom"

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_attempts=9, base_delay=2.0,
                             max_delay=10.0, jitter=0.0)
        delays = [policy.backoff("key", attempt)
                  for attempt in range(1, 6)]
        assert delays == [2.0, 4.0, 8.0, 10.0, 10.0]

    def test_jitter_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        assert policy.backoff("a", 1) == policy.backoff("a", 1)
        assert policy.backoff("a", 1) != policy.backoff("b", 1)
        assert 1.0 <= policy.backoff("a", 1) <= 1.5

    def test_reclaim_expired_lease_is_not_an_execution(self, tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now, lease_seconds=30.0) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim("{}:{}".format(socket.gethostname(),
                                             os.getpid()))
            assert queue.reclaim_stale() == 0        # heartbeat fresh
            now[0] = 31.0
            assert queue.reclaim_stale() == 1
            record = queue.record(job.key)
            assert record.state == "failed"
            assert record.executions == 0            # never finished
            assert "lease expired" in record.error

    def test_heartbeat_keeps_the_lease(self, tmp_path):
        now = [0.0]
        owner = "{}:{}".format(socket.gethostname(), os.getpid())
        with make_queue(tmp_path, now, lease_seconds=30.0) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim(owner)
            now[0] = 25.0
            queue.heartbeat(job.key, owner)
            now[0] = 45.0                            # < 25 + 30
            assert queue.reclaim_stale() == 0
            assert queue.record(job.key).state == "leased"

    def test_reclaim_provably_dead_owner(self, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()                                 # reaped: pid free
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim("{}:{}:0".format(socket.gethostname(),
                                               probe.pid))
            assert queue.reclaim_stale() == 1        # despite heartbeat
            assert "died mid-job" in queue.record(job.key).error

    def test_requeue_forces_a_done_job_back(self, tmp_path):
        now = [0.0]
        with make_queue(tmp_path, now) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            job = queue.claim("host:1")
            queue.complete(job.key, "host:1", "out.ost", simulated=True)
            queue.requeue(job.key, reason="artifact corrupt")
            record = queue.record(job.key)
            assert (record.state, record.result) == ("pending", None)
            assert record.error == "artifact corrupt"

    def test_describe_queue_without_journal(self, tmp_path):
        with pytest.raises(QueueError, match="no journal"):
            describe_queue(str(tmp_path / "nowhere"))

    def test_export_debug_writes_postmortem_files(self, tmp_path):
        now = [0.0]
        debug_dir = str(tmp_path / "debug")
        with make_queue(tmp_path / "suite", now,
                        retry=FAST_RETRY) as queue:
            queue.enqueue(synthetic_sweep(1, events=100))
            for __ in range(2):                      # exhaust retries
                now[0] += 1.0
                job = queue.claim("host:1")
                queue.fail(job.key, "host:1", "Traceback ...\nboom")
            assert queue.export_debug(debug_dir) == debug_dir
        names = sorted(os.listdir(debug_dir))
        assert any(name.startswith("journal-") and
                   name.endswith(".sqlite") for name in names)
        assert any(name.endswith(".json") for name in names)
        (traceback_file,) = os.listdir(os.path.join(debug_dir,
                                                    "quarantine"))
        assert traceback_file.startswith("synthetic_0-")


class TestContentStore:
    def test_spec_key_ignores_display_labels(self):
        base = ExperimentSpec(name="a", workload="synthetic", seed=3,
                              events=500)
        renamed = ExperimentSpec(name="b", workload="synthetic", seed=3,
                                 events=500, params=(("seed", 3),))
        other = ExperimentSpec(name="a", workload="synthetic", seed=4,
                               events=500)
        assert spec_key(base) == spec_key(renamed)
        assert spec_key(base) != spec_key(other)
        assert job_key(base) != job_key(renamed)     # full-spec key

    def test_spec_json_roundtrip_keeps_tuples(self):
        spec = ExperimentSpec(name="p", workload="synthetic", seed=1,
                              events=100, params=(("seed", 1),),
                              faults=(("stall_cores", (0, 1)),))
        assert spec_from_json(spec_to_json(spec)) == spec
        with pytest.raises(StoreError):
            spec_from_json("{not json")
        with pytest.raises(StoreError):
            spec_from_json('{"name": "missing-everything-else"}')

    def test_publish_materialize_verify_quarantine(self, tmp_path):
        spec = ExperimentSpec(name="one", workload="synthetic", seed=5,
                              events=400)
        source = str(tmp_path / "source.ost")
        generate_trace(spec, source)
        store = TraceStore(str(tmp_path / "store"))
        key = spec_key(spec)
        assert not store.contains(key)
        assert not store.verify(key).ok              # absent: not ok
        store.publish(key, source)
        assert store.contains(key)
        store.publish(key, source)                   # idempotent
        assert store.verify(key).ok
        destination = str(tmp_path / "suite" / "one.ost")
        os.makedirs(os.path.dirname(destination))
        store.materialize(key, destination)
        with open(source, "rb") as a, open(destination, "rb") as b:
            assert a.read() == b.read()
        store.quarantine_artifact(key, reason="CRC mismatch")
        assert not store.contains(key)
        quarantine = pathlib.Path(store.root) / "quarantine"
        assert (quarantine / "{}.ost".format(key)).exists()
        assert "CRC mismatch" in (
            quarantine / "{}.ost.reason".format(key)).read_text()


class TestEngineDrain:
    def test_rerun_simulates_nothing(self, tmp_path):
        directory = str(tmp_path / "suite")
        specs = synthetic_sweep(3, events=500)
        paths = run_suite(specs, directory, workers=1)
        assert all(path and os.path.exists(path) for path in paths)
        report = run_suite_engine(specs, directory, workers=1)
        assert report.done_before == 3
        assert report.simulated == 0
        assert report.resimulated == 0
        assert report.paths == paths

    def test_store_dedup_across_renamed_specs(self, tmp_path):
        directory = str(tmp_path / "suite")
        specs = [
            ExperimentSpec(name="first", workload="synthetic", seed=7,
                           events=500),
            ExperimentSpec(name="second", workload="synthetic", seed=7,
                           events=500, params=(("alias", 1),)),
        ]
        report = run_suite_engine(specs, directory, workers=1)
        assert report.simulated == 1
        assert report.store_hits == 1
        with open(report.paths[0], "rb") as a, \
                open(report.paths[1], "rb") as b:
            assert a.read() == b.read()

    def test_poison_spec_quarantined_not_fatal(self, tmp_path):
        directory = str(tmp_path / "suite")
        specs = synthetic_sweep(2, events=500) + [
            ExperimentSpec(name="poison", workload="no-such-workload")]
        with pytest.raises(ExperimentError) as info:
            run_suite(specs, directory, workers=1, retry=FAST_RETRY)
        message = str(info.value)
        assert "1 spec(s) quarantined" in message
        assert "poison" in message
        assert "queue-status" in message
        assert "Traceback" not in message            # one line per cause
        with JobQueue(journal_path(directory)) as queue:
            assert queue.counts()["done"] == 2       # sweep completed
            (parked,) = queue.quarantined()
            assert parked.attempts == FAST_RETRY.max_attempts
            assert "Traceback" in parked.error       # journal keeps it
            assert "ValueError" in parked.error

    def test_non_strict_returns_placeholders(self, tmp_path):
        directory = str(tmp_path / "suite")
        specs = [ExperimentSpec(name="poison",
                                workload="no-such-workload")] \
            + synthetic_sweep(2, events=500)
        paths = run_suite(specs, directory, workers=1, strict=False,
                          retry=FAST_RETRY)
        assert paths[0] is None
        assert all(path and os.path.exists(path) for path in paths[1:])

    def test_corrupt_done_artifact_regenerated_on_resume(self,
                                                         tmp_path):
        directory = str(tmp_path / "suite")
        specs = synthetic_sweep(2, events=500)
        paths = run_suite(specs, directory, workers=1)
        pristine = open(paths[0], "rb").read()
        corrupt_chunk(paths[0])
        assert not verify_trace(paths[0]).ok
        report = resume_suite(directory, workers=1)
        assert report.requeued == 1
        assert report.resimulated == 0               # it was not valid
        assert report.counts["done"] == 2
        assert open(paths[0], "rb").read() == pristine

    def test_max_jobs_crash_window_then_resume(self, tmp_path):
        directory = str(tmp_path / "suite")
        specs = synthetic_sweep(4, events=500)
        run_suite(specs, directory, workers=1, max_jobs=2)
        with JobQueue(journal_path(directory)) as queue:
            counts = queue.counts()
        assert counts["done"] == 2
        assert counts["pending"] == 2
        report = resume_suite(directory, workers=1)
        assert report.done_before == 2
        assert report.resimulated == 0
        assert report.simulated == 2
        assert report.counts["done"] == 4

    @pytest.mark.skipif(not hasattr(os, "killpg"),
                        reason="needs POSIX process groups")
    def test_sigkill_mid_sweep_resumes_without_resimulating(self,
                                                            tmp_path):
        directory = str(tmp_path / "suite")
        total = 4
        child = (
            "import sys\n"
            "from repro.analysis.experiments import synthetic_sweep, "
            "run_suite\n"
            "run_suite(synthetic_sweep({}, events=500), sys.argv[1], "
            "workers=2)\n".format(total))
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(sys.path),
                   REPRO_ENGINE_TEST_JOB_DELAY="0.3")
        process = subprocess.Popen(
            [sys.executable, "-c", child, directory], env=env,
            start_new_session=True)
        done_at_kill = 0
        deadline = time.monotonic() + 60.0
        try:
            while time.monotonic() < deadline:
                if os.path.exists(journal_path(directory)):
                    with JobQueue(journal_path(directory)) as queue:
                        done_at_kill = queue.counts()["done"]
                    if 0 < done_at_kill < total:
                        break
                if process.poll() is not None:
                    pytest.fail("sweep finished before the kill")
                time.sleep(0.05)
        finally:
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            process.wait()
        assert 0 < done_at_kill < total
        report = resume_suite(directory, workers=2)
        assert report.resimulated == 0
        assert report.counts["done"] == total
        assert all(verify_trace(path).ok for path in report.paths)


class TestVerifyAndSalvage:
    def _trace_path(self, tmp_path, chunk_records=2):
        builder = TraceBuilder(TopologyInfo(num_nodes=1,
                                            cores_per_node=2))
        for index in range(6):
            builder.state_interval(core=index % 2, state=0,
                                   start=100 * index,
                                   end=100 * index + 50)
        path = str(tmp_path / "trace.ost")
        write_trace(builder.build(), path, chunk_records=chunk_records)
        return path

    def test_verify_passes_then_catches_a_flipped_bit(self, tmp_path):
        path = self._trace_path(tmp_path)
        verification = verify_trace(path)
        assert verification.ok and verification.crc_checked
        corrupt_chunk(path)
        damaged = verify_trace(path)
        assert not damaged.ok
        assert "CRC" in damaged.reason

    def test_salvage_recovers_the_verified_prefix(self, tmp_path):
        path = self._trace_path(tmp_path)
        corrupt_chunk(path, which=-1)                # last chunk only
        trace, report = salvage_trace(path)
        assert not report.complete
        assert report.chunks_dropped == 1
        assert len(trace.states) == 4                # 2 of 3 chunks

    def test_legacy_uncrc_files_still_verify_structurally(self,
                                                          tmp_path):
        builder = TraceBuilder(TopologyInfo(num_nodes=1,
                                            cores_per_node=1))
        builder.state_interval(core=0, state=0, start=0, end=10)
        path = str(tmp_path / "v1.ost")
        write_trace(builder.build(), path, crc=False)
        verification = verify_trace(path)
        assert verification.ok
        assert not verification.crc_checked


class TestSidecarCorruption:
    @pytest.fixture()
    def cached_trace(self, tmp_path):
        builder = TraceBuilder(TopologyInfo(num_nodes=1,
                                            cores_per_node=2))
        builder.state_interval(core=0, state=0, start=0, end=200)
        for index in range(8):
            builder.counter_sample(core=0, counter_id=0,
                                   timestamp=25 * index,
                                   value=float(index))
        path = str(tmp_path / "trace.ost")
        write_trace(builder.build(), path)
        pristine = read_trace(path, cache=True)      # writes sidecar
        return path, pristine

    def _assert_raises_then_rebuilds(self, path, pristine):
        cache_path = default_cache_path(path)
        with pytest.raises(CacheError):
            ostc.load_cache(cache_path, source_path=path)
        rebuilt = read_trace(path, cache=True)       # transparent
        assert traces_equal(rebuilt, pristine)
        assert ostc.load_cache(cache_path, source_path=path) is not None

    def test_truncated_mid_blob(self, cached_trace):
        path, pristine = cached_trace
        cache_path = default_cache_path(path)
        __, data_start = ostc._read_header(cache_path)
        with open(cache_path, "r+b") as stream:
            stream.truncate(data_start + 8)
        self._assert_raises_then_rebuilds(path, pristine)

    def test_garbage_magic(self, cached_trace):
        path, pristine = cached_trace
        cache_path = default_cache_path(path)
        with open(cache_path, "r+b") as stream:
            stream.write(b"JUNKJUNK")
        with pytest.raises(CacheError):
            ostc.load_cache(cache_path, source_path=path)
        # The session rides the same transparent-rebuild path.
        session = AnalysisSession.open(path)
        assert traces_equal(session.trace, pristine)
        assert ostc.load_cache(cache_path, source_path=path) is not None

    def test_bad_pyramid_manifest(self, cached_trace):
        path, pristine = cached_trace
        cache_path = default_cache_path(path)

        def send_leaves_out_of_bounds(header):
            entry = header["manifest"]["counter_pyramids"][0]
            entry[2][0] = 10 ** 9                    # leaves offset

        self._rewrite_header(cache_path, send_leaves_out_of_bounds)
        self._assert_raises_then_rebuilds(path, pristine)

    @staticmethod
    def _rewrite_header(cache_path, mutate):
        """Re-encode the sidecar's JSON header after ``mutate``,
        keeping the data section's bytes (and relative offsets)."""
        with open(cache_path, "rb") as stream:
            blob = stream.read()
        prefix = ostc._PREFIX
        magic, version, length = prefix.unpack_from(blob)
        header = json.loads(blob[prefix.size:prefix.size + length])
        data = blob[ostc._align(prefix.size + length):]
        mutate(header)
        encoded = json.dumps(header).encode()
        start = ostc._align(prefix.size + len(encoded))
        with open(cache_path, "wb") as stream:
            stream.write(prefix.pack(magic, version, len(encoded)))
            stream.write(encoded)
            stream.write(b"\0" * (start - prefix.size - len(encoded)))
            stream.write(data)


class TestAnalysisErrorHygiene:
    def test_strict_collects_every_failure(self, tmp_path):
        good = str(tmp_path / "good.ost")
        generate_trace(ExperimentSpec(name="good", workload="synthetic",
                                      events=400), good)
        bad = str(tmp_path / "bad.ost")
        with open(bad, "wb") as stream:
            stream.write(b"this is not a trace file")
        with pytest.raises(ExperimentError) as info:
            analyze_traces([good, bad], workers=1)
        message = str(info.value)
        assert "1 of 2 trace(s) failed to analyze" in message
        assert "bad.ost" in message

    def test_non_strict_yields_placeholders(self, tmp_path):
        good = str(tmp_path / "good.ost")
        generate_trace(ExperimentSpec(name="good", workload="synthetic",
                                      events=400), good)
        missing = str(tmp_path / "missing.ost")
        summaries = analyze_traces([good, missing], workers=1,
                                   strict=False)
        assert summaries[0] is not None
        assert summaries[1] is None


class TestCLIErrorHygiene:
    @pytest.fixture(scope="class")
    def cli(self):
        spec = importlib.util.spec_from_file_location("aftermath_cli",
                                                      CLI_PATH)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _expect_one_line_failure(self, cli, argv, capsys):
        with pytest.raises(SystemExit) as info:
            cli.main(argv)
        assert info.value.code == 1
        err = capsys.readouterr().err
        assert err.startswith("aftermath_cli: ")
        # One line per cause (plus a header when several aggregate) —
        # never a raw worker traceback.
        assert len(err.strip().splitlines()) <= 2
        assert "Traceback" not in err
        return err

    def test_sweep_unreadable_trace(self, cli, tmp_path, capsys):
        missing = str(tmp_path / "missing.ost")
        err = self._expect_one_line_failure(
            cli, ["sweep", missing], capsys)
        assert "missing.ost" in err

    def test_sweep_malformed_trace(self, cli, tmp_path, capsys):
        garbage = str(tmp_path / "garbage.ost")
        with open(garbage, "wb") as stream:
            stream.write(b"not a trace")
        err = self._expect_one_line_failure(
            cli, ["sweep", garbage], capsys)
        assert "garbage.ost" in err

    def test_queue_status_without_journal(self, cli, tmp_path, capsys):
        err = self._expect_one_line_failure(
            cli, ["queue-status", str(tmp_path)], capsys)
        assert "no journal" in err

    def test_sweep_resume_reports_zero_resimulated(self, cli, tmp_path,
                                                   capsys):
        directory = str(tmp_path / "suite")
        run_suite(synthetic_sweep(3, events=500), directory, workers=1,
                  max_jobs=2)
        cli.main(["sweep", "--resume", directory])
        out = capsys.readouterr().out
        assert "re-simulated completed points: 0" in out
        assert "3 done" in out

    def test_queue_status_reports_states(self, cli, tmp_path, capsys):
        directory = str(tmp_path / "suite")
        run_suite(synthetic_sweep(2, events=500), directory, workers=1)
        cli.main(["queue-status", directory])
        out = capsys.readouterr().out
        assert "2 done" in out
        assert "synthetic_0" in out
