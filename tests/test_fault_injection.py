"""Ground-truth tests for the fault-injection scenario zoo.

Every planted fault must be found by *its* detector (true positives,
with the planted core identified exactly), and clean runs of the same
workloads must stay silent (no false positives) — asserted as
precision/recall 1.0 over a seeded matrix of runs, so a detector that
drifts toward either failure mode breaks the build.
"""

import numpy as np
import pytest

from repro.core import (detect_duration_outliers,
                        detect_frequency_throttling, detect_stragglers,
                        locality_fraction)
from repro.runtime import (FaultInjectionConfig, HostilePlacement,
                           Machine, MemoryManager, straggler_scenario,
                           throttle_scenario)
from repro.analysis.experiments import (fault_sweep, pipeline_trace,
                                        wavefront_trace)

STRAGGLER = FaultInjectionConfig(straggler_cores=(2,),
                                 straggler_factor=4.0)
THROTTLE = FaultInjectionConfig(throttle_cores=(1,),
                                throttle_factor=3.0,
                                throttle_start=1_500_000,
                                throttle_end=4_500_000)


class TestScaledDuration:
    def test_default_is_identity(self):
        config = FaultInjectionConfig()
        assert not config.active
        assert config.scaled_duration(0, 100, 5000) == 5000

    def test_straggler_scales_whole_task(self):
        assert STRAGGLER.scaled_duration(2, 0, 1000) == 4000
        assert STRAGGLER.scaled_duration(0, 0, 1000) == 1000

    def test_throttle_scales_only_window_overlap(self):
        # Fully inside the window: 1000 cycles become 3000.
        assert THROTTLE.scaled_duration(1, 2_000_000, 1000) == 3000
        # Entirely outside: untouched.
        assert THROTTLE.scaled_duration(1, 0, 1000) == 1000
        # Straddling the window start: only the overlapping half
        # stretches (500 overlap cycles gain 2x500 extra).
        assert THROTTLE.scaled_duration(1, 1_499_500, 1000) == 2000
        # Other cores never throttle.
        assert THROTTLE.scaled_duration(0, 2_000_000, 1000) == 1000

    def test_faults_compose(self):
        both = FaultInjectionConfig(straggler_cores=(1,),
                                    straggler_factor=2.0,
                                    throttle_cores=(1,),
                                    throttle_factor=2.0,
                                    throttle_start=0,
                                    throttle_end=10_000)
        # 1000 -> straggler doubles to 2000, all inside the window,
        # so throttling adds another 2000.
        assert both.scaled_duration(1, 0, 1000) == 4000

    def test_speedup_factors_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectionConfig(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultInjectionConfig(throttle_factor=0.9)

    def test_scenario_helpers(self):
        scenario = straggler_scenario(core=3, factor=5.0)
        assert scenario.faults.straggler_cores == (3,)
        assert scenario.faults.straggler_factor == 5.0
        scenario = throttle_scenario(core=1, start=10, end=20)
        assert scenario.faults.throttle_cores == (1,)
        assert (scenario.faults.throttle_start,
                scenario.faults.throttle_end) == (10, 20)


class TestDetectorGroundTruth:
    """The precision/recall contract: over a seeded matrix of clean
    and faulted runs, both new detectors must score 1.0/1.0."""

    SEEDS = (0, 1, 2)

    def test_clean_runs_stay_silent(self):
        for seed in self.SEEDS:
            for build in (wavefront_trace, pipeline_trace):
                __, trace = build(scale="small", seed=seed)
                assert detect_stragglers(trace) == [], (build, seed)
                assert detect_frequency_throttling(trace) == [], \
                    (build, seed)

    def test_straggler_found_exactly(self):
        for seed in self.SEEDS:
            __, trace = wavefront_trace(scale="small", seed=seed,
                                        faults=STRAGGLER)
            found = detect_stragglers(trace)
            assert [anomaly.cores for anomaly in found] == [[2]], seed
            assert found[0].severity >= 1.7
            # A whole-run straggler is not a transient episode.
            assert detect_frequency_throttling(trace) == [], seed

    def test_throttle_found_exactly(self):
        for seed in self.SEEDS:
            __, trace = wavefront_trace(scale="small", seed=seed,
                                        faults=THROTTLE)
            found = detect_frequency_throttling(trace)
            assert {core for anomaly in found
                    for core in anomaly.cores} == {1}, seed
            # The flagged window overlaps the planted one.
            assert any(anomaly.start < THROTTLE.throttle_end
                       and anomaly.end > THROTTLE.throttle_start
                       for anomaly in found), seed
            # A transient episode is not a whole-run straggler.
            assert detect_stragglers(trace) == [], seed

    def test_precision_and_recall(self):
        hits, expected, false_positives = 0, 0, 0
        for seed in self.SEEDS:
            __, clean = wavefront_trace(scale="small", seed=seed)
            false_positives += len(detect_stragglers(clean))
            false_positives += len(detect_frequency_throttling(clean))
            __, faulted = wavefront_trace(scale="small", seed=seed,
                                          faults=STRAGGLER)
            expected += 1
            hits += sum(anomaly.cores == [2] for anomaly
                        in detect_stragglers(faulted))
        assert false_positives == 0     # precision 1.0
        assert hits == expected         # recall 1.0

    def test_fault_slows_the_run_down(self):
        clean_result, __ = wavefront_trace(scale="small", seed=0)
        faulted_result, __ = wavefront_trace(scale="small", seed=0,
                                             faults=STRAGGLER)
        assert faulted_result.makespan > clean_result.makespan


class TestSyntheticFaults:
    def test_synthetic_trace_straggler_detected(self, tmp_path):
        from repro.trace_format import read_trace
        from repro.trace_format.synthesize import write_synthetic_trace
        path = str(tmp_path / "faulted.ost")
        # task_types coprime with the core count, so every core runs
        # every type (the round-robin generator would otherwise pin
        # one type per core and leave no cross-core baseline).
        write_synthetic_trace(path, events=40_000, nodes=2,
                              cores_per_node=4, seed=5, task_types=5,
                              faults=STRAGGLER)
        found = detect_stragglers(read_trace(path))
        assert [anomaly.cores for anomaly in found] == [[2]]

    def test_default_faults_bit_identical(self, tmp_path):
        from repro.trace_format.synthesize import write_synthetic_trace
        plain = tmp_path / "plain.ost"
        defaulted = tmp_path / "defaulted.ost"
        write_synthetic_trace(str(plain), events=10_000, seed=3)
        write_synthetic_trace(str(defaulted), events=10_000, seed=3,
                              faults=FaultInjectionConfig())
        assert plain.read_bytes() == defaulted.read_bytes()


class TestHostilePlacement:
    def test_places_on_farthest_node(self):
        machine = Machine(4, 2)
        policy = HostilePlacement(machine)
        for toucher in range(machine.num_nodes):
            chosen = policy.place(toucher, page_index=0)
            assert machine.access_factor(toucher, chosen) == max(
                machine.access_factor(toucher, node)
                for node in range(machine.num_nodes))
            assert chosen != toucher

    def test_degrades_locality_vs_first_touch(self):
        # Under random stealing (no locality-aware recovery), hostile
        # placement turns nearly every access remote: the locality
        # fraction collapses from ~0.9 to ~0.03 on this workload.
        good = self._wavefront_locality()
        bad = self._wavefront_locality(HostilePlacement)
        assert good > 0.8
        assert bad < 0.2

    def test_numa_scheduler_partially_recovers(self):
        # The NUMA-aware scheduler chases the (hostile) data, so the
        # same fault is visibly milder — but still far from clean.
        recovered = self._wavefront_locality(HostilePlacement,
                                             numa_aware=True)
        assert 0.2 < recovered < self._wavefront_locality(
            numa_aware=True)

    @staticmethod
    def _wavefront_locality(policy=None, numa_aware=False):
        from repro.runtime import (NumaAwareScheduler,
                                   RandomStealScheduler,
                                   TraceCollector, run_program)
        from repro.workloads import WavefrontConfig, build_wavefront
        machine = Machine(4, 4, name="hostile")
        memory = MemoryManager(
            machine, policy=policy(machine) if policy else None)
        program = build_wavefront(machine,
                                  WavefrontConfig(order=12, seed=0),
                                  memory=memory)
        scheduler = (NumaAwareScheduler if numa_aware
                     else RandomStealScheduler)(machine, seed=0)
        __, trace = run_program(program, scheduler,
                                collector=TraceCollector(machine))
        return locality_fraction(trace)


class TestPipelineStragglers:
    def test_straggler_stage_produces_outliers(self):
        __, clean = pipeline_trace(scale="small", seed=0)
        __, spiky = pipeline_trace(scale="small", seed=0,
                                   straggler_stage=1)
        clean_kinds = {anomaly.task_type for anomaly
                       in detect_duration_outliers(clean)}
        spiky_outliers = [anomaly for anomaly
                          in detect_duration_outliers(spiky)
                          if anomaly.task_type == "pipe_stage1"]
        assert "pipe_stage1" not in clean_kinds
        assert spiky_outliers

    def test_straggler_frames_periodic(self):
        __, trace = pipeline_trace(scale="small", seed=0,
                                   straggler_stage=1)
        columns = trace.tasks.columns
        stage1 = next(info.type_id for info in trace.task_types
                      if info.name == "pipe_stage1")
        durations = (columns["end"] - columns["start"])[
            columns["type_id"] == stage1]
        median = np.median(durations)
        # Every straggler_period-th frame is the slow one.  The spike
        # is additive on top of the stage's fixed overheads, so the
        # slow frames sit ~1.5x the median, not at the raw factor.
        slow = int((durations > 1.2 * median).sum())
        assert slow == int(np.ceil(len(durations) / 8))


class TestFaultSweepSpecs:
    def test_zoo_shape(self):
        specs = fault_sweep(workload="wavefront", seed=0)
        assert [spec.name for spec in specs] == [
            "wavefront_clean", "wavefront_straggler",
            "wavefront_throttle"]
        assert [dict(spec.params)["fault"] for spec in specs] == \
            ["none", "straggler", "throttle"]

    def test_fault_config_round_trip(self):
        clean, straggler, throttle = fault_sweep()
        assert clean.fault_config() is None
        assert straggler.fault_config() == FaultInjectionConfig(
            straggler_cores=(2,), straggler_factor=4.0)
        config = throttle.fault_config()
        assert config.throttle_cores == (1,)
        assert config.throttle_end > config.throttle_start

    def test_specs_are_picklable(self):
        import pickle
        for spec in fault_sweep():
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_zoo_detected_end_to_end(self, tmp_path):
        """The whole loop: run the zoo through the suite runner, read
        the traces back, and check each planted fault is flagged by
        its detector while the clean baseline stays silent."""
        from repro.analysis.experiments import run_suite
        from repro.trace_format import read_trace
        paths = run_suite(fault_sweep(seed=1), str(tmp_path),
                          workers=1)
        traces = {spec.name.split("_", 1)[1]: read_trace(path)
                  for spec, path in zip(fault_sweep(seed=1), paths)}
        assert detect_stragglers(traces["clean"]) == []
        assert detect_frequency_throttling(traces["clean"]) == []
        assert [anomaly.cores for anomaly
                in detect_stragglers(traces["straggler"])] == [[2]]
        assert {core for anomaly
                in detect_frequency_throttling(traces["throttle"])
                for core in anomaly.cores} == {1}
