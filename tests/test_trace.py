"""Tests for the in-memory trace representation and its builder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RegionInfo, TopologyInfo, TraceBuilder


def make_builder(nodes=2, cores_per_node=2):
    return TraceBuilder(TopologyInfo(num_nodes=nodes,
                                     cores_per_node=cores_per_node))


class TestBuilder:
    def test_empty_trace(self):
        trace = make_builder().build()
        assert trace.begin == 0 and trace.end == 0
        assert len(trace.tasks) == 0

    def test_states_sorted_per_core(self):
        builder = make_builder()
        builder.state_interval(1, 0, 500, 600)
        builder.state_interval(0, 0, 100, 200)
        builder.state_interval(1, 1, 100, 400)
        trace = builder.build()
        starts = trace.states.core_column(1, "start")
        assert list(starts) == [100, 500]

    def test_zero_length_state_dropped(self):
        builder = make_builder()
        builder.state_interval(0, 0, 100, 100)
        assert len(builder.build().states) == 0

    def test_counter_samples_sorted(self):
        builder = make_builder()
        counter = builder.describe_counter("c")
        builder.counter_sample(0, counter, 300, 3.0)
        builder.counter_sample(0, counter, 100, 1.0)
        trace = builder.build()
        timestamps, values = trace.counter_samples(0, counter)
        assert list(timestamps) == [100, 300]
        assert list(values) == [1.0, 3.0]

    def test_time_bounds_span_all_event_kinds(self):
        builder = make_builder()
        counter = builder.describe_counter("c")
        builder.state_interval(0, 0, 50, 80)
        builder.task_execution(0, 0, 0, 60, 70)
        builder.counter_sample(0, counter, 500, 1.0)
        trace = builder.build()
        assert trace.begin == 50
        assert trace.end == 500

    def test_counter_lookup_by_name(self):
        builder = make_builder()
        builder.describe_counter("alpha")
        beta = builder.describe_counter("beta")
        trace = builder.build()
        assert trace.counter_id("beta") == beta
        with pytest.raises(KeyError):
            trace.counter_id("gamma")


class TestTaskIndex:
    def test_task_by_id(self):
        builder = make_builder()
        builder.task_execution(42, 1, 2, 100, 200)
        trace = builder.build()
        execution = trace.task_by_id(42)
        assert execution.core == 2
        assert execution.duration == 100

    def test_unknown_task_raises(self):
        trace = make_builder().build()
        with pytest.raises(KeyError):
            trace.task_by_id(7)

    def test_task_accesses_slice(self):
        builder = make_builder()
        builder.task_execution(1, 0, 0, 0, 10)
        builder.task_execution(2, 0, 0, 10, 20)
        builder.memory_access(2, 0, 0x1000, 64, True, 10)
        builder.memory_access(1, 0, 0x2000, 32, False, 0)
        builder.memory_access(2, 0, 0x3000, 16, False, 10)
        trace = builder.build()
        mine = trace.task_accesses(2)
        assert len(mine["address"]) == 2
        assert set(mine["address"]) == {0x1000, 0x3000}


class TestRegionLookup:
    def make_trace_with_regions(self):
        builder = make_builder()
        builder.describe_region(RegionInfo(
            region_id=0, address=0x10000, size=8192,
            page_nodes=(0, 1)))
        builder.describe_region(RegionInfo(
            region_id=1, address=0x20000, size=4096, page_nodes=(1,)))
        return builder.build()

    def test_region_of_hits(self):
        trace = self.make_trace_with_regions()
        assert trace.region_of(0x10000).region_id == 0
        assert trace.region_of(0x20000 + 4095).region_id == 1

    def test_region_of_misses(self):
        trace = self.make_trace_with_regions()
        assert trace.region_of(0x10000 - 1) is None
        assert trace.region_of(0x10000 + 8192) is None

    def test_node_of_address_uses_page_granularity(self):
        trace = self.make_trace_with_regions()
        assert trace.node_of_address(0x10000) == 0
        assert trace.node_of_address(0x10000 + 4096) == 1

    def test_unallocated_page_maps_to_none(self):
        builder = make_builder()
        builder.describe_region(RegionInfo(
            region_id=0, address=0x1000, size=4096, page_nodes=(-1,)))
        trace = builder.build()
        assert trace.node_of_address(0x1000) is None

    def test_vectorized_matches_scalar(self):
        trace = self.make_trace_with_regions()
        addresses = [0x10000, 0x10000 + 5000, 0x20000, 0x999, 0x30000]
        vector = trace.nodes_of_addresses(np.asarray(addresses))
        for address, node in zip(addresses, vector):
            scalar = trace.node_of_address(address)
            assert (scalar if scalar is not None else -1) == node

    @given(addresses=st.lists(
        st.integers(min_value=0, max_value=0x40000), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_always_matches_scalar(self, addresses):
        trace = self.make_trace_with_regions()
        vector = trace.nodes_of_addresses(
            np.asarray(addresses, dtype=np.int64))
        for address, node in zip(addresses, vector):
            scalar = trace.node_of_address(address)
            assert (scalar if scalar is not None else -1) == node


class TestIterators:
    def test_task_executions_roundtrip(self, seidel_trace_small):
        executions = list(seidel_trace_small.task_executions())
        assert len(executions) == len(seidel_trace_small.tasks)
        for execution in executions[:20]:
            assert (seidel_trace_small.task_by_id(execution.task_id)
                    == execution)

    def test_state_intervals_count(self, seidel_trace_small):
        intervals = list(seidel_trace_small.state_intervals())
        assert len(intervals) == len(seidel_trace_small.states)

    def test_repr_mentions_sizes(self, seidel_trace_small):
        text = repr(seidel_trace_small)
        assert "tasks=" in text and "states=" in text


class TestMergeCounterSeries:
    """The paper's separate-rusage-trace workflow (Section III-B)."""

    def make_pair(self):
        from repro.core import merge_counter_series
        main = make_builder()
        cycles = main.describe_counter("cache_misses")
        main.task_execution(0, 0, 0, 0, 100)
        main.counter_sample(0, cycles, 0, 1.0)
        aux = make_builder()
        rusage = aux.describe_counter("os_system_time_us")
        aux.counter_sample(0, rusage, 50, 7.0)
        aux.counter_sample(1, rusage, 60, 9.0)
        return main.build(), aux.build(), merge_counter_series

    def test_aux_counters_joined(self):
        main, aux, merge = self.make_pair()
        merged = merge(main, aux)
        names = {d.name for d in merged.counter_descriptions}
        assert names == {"cache_misses", "os_system_time_us"}
        counter_id = merged.counter_id("os_system_time_us")
        timestamps, values = merged.counter_samples(0, counter_id)
        assert list(values) == [7.0]
        assert len(merged.tasks) == 1   # main's events survive

    def test_name_clash_prefixed(self):
        from repro.core import merge_counter_series
        main = make_builder()
        main.describe_counter("shared")
        aux = make_builder()
        aux.describe_counter("shared")
        merged = merge_counter_series(main.build(), aux.build())
        names = {d.name for d in merged.counter_descriptions}
        assert names == {"shared", "aux:shared"}

    def test_counter_selection(self):
        main, aux, merge = self.make_pair()
        merged = merge(main, aux, counters=[])
        assert {d.name for d in merged.counter_descriptions} \
            == {"cache_misses"}

    def test_machine_mismatch_rejected(self):
        import pytest as _pytest
        from repro.core import (TopologyInfo, TraceBuilder,
                                merge_counter_series)
        main = TraceBuilder(TopologyInfo(2, 2)).build()
        aux = TraceBuilder(TopologyInfo(4, 2)).build()
        with _pytest.raises(ValueError):
            merge_counter_series(main, aux)

    def test_merged_trace_supports_metrics(self):
        """End-to-end: simulate twice (rusage separately), merge, run
        the Fig. 10 aggregation on the merged trace."""
        from repro.core import aggregate_counter_series, \
            merge_counter_series
        from repro.experiments import seidel_trace
        from repro.workloads import SeidelConfig
        from repro.runtime import Machine
        machine = Machine(2, 4)
        config = SeidelConfig(blocks=5, block_dim=16, steps=3)
        __, main = seidel_trace(machine=machine, config=config,
                                collect_rusage=False, seed=5)
        __, aux = seidel_trace(machine=machine, config=config,
                               collect_rusage=True, seed=5)
        merged = merge_counter_series(
            main, aux, counters=["os_system_time_us",
                                 "os_resident_kb"])
        __, totals = aggregate_counter_series(merged,
                                              "os_resident_kb", 10)
        assert totals[-1] > 0
