"""End-to-end integration tests: the full analysis pipelines the paper
walks through, from simulation to trace file to rendered views."""

import pytest

from repro.core import (CounterIndex, TaskTypeFilter, WorkerState,
                        average_task_duration_series, communication_matrix,
                        duration_vs_counter_rate, export_dot,
                        interval_report, reconstruct_task_graph,
                        state_count_series, symbols_from_trace,
                        task_duration_histogram)
from repro.render import (HeatmapMode, NumaMode, StateMode, TimelineView,
                          TypeMode, render_counter, render_matrix,
                          render_timeline)
from repro.trace_format import read_trace, write_trace


class TestSeidelWorkflow:
    """Section III: detect idle phases, track their origin in the task
    graph, then find the slow initialization."""

    def test_full_analysis_pipeline(self, seidel_trace_small, tmp_path):
        trace = seidel_trace_small

        # 1. Look at the state timeline: idle phases exist.
        view = TimelineView.fit(trace, 320, 128)
        fb = render_timeline(trace, StateMode(), view)
        from repro.render import state_color
        assert state_color(WorkerState.IDLE) in fb.unique_colors()

        # 2. Confirm with the idle-workers derived counter.
        __, idle = state_count_series(trace, WorkerState.IDLE, 50)
        assert idle.max() > 0

        # 3. Reconstruct the task graph; parallelism drops to 1.
        graph = reconstruct_task_graph(trace)
        __, counts = graph.parallelism_profile()
        assert counts[1] == 1

        # 4. Heatmap + typemap point at initialization tasks.
        __, averages = average_task_duration_series(trace, 30)
        init_filter = TaskTypeFilter("seidel_init")
        from repro.core import task_duration_stats
        init_mean, __s = task_duration_stats(trace, init_filter)
        rest_mean, __s2 = task_duration_stats(trace, ~init_filter)
        assert init_mean > rest_mean

        # 5. Export the graph neighborhood of a slow task to DOT.
        slow_task = int(trace.tasks.columns["task_id"][0])
        text = export_dot(graph, trace=trace,
                          task_ids=graph.neighborhood(slow_task, 2))
        assert "digraph" in text

    def test_trace_file_round_trip_preserves_analyses(
            self, seidel_trace_small, tmp_path):
        """Write to the binary format, reload, and verify a non-trivial
        analysis result is bit-identical."""
        trace = seidel_trace_small
        path = tmp_path / "trace.ost.gz"
        write_trace(trace, str(path))
        reloaded = read_trace(str(path))
        original = communication_matrix(trace)
        recovered = communication_matrix(reloaded)
        assert original == pytest.approx(recovered)
        g1 = reconstruct_task_graph(trace)
        g2 = reconstruct_task_graph(reloaded)
        assert g1.depths() == g2.depths()


class TestKmeansWorkflow:
    """Section V: histogram -> counter overlay -> export -> regression."""

    def test_correlation_pipeline(self, kmeans_trace_small, tmp_path):
        trace = kmeans_trace_small
        compute = TaskTypeFilter("kmeans_distance")

        # 1. The duration histogram of compute tasks is spread out.
        __, fractions = task_duration_histogram(trace, bins=10,
                                                task_filter=compute)
        assert (fractions > 0).sum() >= 2

        # 2. Counter overlay on the heatmap renders.
        view = TimelineView.fit(trace, 200, 80)
        fb = render_timeline(trace, HeatmapMode(task_filter=compute),
                             view)
        calls = render_counter(trace, "branch_mispredictions", view, fb,
                               core=0, counter_index=CounterIndex(trace))
        assert calls > 0

        # 3. Export per-task data and regress.
        from repro.core import export_task_table
        path = tmp_path / "export.csv"
        rows = export_task_table(trace, str(path),
                                 counters=("branch_mispredictions",),
                                 task_filter=compute)
        assert rows > 0
        __, __d, regression = duration_vs_counter_rate(
            trace, "branch_mispredictions", compute)
        assert regression.slope > 0

    def test_symbols_link_tasks_to_sources(self, kmeans_trace_small):
        trace = kmeans_trace_small
        table = symbols_from_trace(trace)
        execution = next(trace.task_executions())
        info = trace.task_types[execution.type_id]
        command = table.editor_command(info.address)
        assert command is not None
        assert info.source_file in command


class TestNumaWorkflow:
    """Section IV: NUMA maps + communication matrix."""

    def test_numa_views_and_matrix(self, seidel_trace_small):
        trace = seidel_trace_small
        view = TimelineView.fit(trace, 160, 64)
        for kind in ("read", "write"):
            fb = render_timeline(trace, NumaMode(kind), view)
            assert fb.rect_calls > 0
        matrix = communication_matrix(trace)
        fb = render_matrix(matrix)
        assert fb.rect_calls == matrix.size

    def test_interval_report_summarizes(self, seidel_trace_small):
        report = interval_report(seidel_trace_small)
        text = report.describe()
        assert "local-access fraction" in text


class TestInteractiveNavigation:
    """Zoom/scroll behave like the paper's 'arbitrary zooming and
    scrolling along the timeline'."""

    def test_zoom_sequence(self, seidel_trace_small):
        trace = seidel_trace_small
        view = TimelineView.fit(trace, 300, 100)
        for __ in range(6):
            view = view.zoom(2.0)
            fb = render_timeline(trace, StateMode(), view)
            assert fb.width == 300
        assert view.duration < trace.duration / 32

    def test_scroll_across_trace(self, seidel_trace_small):
        trace = seidel_trace_small
        view = TimelineView.fit(trace, 200, 80).zoom(8.0)
        seen_colors = set()
        for __ in range(8):
            fb = render_timeline(trace, TypeMode(), view)
            seen_colors |= fb.unique_colors()
            view = view.scroll(1.0)
        assert len(seen_colors) > 2
