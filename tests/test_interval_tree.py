"""Tests for the n-ary min/max search tree (Section VI-B-c)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CounterIndex, MinMaxTree, segment_minmax


class TestMinMaxTree:
    def test_single_element(self):
        tree = MinMaxTree([7.0], arity=4)
        assert tree.query(0, 1) == (7.0, 7.0)

    def test_full_range(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        tree = MinMaxTree(values, arity=3)
        assert tree.query(0, len(values)) == (1.0, 9.0)

    def test_subranges(self):
        values = list(range(100))
        tree = MinMaxTree(values, arity=10)
        assert tree.query(13, 57) == (13.0, 56.0)
        assert tree.query(99, 100) == (99.0, 99.0)

    def test_invalid_ranges_rejected(self):
        tree = MinMaxTree([1.0, 2.0], arity=2)
        with pytest.raises(ValueError):
            tree.query(1, 1)
        with pytest.raises(ValueError):
            tree.query(-1, 2)
        with pytest.raises(ValueError):
            tree.query(0, 3)

    def test_arity_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            MinMaxTree([1.0], arity=1)

    def test_default_arity_overhead_below_five_percent(self):
        """The paper: arity 100 limits the tree overhead to 5 % of the
        counter data."""
        tree = MinMaxTree(np.random.default_rng(0).normal(size=50_000))
        assert tree.arity == 100
        assert tree.overhead_fraction() <= 0.05

    def test_small_arity_higher_overhead(self):
        values = np.arange(10_000, dtype=np.float64)
        binary = MinMaxTree(values, arity=2)
        wide = MinMaxTree(values, arity=100)
        assert binary.overhead_fraction() > wide.overhead_fraction()

    @given(values=st.lists(st.floats(min_value=-1e9, max_value=1e9,
                                     allow_nan=False), min_size=1,
                           max_size=300),
           arity=st.integers(min_value=2, max_value=7),
           data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_matches_numpy_min_max(self, values, arity, data):
        tree = MinMaxTree(values, arity=arity)
        lo = data.draw(st.integers(min_value=0,
                                   max_value=len(values) - 1))
        hi = data.draw(st.integers(min_value=lo + 1,
                                   max_value=len(values)))
        expected = (min(values[lo:hi]), max(values[lo:hi]))
        assert tree.query(lo, hi) == pytest.approx(expected)


class TestCounterIndex:
    def test_query_matches_direct_scan(self, seidel_trace_small):
        trace = seidel_trace_small
        index = CounterIndex(trace)
        counter_id = trace.counter_id("cache_misses")
        core = 1
        timestamps, values = trace.counter_samples(core, counter_id)
        assert len(timestamps) > 4
        lo_t = int(timestamps[1])
        hi_t = int(timestamps[-2]) + 1
        result = index.query_time_range(core, counter_id, lo_t, hi_t)
        inside = values[(timestamps >= lo_t) & (timestamps < hi_t)]
        assert result == pytest.approx((inside.min(), inside.max()))

    def test_empty_interval_returns_none(self, seidel_trace_small):
        trace = seidel_trace_small
        index = CounterIndex(trace)
        counter_id = trace.counter_id("cache_misses")
        assert index.query_time_range(0, counter_id, -100, -50) is None

    def test_trees_are_cached(self, seidel_trace_small):
        index = CounterIndex(seidel_trace_small)
        counter_id = seidel_trace_small.counter_id("cache_misses")
        first = index.tree(0, counter_id)
        second = index.tree(0, counter_id)
        assert first is second


class TestQuerySegments:
    """The batched kernel must equal per-segment scalar queries on
    both of its internal paths (flat leaf pass and tree-level walk)."""

    def reference(self, values, boundaries):
        mins, maxs = [], []
        for index in range(len(boundaries) - 1):
            window = values[boundaries[index]:boundaries[index + 1]]
            mins.append(window.min() if len(window) else np.nan)
            maxs.append(window.max() if len(window) else np.nan)
        return np.asarray(mins), np.asarray(maxs)

    def test_matches_scalar_queries_randomized(self):
        rng = np.random.default_rng(7)
        for __ in range(40):
            count = int(rng.integers(1, 2000))
            arity = int(rng.integers(2, 10))
            values = rng.normal(size=count) * 1e6
            tree = MinMaxTree(values, arity=arity)
            boundaries = np.sort(rng.integers(0, count + 1,
                                              size=int(rng.integers(2,
                                                                    40))))
            mins, maxs = tree.query_segments(boundaries)
            want_min, want_max = self.reference(values, boundaries)
            assert np.array_equal(mins, want_min, equal_nan=True)
            assert np.array_equal(maxs, want_max, equal_nan=True)

    def test_wide_spans_take_the_tree_walk(self):
        """A span far wider than 2 * segments * arity exercises the
        hierarchical branch; results must still equal the leaf scan."""
        rng = np.random.default_rng(8)
        values = rng.normal(size=200_000)
        tree = MinMaxTree(values, arity=4)
        boundaries = np.linspace(0, len(values), 17).astype(np.int64)
        assert len(values) > 2 * 16 * tree.arity
        mins, maxs = tree.query_segments(boundaries)
        flat_min, flat_max = segment_minmax(values, boundaries)
        assert np.array_equal(mins, flat_min)
        assert np.array_equal(maxs, flat_max)

    def test_empty_segments_are_nan(self):
        tree = MinMaxTree(np.asarray([1.0, 5.0, 3.0]), arity=2)
        mins, maxs = tree.query_segments(np.asarray([0, 0, 2, 2, 3]))
        assert np.isnan(mins[0]) and np.isnan(mins[2])
        assert (mins[1], maxs[1]) == (1.0, 5.0)
        assert (mins[3], maxs[3]) == (3.0, 3.0)

    def test_empty_tree(self):
        tree = MinMaxTree(np.empty(0), arity=3)
        mins, maxs = tree.query_segments(np.asarray([0, 0, 0]))
        assert np.isnan(mins).all() and np.isnan(maxs).all()
        assert tree.bounds() is None
