"""Tests for the memory-mapped columnar trace cache (``.ostc``)."""

import os
import time

import numpy as np
import pytest

from repro.core import traces_equal
from repro.session import AnalysisSession
from repro.trace_format import (CacheError, StaleCacheError,
                                default_cache_path, load_cache,
                                read_trace, split_time_window,
                                write_cache, write_trace)
from trace_gen import make_random_trace


@pytest.fixture()
def trace_file(tmp_path):
    trace = make_random_trace(11, events_per_core=30)
    path = str(tmp_path / "trace.ost")
    write_trace(trace, path, chunk_records=64)
    return path, trace


class TestDefaultCachePath:
    def test_ost_suffix_becomes_ostc(self):
        assert default_cache_path("runs/trace.ost") == "runs/trace.ostc"

    def test_other_names_gain_suffix(self):
        assert default_cache_path("trace.bin") == "trace.bin.ostc"


class TestReadTraceCache:
    def test_first_open_writes_sidecar(self, trace_file):
        path, trace = trace_file
        sidecar = default_cache_path(path)
        assert not os.path.exists(sidecar)
        opened = read_trace(path, cache=True)
        assert os.path.exists(sidecar)
        assert traces_equal(opened, trace)

    def test_second_open_serves_the_map(self, trace_file):
        path, trace = trace_file
        read_trace(path, cache=True)
        mapped = read_trace(path, cache=True)
        assert isinstance(mapped.states.lane(0).base, np.memmap)
        assert traces_equal(mapped, trace)

    def test_explicit_cache_path(self, trace_file, tmp_path):
        path, trace = trace_file
        sidecar = str(tmp_path / "elsewhere.ostc")
        read_trace(path, cache=sidecar)
        assert os.path.exists(sidecar)
        assert traces_equal(load_cache(sidecar), trace)

    def test_stale_sidecar_is_rebuilt(self, trace_file):
        path, __ = trace_file
        read_trace(path, cache=True)
        time.sleep(0.01)
        replacement = make_random_trace(12, events_per_core=25)
        write_trace(replacement, path, chunk_records=64)
        with pytest.raises(StaleCacheError):
            load_cache(default_cache_path(path), source_path=path)
        assert traces_equal(read_trace(path, cache=True), replacement)

    def test_pre_parse_stamp_marks_mid_parse_changes_stale(
            self, trace_file):
        """The sidecar is stamped with the source's *pre-parse* size
        and mtime: if the trace file changes while the parse runs, the
        sidecar must come out stale rather than freshly stamped over
        wrong data."""
        path, trace = trace_file
        stale_stamp = {"size": os.path.getsize(path) + 1,
                       "mtime_ns": 0}          # "the file moved on"
        sidecar = default_cache_path(path)
        write_cache(trace, sidecar, source_stamp=stale_stamp)
        with pytest.raises(StaleCacheError):
            load_cache(sidecar, source_path=path)

    def test_corrupt_sidecar_is_rejected_and_rebuilt(self, trace_file):
        path, trace = trace_file
        sidecar = default_cache_path(path)
        with open(sidecar, "wb") as stream:
            stream.write(b"not a cache at all")
        with pytest.raises(CacheError):
            load_cache(sidecar)
        assert traces_equal(read_trace(path, cache=True), trace)

    def test_mapped_lanes_are_views_not_copies(self, trace_file):
        """Two opens of the same sidecar map the same bytes — the lane
        arrays alias one flat buffer instead of holding copies."""
        path, __ = trace_file
        read_trace(path, cache=True)
        mapped = read_trace(path, cache=True)
        lanes = [mapped.states.lane(core)
                 for core in range(mapped.num_cores)]
        bases = {id(lane.base) for lane in lanes if len(lane)}
        assert len(bases) <= 1     # one shared memmap


class TestTimeBounds:
    def test_cached_bounds_match_parsed_bounds(self, trace_file):
        path, trace = trace_file
        read_trace(path, cache=True)
        mapped = read_trace(path, cache=True)
        assert (mapped.begin, mapped.end) == (trace.begin, trace.end)


class TestSessionOpen:
    def test_open_uses_the_cache(self, trace_file):
        path, trace = trace_file
        session = AnalysisSession.open(path, width=256, height=64)
        assert os.path.exists(default_cache_path(path))
        assert traces_equal(session.trace, trace)
        assert (session.view.start, session.view.end) == (trace.begin,
                                                          trace.end)
        reopened = AnalysisSession.open(path, width=256, height=64)
        assert isinstance(reopened.trace.states.lane(0).base, np.memmap)

    def test_open_without_cache(self, trace_file):
        path, trace = trace_file
        session = AnalysisSession.open(path, cache=False)
        assert not os.path.exists(default_cache_path(path))
        assert traces_equal(session.trace, trace)


class TestCacheWindows:
    def test_split_time_window_requires_columnar(self, trace_file):
        path, __ = trace_file
        with pytest.raises(ValueError):
            split_time_window(path, 0, 10, cache=True)

    def test_cache_served_window_matches_scan(self, trace_file):
        path, trace = trace_file
        read_trace(path, cache=True)
        span = trace.end - trace.begin
        start = trace.begin + span // 3
        end = trace.begin + (2 * span) // 3
        assert traces_equal(
            split_time_window(path, start, end, columnar=True,
                              cache=True),
            split_time_window(path, start, end))


class TestMemoizedTrees:
    def test_value_bounds_reuses_one_tree_per_core(self, trace_file):
        """Regression for the per-frame rescan: repeated axis-scaling
        calls must reuse the memoized min/max trees instead of
        rebuilding them (or rescanning the samples) every frame."""
        from repro.render import value_bounds
        path, trace = trace_file
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        store = read_trace(path, columnar=True)
        first = value_bounds(store, 0)
        trees_after_first = dict(store._minmax_trees)
        assert len(trees_after_first) == store.num_cores
        assert value_bounds(store, 0) == first
        assert store._minmax_trees == trees_after_first   # same objects
        for key, tree in trees_after_first.items():
            assert store._minmax_trees[key] is tree

    def test_counter_index_shares_store_trees(self, trace_file):
        from repro.core import CounterIndex
        path, trace = trace_file
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        store = read_trace(path, columnar=True)
        index = CounterIndex(store)
        assert index.tree(0, 0) is store.minmax_tree(0, 0)
