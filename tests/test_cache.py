"""Tests for the memory-mapped columnar trace cache (``.ostc``)."""

import os
import time

import numpy as np
import pytest

from repro.core import traces_equal
from repro.session import AnalysisSession
from repro.trace_format import (CacheError, StaleCacheError,
                                default_cache_path, load_cache,
                                read_trace, split_time_window,
                                write_cache, write_trace)
from trace_gen import make_random_trace


def mapping_of(array):
    """The ``np.memmap`` at the root of a view chain (None if the
    array owns its data — i.e. it is a copy, not a mapped view)."""
    while array is not None and not isinstance(array, np.memmap):
        array = array.base
    return array


@pytest.fixture()
def trace_file(tmp_path):
    trace = make_random_trace(11, events_per_core=30)
    path = str(tmp_path / "trace.ost")
    write_trace(trace, path, chunk_records=64)
    return path, trace


class TestDefaultCachePath:
    def test_ost_suffix_becomes_ostc(self):
        assert default_cache_path("runs/trace.ost") == "runs/trace.ostc"

    def test_other_names_gain_suffix(self):
        assert default_cache_path("trace.bin") == "trace.bin.ostc"


class TestReadTraceCache:
    def test_first_open_writes_sidecar(self, trace_file):
        path, trace = trace_file
        sidecar = default_cache_path(path)
        assert not os.path.exists(sidecar)
        opened = read_trace(path, cache=True)
        assert os.path.exists(sidecar)
        assert traces_equal(opened, trace)

    def test_second_open_serves_the_map(self, trace_file):
        path, trace = trace_file
        read_trace(path, cache=True)
        mapped = read_trace(path, cache=True)
        assert mapping_of(mapped.states.lane(0)) is not None
        assert traces_equal(mapped, trace)

    def test_explicit_cache_path(self, trace_file, tmp_path):
        path, trace = trace_file
        sidecar = str(tmp_path / "elsewhere.ostc")
        read_trace(path, cache=sidecar)
        assert os.path.exists(sidecar)
        assert traces_equal(load_cache(sidecar), trace)

    def test_stale_sidecar_is_rebuilt(self, trace_file):
        path, __ = trace_file
        read_trace(path, cache=True)
        time.sleep(0.01)
        replacement = make_random_trace(12, events_per_core=25)
        write_trace(replacement, path, chunk_records=64)
        with pytest.raises(StaleCacheError):
            load_cache(default_cache_path(path), source_path=path)
        assert traces_equal(read_trace(path, cache=True), replacement)

    def test_pre_parse_stamp_marks_mid_parse_changes_stale(
            self, trace_file):
        """The sidecar is stamped with the source's *pre-parse* size
        and mtime: if the trace file changes while the parse runs, the
        sidecar must come out stale rather than freshly stamped over
        wrong data."""
        path, trace = trace_file
        stale_stamp = {"size": os.path.getsize(path) + 1,
                       "mtime_ns": 0}          # "the file moved on"
        sidecar = default_cache_path(path)
        write_cache(trace, sidecar, source_stamp=stale_stamp)
        with pytest.raises(StaleCacheError):
            load_cache(sidecar, source_path=path)

    def test_corrupt_sidecar_is_rejected_and_rebuilt(self, trace_file):
        path, trace = trace_file
        sidecar = default_cache_path(path)
        with open(sidecar, "wb") as stream:
            stream.write(b"not a cache at all")
        with pytest.raises(CacheError):
            load_cache(sidecar)
        assert traces_equal(read_trace(path, cache=True), trace)

    def test_mapped_lanes_are_views_not_copies(self, trace_file):
        """Two opens of the same sidecar map the same bytes — the lane
        arrays alias one flat buffer instead of holding copies."""
        path, __ = trace_file
        read_trace(path, cache=True)
        mapped = read_trace(path, cache=True)
        lanes = [mapped.states.lane(core)
                 for core in range(mapped.num_cores)]
        mappings = [mapping_of(lane) for lane in lanes if len(lane)]
        assert all(mapping is not None for mapping in mappings)
        assert len({id(mapping) for mapping in mappings}) <= 1


class TestTimeBounds:
    def test_cached_bounds_match_parsed_bounds(self, trace_file):
        path, trace = trace_file
        read_trace(path, cache=True)
        mapped = read_trace(path, cache=True)
        assert (mapped.begin, mapped.end) == (trace.begin, trace.end)


class TestSessionOpen:
    def test_open_uses_the_cache(self, trace_file):
        path, trace = trace_file
        session = AnalysisSession.open(path, width=256, height=64)
        assert os.path.exists(default_cache_path(path))
        assert traces_equal(session.trace, trace)
        assert (session.view.start, session.view.end) == (trace.begin,
                                                          trace.end)
        reopened = AnalysisSession.open(path, width=256, height=64)
        assert mapping_of(reopened.trace.states.lane(0)) is not None

    def test_open_without_cache(self, trace_file):
        path, trace = trace_file
        session = AnalysisSession.open(path, cache=False)
        assert not os.path.exists(default_cache_path(path))
        assert traces_equal(session.trace, trace)


class TestCacheWindows:
    def test_split_time_window_requires_columnar(self, trace_file):
        path, __ = trace_file
        with pytest.raises(ValueError):
            split_time_window(path, 0, 10, cache=True)

    def test_cache_served_window_matches_scan(self, trace_file):
        path, trace = trace_file
        read_trace(path, cache=True)
        span = trace.end - trace.begin
        start = trace.begin + span // 3
        end = trace.begin + (2 * span) // 3
        assert traces_equal(
            split_time_window(path, start, end, columnar=True,
                              cache=True),
            split_time_window(path, start, end))


class TestMemoizedTrees:
    def test_value_bounds_reuses_one_tree_per_core(self, trace_file):
        """Regression for the per-frame rescan: repeated axis-scaling
        calls must reuse the memoized min/max trees instead of
        rebuilding them (or rescanning the samples) every frame."""
        from repro.render import value_bounds
        path, trace = trace_file
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        store = read_trace(path, columnar=True)
        first = value_bounds(store, 0)
        trees_after_first = dict(store._minmax_trees)
        assert len(trees_after_first) == store.num_cores
        assert value_bounds(store, 0) == first
        assert store._minmax_trees == trees_after_first   # same objects
        for key, tree in trees_after_first.items():
            assert store._minmax_trees[key] is tree

    def test_counter_index_shares_store_trees(self, trace_file):
        from repro.core import CounterIndex
        path, trace = trace_file
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        store = read_trace(path, columnar=True)
        index = CounterIndex(store)
        assert index.tree(0, 0) is store.minmax_tree(0, 0)


class TestAtomicWrites:
    def test_mid_write_failure_keeps_previous_sidecar(self, trace_file,
                                                      monkeypatch):
        """Regression: write_cache used to stream straight into the
        sidecar path, so a crash mid-write (or a concurrent reader)
        could observe a complete header over zero-padded lane bytes.
        A failed rewrite must leave the previous sidecar byte-intact."""
        from repro.trace_format import cache as cache_module
        path, trace = trace_file
        sidecar = default_cache_path(path)
        write_cache(trace, sidecar, source_path=path)
        before = open(sidecar, "rb").read()

        original = cache_module._write_body

        def exploding_write_body(stream, header_bytes, blobs):
            stream.write(b"partial garbage")
            raise OSError("disk full halfway through")

        monkeypatch.setattr(cache_module, "_write_body",
                            exploding_write_body)
        with pytest.raises(OSError):
            write_cache(trace, sidecar, source_path=path)
        monkeypatch.setattr(cache_module, "_write_body", original)
        assert open(sidecar, "rb").read() == before
        assert traces_equal(load_cache(sidecar), trace)

    def test_no_temp_file_left_behind(self, trace_file, monkeypatch):
        from repro.trace_format import cache as cache_module
        path, trace = trace_file
        sidecar = default_cache_path(path)

        def exploding_write_body(stream, header_bytes, blobs):
            raise OSError("boom")

        monkeypatch.setattr(cache_module, "_write_body",
                            exploding_write_body)
        with pytest.raises(OSError):
            write_cache(trace, sidecar, source_path=path)
        directory = os.path.dirname(sidecar)
        assert not [name for name in os.listdir(directory)
                    if ".tmp." in name]

    def test_concurrent_reader_keeps_old_mapping(self, trace_file):
        """A load_cache mapping taken before a rewrite stays valid and
        complete afterwards (os.replace swaps the directory entry; the
        mapped inode lives on)."""
        path, trace = trace_file
        sidecar = default_cache_path(path)
        write_cache(trace, sidecar, source_path=path)
        mapped = load_cache(sidecar)
        lane_before = np.asarray(mapped.states.lane(0)).copy()
        write_cache(trace, sidecar, source_path=path)
        assert np.array_equal(np.asarray(mapped.states.lane(0)),
                              lane_before)
        assert traces_equal(mapped, load_cache(sidecar))


class TestVersionBump:
    def test_version_1_sidecar_is_rejected(self, trace_file):
        """Pre-pyramid (version 1) sidecars raise CacheError ..."""
        from repro.trace_format.cache import _PREFIX, CACHE_MAGIC
        path, trace = trace_file
        sidecar = default_cache_path(path)
        read_trace(path, cache=True)
        with open(sidecar, "r+b") as stream:
            prefix = stream.read(_PREFIX.size)
            __, __, header_length = _PREFIX.unpack(prefix)
            stream.seek(0)
            stream.write(_PREFIX.pack(CACHE_MAGIC, 1, header_length))
        with pytest.raises(CacheError):
            load_cache(sidecar)

    def test_version_1_sidecar_rebuilds_transparently(self, trace_file):
        """... and read_trace(cache=True) rebuilds them in place."""
        from repro.trace_format.cache import _PREFIX, CACHE_MAGIC
        path, trace = trace_file
        sidecar = default_cache_path(path)
        read_trace(path, cache=True)
        with open(sidecar, "r+b") as stream:
            prefix = stream.read(_PREFIX.size)
            __, __, header_length = _PREFIX.unpack(prefix)
            stream.seek(0)
            stream.write(_PREFIX.pack(CACHE_MAGIC, 1, header_length))
        rebuilt = read_trace(path, cache=True)
        assert traces_equal(rebuilt, trace)
        mapped = read_trace(path, cache=True)
        assert mapped.pyramids is not None
        assert traces_equal(mapped, trace)


class TestPersistedPyramids:
    def fresh_mapping(self, path):
        """Write the sidecar and return a mapped reopen."""
        read_trace(path, cache=True)
        return read_trace(path, cache=True)

    def test_sidecar_carries_pyramids(self, trace_file):
        path, __ = trace_file
        mapped = self.fresh_mapping(path)
        assert mapped.pyramids is not None
        assert mapped.pyramids.state_index(0) is not None
        assert mapped.pyramids.state_tiles(0) is not None

    def test_mapped_counter_tree_matches_in_memory(self, trace_file):
        path, trace = trace_file
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        from repro.core import MinMaxTree
        mapped = self.fresh_mapping(path)
        plain = read_trace(path, columnar=True)
        for core in range(trace.num_cores):
            served = mapped.minmax_tree(core, 0)
            built = plain.minmax_tree(core, 0)
            assert served.bounds() == built.bounds()
            assert served.levels == built.levels
            boundaries = np.linspace(0, len(built), 9).astype(np.int64)
            for got, expected in zip(served.query_segments(boundaries),
                                     built.query_segments(boundaries)):
                assert np.array_equal(got, expected, equal_nan=True)

    def test_mapped_tree_levels_are_views_not_copies(self, trace_file):
        """The pyramid levels alias the sidecar mapping (no copy, no
        eager build at load time)."""
        path, trace = trace_file
        if not trace.counter_descriptions:
            pytest.skip("trace without counters")
        mapped = self.fresh_mapping(path)
        assert not getattr(mapped, "_minmax_trees", {})  # lazy load
        tree = mapped.minmax_tree(0, 0)
        if tree.levels > 1:
            assert mapping_of(tree._mins[1]) is not None

    def test_mapped_state_index_matches_built(self, trace_file):
        path, trace = trace_file
        mapped = self.fresh_mapping(path)
        plain = read_trace(path, columnar=True)
        for core in range(trace.num_cores):
            served = mapped.state_index(core)
            built = plain.state_index(core)
            assert np.array_equal(served.state_ids, built.state_ids)
            assert np.array_equal(served.offsets, built.offsets)
            assert np.array_equal(served.starts, built.starts)
            assert np.array_equal(served.ends, built.ends)
            assert np.array_equal(served.cum, built.cum)

    def test_mapped_tiles_match_built(self, trace_file):
        path, trace = trace_file
        mapped = self.fresh_mapping(path)
        plain = read_trace(path, columnar=True)
        for core in range(trace.num_cores):
            served = mapped.state_tiles(core)
            built = plain.state_tiles(core)
            assert served.level_counts() == built.level_counts()
            for level in range(len(served.levels)):
                assert np.array_equal(served.dominant(level),
                                      built.dominant(level))
                assert np.array_equal(served.event_counts(level),
                                      built.event_counts(level))
                assert np.array_equal(served.edges(level),
                                      built.edges(level))

    def test_windowed_subtrace_does_not_inherit_pyramids(self,
                                                         trace_file):
        path, trace = trace_file
        mapped = self.fresh_mapping(path)
        span = trace.end - trace.begin
        window = mapped.slice_time_window(trace.begin + span // 4,
                                          trace.begin + span // 2)
        assert window.pyramids is None

    def test_fit_view_render_served_from_persisted_columns(
            self, trace_file):
        """A whole-trace view at a persisted tile width renders
        bit-identically from the mapped columns and from the live
        kernel — the fast path must be invisible in the pixels."""
        from repro.core.pyramid import tile_level_counts
        from repro.render import Framebuffer, TimelineView
        from repro.render.counter_overlay import render_counter
        path, trace = trace_file
        mapped = self.fresh_mapping(path)
        plain = read_trace(path, columnar=True)
        widths = tile_level_counts(trace.end - trace.begin)
        assert widths, "fixture trace too short to carry tiles"
        for width in widths:
            view = TimelineView(start=trace.begin, end=trace.end,
                                width=width, height=32)
            assert mapped.counter_columns(0, 0, view) is not None
            mapped_fb = Framebuffer(width, 32)
            plain_fb = Framebuffer(width, 32)
            render_counter(mapped, 0, view, mapped_fb, core=0)
            render_counter(plain, 0, view, plain_fb, core=0)
            assert (mapped_fb.pixels == plain_fb.pixels).all()

    def test_served_columns_match_the_kernel(self, trace_file):
        """The persisted triple is exactly what ``_column_extremes``
        computes live (it was written by that kernel)."""
        from repro.render import TimelineView
        from repro.render.counter_overlay import _column_extremes
        path, trace = trace_file
        mapped = self.fresh_mapping(path)
        view = TimelineView(start=trace.begin, end=trace.end,
                            width=64, height=32)
        served = mapped.counter_columns(0, 0, view)
        timestamps, values = mapped.counter_samples(0, 0)
        live = _column_extremes(timestamps, values, view,
                                tree=mapped.minmax_tree(0, 0))
        for got, expected in zip(served, live):
            assert np.array_equal(got, expected)

    def test_columns_only_serve_the_exact_fit_view(self, trace_file):
        """Shifted windows, non-tile widths and the sample-exact zoom
        regime all fall back to the kernel (``None``)."""
        from repro.render import TimelineView
        path, trace = trace_file
        mapped = self.fresh_mapping(path)
        shifted = TimelineView(start=trace.begin + 1, end=trace.end,
                               width=64, height=32)
        assert mapped.counter_columns(0, 0, shifted) is None
        odd_width = TimelineView(start=trace.begin, end=trace.end,
                                 width=63, height=32)
        assert mapped.counter_columns(0, 0, odd_width) is None
        plain = read_trace(path, columnar=True)
        fit = TimelineView(start=trace.begin, end=trace.end,
                           width=64, height=32)
        assert plain.counter_columns(0, 0, fit) is None  # no sidecar

    def test_reopen_serves_the_cached_header(self, trace_file):
        """An unchanged sidecar must not be re-read or re-parsed on
        reopen: both loads share one parsed header object."""
        from repro.trace_format import cache as cache_module
        path, __ = trace_file
        read_trace(path, cache=True)
        sidecar = default_cache_path(path)
        first, __ = cache_module._read_header(sidecar)
        second, __ = cache_module._read_header(sidecar)
        assert second is first
        # Rewriting the sidecar (atomic replace -> new identity)
        # invalidates the cached header.
        store = read_trace(path, cache=True)
        write_cache(store, sidecar, source_path=path)
        third, __ = cache_module._read_header(sidecar)
        assert third is not first

    def test_session_overview_reads_persisted_tiles(self, trace_file):
        path, __ = trace_file
        session = AnalysisSession.open(path)          # writes sidecar
        session = AnalysisSession.open(path)          # maps it
        edges, dominant, events = session.overview(width=64)
        trace = session.trace
        assert dominant.shape == (trace.num_cores, len(edges) - 1)
        assert events.shape == dominant.shape
        assert int(edges[0]) == trace.begin
        assert int(edges[-1]) == trace.end
        assert (dominant >= -1).all()
        for core in range(trace.num_cores):
            lane = trace.states.lane(core)
            assert events[core].sum() == len(lane)
