"""Tests for the NUMA memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import (Interleaved, Machine, MemoryManager, PAGE_SIZE,
                           RandomPlacement)


@pytest.fixture
def machine():
    return Machine(4, 2)


@pytest.fixture
def manager(machine):
    return MemoryManager(machine)


class TestAllocation:
    def test_regions_do_not_overlap(self, manager):
        regions = [manager.allocate(10_000) for __ in range(10)]
        for first, second in zip(regions, regions[1:]):
            assert first.end <= second.address

    def test_region_page_count_rounds_up(self, manager):
        assert manager.allocate(1).num_pages == 1
        assert manager.allocate(PAGE_SIZE).num_pages == 1
        assert manager.allocate(PAGE_SIZE + 1).num_pages == 2

    def test_rejects_empty_region(self, manager):
        with pytest.raises(ValueError):
            manager.allocate(0)

    def test_pages_start_unallocated(self, manager):
        region = manager.allocate(3 * PAGE_SIZE)
        assert region.pages == [None, None, None]


class TestRegionLookup:
    def test_finds_containing_region(self, manager):
        regions = [manager.allocate(5000, name=str(i)) for i in range(20)]
        for region in regions:
            assert manager.region_of(region.address) is region
            assert manager.region_of(region.end - 1) is region

    def test_misses_between_regions(self, manager):
        region = manager.allocate(PAGE_SIZE)
        assert manager.region_of(region.end) is None

    def test_misses_before_first_region(self, manager):
        region = manager.allocate(PAGE_SIZE)
        assert manager.region_of(region.address - 1) is None

    def test_empty_manager(self, manager):
        assert manager.region_of(0x1000) is None


class TestFirstTouch:
    def test_fault_count_matches_touched_pages(self, manager):
        region = manager.allocate(4 * PAGE_SIZE)
        faults = manager.touch(region, 0, 2 * PAGE_SIZE, toucher_node=1)
        assert faults == 2
        assert region.pages[:2] == [1, 1]
        assert region.pages[2:] == [None, None]

    def test_second_touch_does_not_fault(self, manager):
        region = manager.allocate(PAGE_SIZE)
        assert manager.touch(region, 0, 100, toucher_node=0) == 1
        assert manager.touch(region, 0, 100, toucher_node=3) == 0
        assert region.pages[0] == 0  # placement is sticky

    def test_partial_page_access_faults_whole_page(self, manager):
        region = manager.allocate(2 * PAGE_SIZE)
        faults = manager.touch(region, PAGE_SIZE - 1, 2, toucher_node=2)
        assert faults == 2

    def test_out_of_bounds_touch_rejected(self, manager):
        region = manager.allocate(PAGE_SIZE)
        with pytest.raises(ValueError):
            manager.touch(region, 0, PAGE_SIZE + 1, toucher_node=0)


class TestPolicies:
    def test_interleaved_round_robin(self, machine):
        manager = MemoryManager(machine, policy=Interleaved(4))
        region = manager.allocate(8 * PAGE_SIZE)
        manager.touch(region, 0, 8 * PAGE_SIZE, toucher_node=0)
        assert region.pages == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_random_placement_uses_all_nodes(self, machine):
        manager = MemoryManager(machine,
                                policy=RandomPlacement(4, seed=1))
        region = manager.allocate(256 * PAGE_SIZE)
        manager.touch(region, 0, 256 * PAGE_SIZE, toucher_node=0)
        assert set(region.pages) == {0, 1, 2, 3}

    def test_random_placement_deterministic(self, machine):
        pages = []
        for __ in range(2):
            manager = MemoryManager(machine,
                                    policy=RandomPlacement(4, seed=9))
            region = manager.allocate(32 * PAGE_SIZE)
            manager.touch(region, 0, 32 * PAGE_SIZE, toucher_node=0)
            pages.append(list(region.pages))
        assert pages[0] == pages[1]


class TestAccessAccounting:
    def test_single_node_fast_path(self, manager):
        region = manager.allocate(4 * PAGE_SIZE)
        manager.touch(region, 0, 4 * PAGE_SIZE, toucher_node=2)
        assert region.uniform_node == 2
        assert manager.access_nodes(region, 100, 5000) == {2: 5000}

    def test_mixed_nodes_split_bytes(self, machine):
        manager = MemoryManager(machine, policy=Interleaved(2))
        region = manager.allocate(2 * PAGE_SIZE)
        manager.touch(region, 0, 2 * PAGE_SIZE, toucher_node=0)
        split = manager.access_nodes(region, 0, 2 * PAGE_SIZE)
        assert split == {0: PAGE_SIZE, 1: PAGE_SIZE}

    def test_straddling_access(self, machine):
        manager = MemoryManager(machine, policy=Interleaved(2))
        region = manager.allocate(2 * PAGE_SIZE)
        manager.touch(region, 0, 2 * PAGE_SIZE, toucher_node=0)
        split = manager.access_nodes(region, PAGE_SIZE - 100, 200)
        assert split == {0: 100, 1: 100}

    @given(offset=st.integers(min_value=0, max_value=PAGE_SIZE * 7),
           size=st.integers(min_value=1, max_value=PAGE_SIZE * 2))
    def test_bytes_conserved(self, offset, size):
        machine = Machine(4, 2)
        manager = MemoryManager(machine, policy=Interleaved(3))
        region = manager.allocate(9 * PAGE_SIZE)
        manager.touch(region, 0, 9 * PAGE_SIZE, toucher_node=0)
        split = manager.access_nodes(region, offset, size)
        assert sum(split.values()) == size


class TestPredominantNode:
    def test_majority_wins(self, manager):
        region = manager.allocate(3 * PAGE_SIZE)
        region.place_page(0, 1)
        region.place_page(1, 1)
        region.place_page(2, 0)
        assert region.predominant_node() == 1

    def test_unallocated_region_has_none(self, manager):
        region = manager.allocate(PAGE_SIZE)
        assert region.predominant_node() is None

    def test_tie_broken_by_lower_node(self, manager):
        region = manager.allocate(2 * PAGE_SIZE)
        region.place_page(0, 3)
        region.place_page(1, 1)
        assert region.predominant_node() == 1
