"""Tests for task-graph reconstruction and analysis (Section III-A)."""

import pytest

from repro.core import (TaskGraph, export_dot, graph_from_program,
                        reconstruct_task_graph, to_networkx)


def edge_set(graph):
    return {(src, dst) for src in graph.successors
            for dst in graph.successors[src]}


class TestTaskGraphBasics:
    def test_depths_of_diamond(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        assert graph.depths() == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_longest_path_wins(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(0, 2)
        assert graph.depth_of(2) == 2

    def test_roots(self):
        graph = TaskGraph()
        graph.add_edge(0, 2)
        graph.add_edge(1, 2)
        graph.add_node(5)
        assert graph.roots() == [0, 1, 5]

    def test_cycle_detection(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        with pytest.raises(ValueError):
            graph.depths()

    def test_parallelism_profile(self):
        graph = TaskGraph()
        for leaf in (1, 2, 3):
            graph.add_edge(0, leaf)
            graph.add_edge(leaf, 4)
        depths, counts = graph.parallelism_profile()
        assert list(depths) == [0, 1, 2]
        assert list(counts) == [1, 3, 1]

    def test_empty_graph(self):
        graph = TaskGraph()
        depths, counts = graph.parallelism_profile()
        assert len(depths) == 0 and len(counts) == 0
        assert graph.max_depth() == 0

    def test_ancestors(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(3, 2)
        assert graph.ancestors(2) == {0, 1, 3}

    def test_neighborhood(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.neighborhood(1, hops=1) == {0, 1, 2}
        assert graph.neighborhood(1, hops=2) == {0, 1, 2, 3}


class TestReconstruction:
    def test_matches_ground_truth_seidel(self, seidel_program,
                                         seidel_trace_small):
        truth = graph_from_program(seidel_program)
        rebuilt = reconstruct_task_graph(seidel_trace_small)
        assert edge_set(rebuilt) == edge_set(truth)
        assert rebuilt.nodes == truth.nodes

    def test_matches_ground_truth_random_dag(self, machine,
                                             random_dag_trace):
        from repro.workloads import build_random_dag
        program = build_random_dag(machine, num_tasks=120, seed=5)
        truth = graph_from_program(program)
        rebuilt = reconstruct_task_graph(random_dag_trace)
        assert edge_set(rebuilt) == edge_set(truth)

    def test_kmeans_reconstruction(self, kmeans_run, machine):
        from repro.workloads import build_kmeans
        from tests.conftest import TINY_KMEANS
        program = build_kmeans(machine, TINY_KMEANS)
        truth = graph_from_program(program)
        rebuilt = reconstruct_task_graph(kmeans_run[1])
        assert edge_set(rebuilt) == edge_set(truth)

    def test_empty_trace(self):
        from repro.core import TopologyInfo, TraceBuilder
        trace = TraceBuilder(TopologyInfo(1, 1)).build()
        graph = reconstruct_task_graph(trace)
        assert len(graph.nodes) == 0

    def test_trace_without_accesses_gives_no_edges(self):
        from repro.core import TopologyInfo, TraceBuilder
        builder = TraceBuilder(TopologyInfo(1, 2))
        builder.task_execution(0, 0, 0, 0, 10)
        builder.task_execution(1, 0, 1, 5, 15)
        graph = reconstruct_task_graph(builder.build())
        assert graph.nodes == {0, 1}
        assert graph.num_edges == 0


class TestSeidelProfile:
    def test_four_phases(self, seidel_program):
        """Fig. 5's shape: init spike, drop to one task, rise to a
        plateau, decline."""
        graph = graph_from_program(seidel_program)
        depths, counts = graph.parallelism_profile()
        assert counts[0] == 36               # phase 1: init spike
        assert counts[1] == 1                # phase 2: sudden drop
        peak = counts[2:].max()
        peak_at = depths[2:][counts[2:].argmax()]
        assert peak > 1                      # phase 3: rise
        assert counts[-1] < peak             # phase 4: decline
        assert depths[-1] > peak_at


class TestExport:
    def test_dot_contains_nodes_and_edges(self, seidel_trace_small):
        graph = reconstruct_task_graph(seidel_trace_small)
        text = export_dot(graph, trace=seidel_trace_small,
                          task_ids=list(graph.nodes)[:10])
        assert text.startswith("digraph taskgraph {")
        assert text.rstrip().endswith("}")

    def test_dot_subset_excludes_foreign_edges(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        text = export_dot(graph, task_ids=[0, 1])
        assert '"0" -> "1"' in text
        assert '"1" -> "2"' not in text

    def test_dot_file_output(self, tmp_path):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        path = tmp_path / "graph.dot"
        export_dot(graph, path=str(path))
        assert path.read_text().startswith("digraph")

    def test_networkx_conversion(self, seidel_trace_small):
        nx_graph = to_networkx(
            reconstruct_task_graph(seidel_trace_small))
        import networkx as nx
        assert nx.is_directed_acyclic_graph(nx_graph)
        # Longest path agrees with our depth computation.
        graph = reconstruct_task_graph(seidel_trace_small)
        assert (nx.dag_longest_path_length(nx_graph)
                == graph.max_depth())
