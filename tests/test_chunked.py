"""Tests for the seekable chunk index and the parallel analysis engine.

Covers the acceptance criteria of the out-of-core work: index
round-trips, seek-to-window equivalence with the full-scan path,
graceful fallback on unindexed files, strictly-fewer-bytes window
extraction on a million-event trace, and bit-identical parallel
map-reduce results.
"""

import os

import numpy as np
import pytest

from repro.analysis import (TaskHistogramAccumulator, parallel_comm_matrix,
                            parallel_map_reduce, parallel_streaming_statistics,
                            parallel_task_histogram)
from repro.core import (interval_report, interval_report_out_of_core,
                        state_time_summary_out_of_core)
from repro.trace_format import (IndexedTraceWriter, ScanStats,
                                StreamingStatistics, read_chunk_index,
                                read_trace, split_time_window,
                                stream_records, streaming_state_summary,
                                streaming_statistics,
                                streaming_task_histogram,
                                write_synthetic_trace, write_trace)
from repro.trace_format import format as fmt


@pytest.fixture(scope="module")
def indexed_seidel(seidel_trace_small, tmp_path_factory):
    """The simulated seidel trace written with a small chunk size, so
    even the tiny test trace spans many chunks."""
    path = tmp_path_factory.mktemp("chunked") / "seidel.ost"
    write_trace(seidel_trace_small, str(path), chunk_records=256)
    return str(path)


@pytest.fixture(scope="module")
def synthetic_medium(tmp_path_factory):
    """A 120k-event synthetic trace for merge-correctness tests."""
    path = tmp_path_factory.mktemp("synth") / "medium.ost"
    write_synthetic_trace(str(path), events=120_000)
    return str(path)


@pytest.fixture(scope="module")
def synthetic_large(tmp_path_factory):
    """The >= 1M-event trace of the acceptance criteria."""
    path = tmp_path_factory.mktemp("synth") / "large.ost"
    records = write_synthetic_trace(str(path), events=1_000_000)
    assert records >= 1_000_000
    return str(path)


class TestChunkIndexRoundTrip:
    def test_index_present_and_covers_all_events(self, indexed_seidel):
        index = read_chunk_index(indexed_seidel)
        assert index is not None
        assert index.num_chunks > 1
        # Every record outside the preamble is owned by exactly one
        # chunk: chunks are contiguous and end at the index footer.
        previous_end = index.preamble_offset + index.preamble_length
        for entry in index.entries:
            assert entry.offset == previous_end
            previous_end = entry.offset + entry.length
        assert previous_end == index.index_offset

    def test_indexed_file_loads_like_plain(self, seidel_trace_small,
                                           indexed_seidel, tmp_path):
        plain = tmp_path / "plain.ost"
        write_trace(seidel_trace_small, str(plain), index=False)
        assert read_chunk_index(str(plain)) is None
        indexed = read_trace(indexed_seidel)
        unindexed = read_trace(str(plain))
        assert len(indexed.tasks) == len(unindexed.tasks)
        assert len(indexed.states) == len(unindexed.states)
        assert indexed.task_types == unindexed.task_types

    def test_stream_records_skips_footer(self, indexed_seidel,
                                         seidel_trace_small, tmp_path):
        plain = tmp_path / "plain.ost"
        expected = write_trace(seidel_trace_small, str(plain),
                               index=False)
        count = sum(1 for __ in stream_records(indexed_seidel))
        assert count == expected

    def test_record_counts_match_index(self, indexed_seidel):
        index = read_chunk_index(indexed_seidel)
        events = sum(1 for kind, __ in stream_records(indexed_seidel)
                     if kind not in ("topology", "counter_description",
                                     "task_type", "region"))
        assert index.num_records == events

    def test_compressed_file_has_no_index(self, seidel_trace_small,
                                          tmp_path):
        path = tmp_path / "seidel.ost.gz"
        write_trace(seidel_trace_small, str(path))
        assert read_chunk_index(str(path)) is None

    def test_static_after_events_flags_chunk(self, tmp_path):
        from repro.core.events import TaskTypeInfo, TopologyInfo
        path = tmp_path / "static.ost"
        with open(path, "wb") as stream:
            with IndexedTraceWriter(stream, chunk_records=8) as writer:
                writer.topology(TopologyInfo(num_nodes=1,
                                             cores_per_node=2,
                                             name="flag"))
                for i in range(4):
                    writer.state_interval(0, 0, 10 * i, 10 * i + 5)
                writer.task_type(TaskTypeInfo(
                    type_id=0, name="late", address=0,
                    source_file="x.c", source_line=1))
                for i in range(4):
                    writer.state_interval(1, 0, 10 * i, 10 * i + 5)
        index = read_chunk_index(str(path))
        assert any(entry.has_static for entry in index.entries)
        # A window far away from every event still sees the late
        # static record, because flagged chunks are never skipped.
        window = split_time_window(str(path), 10**9, 10**9 + 1)
        assert any(info.name == "late" for info in window.task_types)

    def test_static_at_exact_chunk_boundary(self, tmp_path):
        """A static record arriving just as a chunk closed must open a
        new flagged chunk, not fall into an unindexed gap."""
        from repro.core.events import TaskTypeInfo, TopologyInfo
        path = tmp_path / "boundary.ost"
        with open(path, "wb") as stream:
            with IndexedTraceWriter(stream, chunk_records=4) as writer:
                writer.topology(TopologyInfo(num_nodes=1,
                                             cores_per_node=2,
                                             name="boundary"))
                for i in range(4):          # fills chunk 0 exactly
                    writer.state_interval(0, 0, 10 * i, 10 * i + 5)
                writer.task_type(TaskTypeInfo(
                    type_id=0, name="boundary_type", address=0,
                    source_file="x.c", source_line=1))
                for i in range(4):
                    writer.state_interval(1, 0, 10 * i, 10 * i + 5)
        index = read_chunk_index(str(path))
        # Chunks stay contiguous: no byte between the preamble and the
        # footer escapes the directory.
        previous_end = index.preamble_offset + index.preamble_length
        for entry in index.entries:
            assert entry.offset == previous_end
            previous_end = entry.offset + entry.length
        assert previous_end == index.index_offset
        window = split_time_window(str(path), 10**9, 10**9 + 1)
        assert any(info.name == "boundary_type"
                   for info in window.task_types)

    def test_write_trace_interleaves_lanes(self, seidel_trace_small,
                                           indexed_seidel):
        """Events are written in global timestamp order (not one core
        lane after another), so chunk time ranges stay narrow and a
        narrow window skips most of a simulator-written file."""
        index = read_chunk_index(indexed_seidel)
        spans = [entry.t_max - entry.t_min for entry in index.entries]
        duration = seidel_trace_small.duration
        median_span = sorted(spans)[len(spans) // 2]
        assert median_span < duration // 4


class TestSeekToWindow:
    @pytest.mark.parametrize("fraction", [(0, 4), (1, 3), (3, 4)])
    def test_equivalent_to_full_scan(self, seidel_trace_small,
                                     indexed_seidel, fraction):
        trace = seidel_trace_small
        offset, denominator = fraction
        start = trace.begin + trace.duration * offset // denominator
        end = start + trace.duration // denominator
        seek = split_time_window(indexed_seidel, start, end)
        scan = split_time_window(indexed_seidel, start, end,
                                 use_index=False)
        assert len(seek.tasks) == len(scan.tasks)
        assert len(seek.states) == len(scan.states)
        assert len(seek.discrete) == len(scan.discrete)
        for name, column in seek.tasks.columns.items():
            assert (column == scan.tasks.columns[name]).all()
        assert seek.task_types == scan.task_types
        assert seek.regions == scan.regions

    def test_narrow_window_skips_chunks(self, seidel_trace_small,
                                        indexed_seidel):
        trace = seidel_trace_small
        stats = ScanStats()
        split_time_window(indexed_seidel, trace.begin,
                          trace.begin + trace.duration // 10,
                          stats=stats)
        assert stats.used_index
        assert stats.chunks_skipped > 0
        assert stats.bytes_read < os.path.getsize(indexed_seidel)

    def test_unindexed_fallback(self, seidel_trace_small, tmp_path):
        path = tmp_path / "seidel.ost.gz"
        write_trace(seidel_trace_small, str(path))
        trace = seidel_trace_small
        mid = trace.begin + trace.duration // 2
        stats = ScanStats()
        window = split_time_window(str(path), trace.begin, mid,
                                   stats=stats)
        assert not stats.used_index
        expected = ((trace.tasks.columns["start"] < mid)
                    & (trace.tasks.columns["end"] > trace.begin)).sum()
        assert len(window.tasks) == expected


class TestLargeTraceBytes:
    """Acceptance: indexed window extraction on a >= 1M-event trace
    reads strictly fewer bytes than a full scan."""

    def test_window_reads_strictly_fewer_bytes(self, synthetic_large):
        file_size = os.path.getsize(synthetic_large)
        bounds = streaming_statistics(synthetic_large)
        start = bounds.begin + (bounds.end - bounds.begin) // 2
        end = start + (bounds.end - bounds.begin) // 100
        stats = ScanStats()
        window = split_time_window(synthetic_large, start, end,
                                   stats=stats)
        assert stats.used_index
        assert stats.bytes_read < file_size          # strictly fewer
        # The narrow window should skip the vast majority of the file.
        assert stats.bytes_read < file_size // 2
        assert len(window.tasks) > 0
        # Chunk-granular seeking loses nothing relative to a full scan.
        scan = split_time_window(synthetic_large, start, end,
                                 use_index=False)
        assert len(window.tasks) == len(scan.tasks)
        assert len(window.states) == len(scan.states)
        assert len(window.comm["timestamp"]) \
            == len(scan.comm["timestamp"])

    def test_large_parallel_matches_serial(self, synthetic_large):
        serial = streaming_statistics(synthetic_large)
        parallel = parallel_streaming_statistics(synthetic_large,
                                                 workers=2)
        assert parallel == serial


class TestParallelMapReduce:
    def test_statistics_bit_identical(self, synthetic_medium):
        serial = streaming_statistics(synthetic_medium)
        parallel = parallel_streaming_statistics(synthetic_medium,
                                                 workers=2)
        # Dataclass equality compares every accumulator field.
        assert parallel == serial
        assert parallel.records == serial.records
        assert parallel.counter_extremes == serial.counter_extremes

    def test_single_worker_in_process(self, synthetic_medium):
        serial = streaming_statistics(synthetic_medium)
        assert parallel_streaming_statistics(synthetic_medium,
                                             workers=1) == serial

    def test_unindexed_file_serial_fallback(self, seidel_trace_small,
                                            tmp_path):
        path = tmp_path / "seidel.ost.gz"
        write_trace(seidel_trace_small, str(path))
        serial = streaming_statistics(str(path))
        assert parallel_streaming_statistics(str(path),
                                             workers=2) == serial

    def test_histogram_identical(self, synthetic_medium):
        value_range = (0, 25_000)
        edges, counts = parallel_task_histogram(synthetic_medium, 16,
                                                value_range, workers=2)
        expected_edges, expected = streaming_task_histogram(
            synthetic_medium, 16, value_range)
        assert (edges == expected_edges).all()
        assert (counts == expected).all()
        assert counts.sum() > 0

    def test_comm_matrix_identical_to_direct_scan(self,
                                                  synthetic_medium):
        matrix = parallel_comm_matrix(synthetic_medium, workers=2)
        expected = None
        for kind, fields in stream_records(synthetic_medium):
            if kind == "topology":
                cores = fields.num_cores
                expected = np.zeros((cores, cores), dtype=np.int64)
            elif kind == "comm_event":
                src, dst, __, size, __task = fields
                expected[src, dst] += size
        assert (matrix == expected).all()
        assert matrix.sum() > 0

    def test_custom_accumulator_protocol(self, synthetic_medium):
        acc = parallel_map_reduce(
            synthetic_medium,
            lambda: StreamingStatistics(), workers=1)
        assert acc.total_tasks > 0

    def test_accumulator_validation(self):
        with pytest.raises(ValueError):
            TaskHistogramAccumulator(0, (0, 10))
        with pytest.raises(ValueError):
            TaskHistogramAccumulator(4, (10, 10))

    def test_merge_is_exact_over_random_splits(self, synthetic_medium):
        records = list(stream_records(synthetic_medium))
        serial = StreamingStatistics()
        for kind, fields in records:
            serial.consume(kind, fields)
        merged = StreamingStatistics()
        for lo, hi in ((0, 1), (1, 7), (7, len(records) // 3),
                       (len(records) // 3, len(records))):
            part = StreamingStatistics()
            for kind, fields in records[lo:hi]:
                part.consume(kind, fields)
            merged.merge(part)
        assert merged == serial


class TestCoreWiring:
    def test_state_summary_out_of_core(self, seidel_trace_small,
                                       indexed_seidel):
        from repro.core import state_time_summary
        summary = state_time_summary_out_of_core(indexed_seidel,
                                                 workers=2)
        assert summary == state_time_summary(seidel_trace_small)

    def test_streaming_state_summary(self, indexed_seidel,
                                     seidel_trace_small):
        from repro.core import state_time_summary
        assert streaming_state_summary(indexed_seidel) \
            == state_time_summary(seidel_trace_small)

    def test_interval_report_out_of_core(self, seidel_trace_small,
                                         indexed_seidel):
        trace = seidel_trace_small
        start = trace.begin + trace.duration // 4
        end = trace.begin + trace.duration // 2
        report = interval_report_out_of_core(indexed_seidel, start, end)
        expected = interval_report(trace, start, end)
        assert report.tasks == expected.tasks
        assert report.state_cycles == expected.state_cycles
        assert report.average_parallelism \
            == pytest.approx(expected.average_parallelism)


class TestFormatEdges:
    def test_corrupt_trailer_magic_means_no_index(self, synthetic_medium,
                                                  tmp_path):
        data = bytearray(open(synthetic_medium, "rb").read())
        data[-4] ^= 0xFF
        path = tmp_path / "corrupt.ost"
        path.write_bytes(bytes(data))
        assert read_chunk_index(str(path)) is None

    def test_truncated_index_offset_rejected(self, synthetic_medium,
                                             tmp_path):
        data = bytearray(open(synthetic_medium, "rb").read())
        trailer = fmt.INDEX_TRAILER.pack(len(data) + 10, fmt.INDEX_MAGIC)
        path = tmp_path / "bad_offset.ost"
        path.write_bytes(bytes(data[:-len(trailer)]) + trailer)
        with pytest.raises(fmt.FormatError):
            read_chunk_index(str(path))

    def test_tiny_file_has_no_index(self, tmp_path):
        path = tmp_path / "tiny.ost"
        path.write_bytes(b"AFTM")
        assert read_chunk_index(str(path)) is None
