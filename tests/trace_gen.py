"""Seeded random trace generator shared by the property-based and
parity test suites.

Builds an in-memory :class:`~repro.core.trace.Trace` containing every
record kind with randomized-but-valid content: per-core monotone,
non-overlapping state and task intervals, monotone counter samples,
discrete/communication events, memory accesses into randomly placed
regions, and the full static preamble.  Everything is derived from one
``random.Random(seed)``, so a seed pins the trace exactly.
"""

import random

from repro.core import (RegionInfo, TaskTypeInfo, TopologyInfo,
                        TraceBuilder)

PAGE = 4096


def make_random_trace(seed, events_per_core=40, sparse=False):
    """A deterministic random :class:`Trace` exercising every record
    kind.  ``sparse=True`` drops some record kinds entirely (the trace
    format is incremental — readers must cope with missing kinds)."""
    rng = random.Random(seed)
    topology = TopologyInfo(num_nodes=rng.randint(1, 3),
                            cores_per_node=rng.randint(1, 4),
                            name="random-{}".format(seed))
    builder = TraceBuilder(topology)

    include = {kind: (not sparse or rng.random() < 0.7)
               for kind in ("states", "tasks", "discrete", "comm",
                            "accesses", "counters")}

    num_types = rng.randint(1, 4)
    for type_id in range(num_types):
        builder.describe_task_type(TaskTypeInfo(
            type_id=type_id, name="type_{}".format(type_id),
            address=0x1000 + 64 * type_id,
            source_file="gen.c", source_line=type_id + 1))

    regions = []
    cursor = PAGE * rng.randint(1, 8)
    for region_id in range(rng.randint(0, 3)):
        pages = rng.randint(1, 6)
        region = RegionInfo(
            region_id=region_id, address=cursor, size=pages * PAGE,
            page_nodes=tuple(rng.randrange(-1, topology.num_nodes)
                             for __ in range(pages)),
            name="region_{}".format(region_id))
        builder.describe_region(region)
        regions.append(region)
        cursor = region.address + region.size + PAGE * rng.randint(1, 8)

    counter_ids = []
    if include["counters"]:
        for name in ("cycles", "misses")[:rng.randint(1, 2)]:
            counter_ids.append(builder.describe_counter(name))

    task_id = 0
    for core in range(topology.num_cores):
        clock = rng.randint(0, 50)
        for __ in range(events_per_core):
            duration = rng.randint(1, 400)
            start, end = clock, clock + duration
            emitted = False
            if include["states"] and rng.random() < 0.6:
                builder.state_interval(core, rng.randrange(6), start, end)
                emitted = True
            if include["tasks"] and not emitted and rng.random() < 0.7:
                builder.task_execution(task_id,
                                       rng.randrange(num_types), core,
                                       start, end)
                task_id += 1
            if include["discrete"] and rng.random() < 0.3:
                builder.discrete_event(core, rng.randrange(4), start,
                                       rng.randint(0, 1000))
            if include["comm"] and rng.random() < 0.25:
                builder.comm_event(core,
                                   rng.randrange(topology.num_cores),
                                   start, size=rng.randint(0, 1 << 16),
                                   task_id=rng.randint(-1, task_id))
            if include["accesses"] and regions and rng.random() < 0.4:
                region = rng.choice(regions)
                builder.memory_access(
                    rng.randint(0, max(task_id, 1)), core,
                    region.address + rng.randrange(region.size),
                    rng.choice((8, 64, 512)), rng.random() < 0.5, start)
            for counter_id in counter_ids:
                if rng.random() < 0.5:
                    builder.counter_sample(core, counter_id, start,
                                           rng.random() * 1e9)
            clock = end + rng.randint(0, 60)
    return builder.build()
