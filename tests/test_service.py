"""Tests for the multi-tenant trace service (`repro.service`).

Four surfaces: the shared `MappedCachePool` (sharing, LRU eviction,
stat-stamp invalidation, concurrency), the transport-free
`TraceService` handlers (endpoints and error codes), the HTTP
server/client pair (real sockets, error propagation, concurrent
clients), and the CLI's `serve`/`--remote` integration.
"""

import base64
import importlib.util
import os
import pathlib
import struct
import threading
import zlib

import pytest

from repro.service import (MappedCachePool, ServiceClient, ServiceError,
                           TraceService, start_server)
from repro.trace_format.synthesize import write_synthetic_trace

CLI_PATH = (pathlib.Path(__file__).parent.parent / "examples"
            / "aftermath_cli.py")


def _write(path, events=1_500, seed=3):
    write_synthetic_trace(str(path), events=events, nodes=2,
                          cores_per_node=2, task_types=3, seed=seed)
    return str(path)


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    """A directory with two distinct synthetic traces."""
    directory = tmp_path_factory.mktemp("service")
    _write(directory / "a.ost", seed=3)
    _write(directory / "b.ost", events=900, seed=8)
    return directory


class TestMappedCachePool:
    def test_second_entry_is_a_hit_on_the_same_store(self, trace_dir):
        pool = MappedCachePool(capacity=4)
        first = pool.entry(str(trace_dir / "a.ost"))
        second = pool.entry(str(trace_dir / "a.ost"))
        assert second.trace is first.trace
        assert (pool.misses, pool.hits) == (1, 1)
        assert second.hits == 1

    def test_lru_eviction_under_pressure(self, trace_dir, tmp_path):
        pool = MappedCachePool(capacity=2)
        a = _write(tmp_path / "a.ost", seed=1)
        b = _write(tmp_path / "b.ost", seed=2)
        c = _write(tmp_path / "c.ost", seed=3)
        pool.entry(a)
        pool.entry(b)
        pool.entry(a)                    # refresh a: b is now LRU
        pool.entry(c)                    # evicts b, not a
        assert sorted(os.path.basename(p) for p in pool.resident()) \
            == ["a.ost", "c.ost"]
        assert pool.evictions == 1
        assert len(pool) == 2

    def test_evicted_store_stays_usable_for_holders(self, tmp_path):
        pool = MappedCachePool(capacity=1)
        first = pool.entry(_write(tmp_path / "one.ost", seed=1))
        held = first.trace
        tasks_before = len(held.tasks)
        pool.entry(_write(tmp_path / "two.ost", seed=2))
        assert os.path.basename(pool.resident()[0]) == "two.ost"
        # The pool forgot the entry, but the mapping is still valid
        # for the request that holds it.
        assert len(held.tasks) == tasks_before

    def test_stale_stamp_invalidation(self, tmp_path):
        pool = MappedCachePool(capacity=4)
        path = _write(tmp_path / "mut.ost", events=1_000, seed=1)
        before = pool.entry(path)
        held = before.trace
        tasks_before = len(held.tasks)
        _write(tmp_path / "mut.ost", events=2_000, seed=2)
        after = pool.entry(path)
        assert after.trace is not held
        assert pool.invalidations == 1
        assert len(after.trace.tasks) != tasks_before
        # Mid-request holders finish on the old mapping: os.replace
        # keeps the mapped inode alive even though the path moved on.
        assert len(held.tasks) == tasks_before

    def test_explicit_invalidate(self, trace_dir):
        pool = MappedCachePool(capacity=4)
        path = str(trace_dir / "a.ost")
        pool.entry(path)
        pool.invalidate(path)
        assert pool.resident() == []
        pool.entry(path)
        pool.invalidate()                # no argument: drop everything
        assert len(pool) == 0

    def test_concurrent_entries_share_one_parse(self, trace_dir):
        pool = MappedCachePool(capacity=4)
        path = str(trace_dir / "a.ost")
        barrier = threading.Barrier(8)
        stores = []

        def worker():
            barrier.wait()
            stores.append(pool.entry(path).trace)

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, stores))) == 1
        assert pool.misses == 1
        assert pool.hits == 7


@pytest.fixture()
def service(trace_dir):
    return TraceService(root=str(trace_dir), width=128, height=32)


class TestServiceHandlers:
    def test_open_and_shared_flag(self, service, trace_dir):
        first = service.handle("open", {"path": str(trace_dir / "a.ost")})
        second = service.handle("open",
                                {"path": str(trace_dir / "a.ost")})
        assert (first["session"], first["shared"]) == ("s1", False)
        assert (second["session"], second["shared"]) == ("s2", True)
        assert first["cores"] == 4
        assert first["view"]["width"] == 128

    def test_sessions_navigate_without_interference(self, service,
                                                    trace_dir):
        path = str(trace_dir / "a.ost")
        a = service.handle("open", {"path": path})
        b = service.handle("open", {"path": path})
        moved = service.handle("navigate", {"session": a["session"],
                                            "action": "zoom",
                                            "factor": 4.0})
        assert moved["view"] != a["view"]
        stats_b = service.handle("stats", {"session": b["session"]})
        # b's view never moved: it still covers the whole trace.
        assert (stats_b["start"], stats_b["end"]) \
            == (b["view"]["start"], b["view"]["end"])
        back = service.handle("navigate", {"session": a["session"],
                                           "action": "back"})
        assert back["view"] == a["view"]

    def test_stats_explicit_window(self, service, trace_dir):
        opened = service.handle("open",
                                {"path": str(trace_dir / "a.ost")})
        reply = service.handle("stats", {"session": opened["session"],
                                         "start": 0, "end": 1_000})
        assert (reply["start"], reply["end"]) == (0, 1_000)
        assert set(reply["state_cycles"])  # spelled-out state names

    def test_render_ascii_and_png_agree_on_geometry(self, service,
                                                    trace_dir):
        opened = service.handle("open",
                                {"path": str(trace_dir / "a.ost")})
        ascii_reply = service.handle("render",
                                     {"session": opened["session"]})
        assert len(ascii_reply["rows"]) == 32
        assert all(len(row) == 128 for row in ascii_reply["rows"])
        png_reply = service.handle("render",
                                   {"session": opened["session"],
                                    "format": "png"})
        data = base64.b64decode(png_reply["png_base64"])
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        width, height = struct.unpack(">II", data[16:24])
        assert (width, height) == (128, 32)
        assert png_reply["draw_calls"] == ascii_reply["draw_calls"]

    def test_render_every_registered_mode(self, service, trace_dir):
        from repro.render import TIMELINE_MODES
        opened = service.handle("open",
                                {"path": str(trace_dir / "a.ost")})
        for mode in sorted(TIMELINE_MODES):
            reply = service.handle("render",
                                   {"session": opened["session"],
                                    "mode": mode})
            assert reply["mode"] == mode

    def test_diff_self_is_empty_and_tolerances_parse(self, service,
                                                     trace_dir):
        path = str(trace_dir / "a.ost")
        reply = service.handle("diff", {
            "baseline": path, "candidate": path,
            "tolerances": {"relative": 0.0, "absolute": 0.0,
                           "distribution": 0.0, "anomalies": 0}})
        assert reply["empty"] is True
        assert reply["deviations"] == 0
        other = service.handle("diff", {
            "baseline": path,
            "candidate": str(trace_dir / "b.ost")})
        assert other["deviations"] > 0

    def test_sweep_status_on_a_real_suite(self, service, trace_dir):
        from repro.analysis.experiments import run_suite, synthetic_sweep
        suite = str(trace_dir / "suite")
        run_suite(synthetic_sweep(2, events=400), suite, workers=1)
        reply = service.handle("sweep-status", {"directory": suite})
        assert reply["counts"]["done"] == 2
        assert [job["state"] for job in reply["jobs"]] \
            == ["done", "done"]
        assert all(job["error"] is None for job in reply["jobs"])

    def test_close_frees_the_session_but_not_the_pool(self, service,
                                                      trace_dir):
        opened = service.handle("open",
                                {"path": str(trace_dir / "a.ost")})
        assert service.handle("close",
                              {"session": opened["session"]}) \
            == {"closed": opened["session"]}
        with pytest.raises(ServiceError) as excinfo:
            service.handle("stats", {"session": opened["session"]})
        assert excinfo.value.code == "unknown_session"
        assert len(service.pool) == 1

    def test_describe_counters(self, service, trace_dir):
        service.handle("open", {"path": str(trace_dir / "a.ost")})
        body = service.describe()
        assert body["status"] == "ok"
        assert body["sessions"] == 1
        assert body["pool"]["resident"] == 1


class TestServiceErrors:
    def expect(self, service, endpoint, params, code, status):
        """One request that must fail with exactly this code/status."""
        with pytest.raises(ServiceError) as excinfo:
            service.handle(endpoint, params)
        assert excinfo.value.code == code
        assert excinfo.value.status == status
        assert "error" in excinfo.value.payload()

    def test_unknown_endpoint(self, service):
        self.expect(service, "bogus", {}, "unknown_endpoint", 404)

    def test_non_object_body(self, service):
        self.expect(service, "open", "not-a-dict", "bad_request", 400)

    def test_missing_required_parameter(self, service):
        self.expect(service, "open", {}, "bad_request", 400)

    def test_unknown_session(self, service):
        self.expect(service, "stats", {"session": "s999"},
                    "unknown_session", 404)

    def test_unknown_navigation_action(self, service, trace_dir):
        opened = service.handle("open",
                                {"path": str(trace_dir / "a.ost")})
        self.expect(service, "navigate",
                    {"session": opened["session"], "action": "warp"},
                    "bad_request", 400)

    def test_bad_render_format(self, service, trace_dir):
        opened = service.handle("open",
                                {"path": str(trace_dir / "a.ost")})
        self.expect(service, "render",
                    {"session": opened["session"], "format": "bmp"},
                    "bad_request", 400)

    def test_missing_trace_is_404(self, service, trace_dir):
        self.expect(service, "open",
                    {"path": str(trace_dir / "nope.ost")},
                    "trace_error", 404)

    def test_corrupt_trace_is_422(self, service, trace_dir):
        corrupt = trace_dir / "corrupt.ost"
        corrupt.write_bytes(b"NOPE" + b"\x00" * 64)
        self.expect(service, "open", {"path": str(corrupt)},
                    "trace_error", 422)

    def test_root_jail_is_403(self, service):
        self.expect(service, "open", {"path": "/outside/root.ost"},
                    "forbidden", 403)
        self.expect(service, "sweep-status",
                    {"directory": "/outside/suite"}, "forbidden", 403)

    def test_missing_journal_is_queue_error(self, service, trace_dir):
        empty = trace_dir / "empty"
        empty.mkdir(exist_ok=True)
        self.expect(service, "sweep-status",
                    {"directory": str(empty)}, "queue_error", 404)


class TestHttpTransport:
    @pytest.fixture()
    def server(self, trace_dir):
        server = start_server(root=str(trace_dir), width=128, height=32)
        yield server
        server.shutdown()

    def test_round_trip_and_health(self, server, trace_dir):
        client = ServiceClient(server.url)
        health = client.health()
        assert health["status"] == "ok"
        opened = client.open(str(trace_dir / "a.ost"))
        stats = client.stats(opened["session"])
        assert stats["tasks"] > 0
        assert client.close(opened["session"]) \
            == {"closed": opened["session"]}
        client.close_connection()

    def test_server_errors_reach_the_client_typed(self, server,
                                                  trace_dir):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.stats("s999")
        assert excinfo.value.code == "unknown_session"
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.open("/outside/root.ost")
        assert excinfo.value.status == 403
        client.close_connection()

    def test_http_surface_rejects_unknown_routes(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._roundtrip("GET", "/nope", None)
        assert excinfo.value.code == "unknown_endpoint"
        with pytest.raises(ServiceError) as excinfo:
            client._roundtrip("POST", "/elsewhere", b"{}")
        assert excinfo.value.code == "unknown_endpoint"
        client.close_connection()

    def test_invalid_json_body_is_bad_request(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._roundtrip("POST", "/api/open", b"{broken")
        assert excinfo.value.code == "bad_request"
        client.close_connection()

    def test_client_reconnects_after_a_dropped_connection(self, server,
                                                          trace_dir):
        client = ServiceClient(server.url)
        opened = client.open(str(trace_dir / "a.ost"))
        client._connection.close()       # simulate a dropped keep-alive
        assert client.stats(opened["session"])["tasks"] > 0
        client.close_connection()

    def test_concurrent_clients_share_the_mapping(self, server,
                                                  trace_dir):
        path = str(trace_dir / "a.ost")
        barrier = threading.Barrier(6)
        results = []

        def analyst():
            client = ServiceClient(server.url)
            barrier.wait()
            opened = client.open(path)
            stats = client.stats(opened["session"])
            stats.pop("session")
            results.append(stats)
            client.close_connection()

        threads = [threading.Thread(target=analyst) for __ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 6
        assert all(entry == results[0] for entry in results)
        pool = server.service.pool
        assert pool.misses == 1
        assert len(pool) == 1

    def test_stale_trace_remapped_between_requests(self, tmp_path):
        path = _write(tmp_path / "live.ost", events=800, seed=1)
        server = start_server(root=str(tmp_path), width=64, height=16)
        try:
            client = ServiceClient(server.url)
            opened = client.open(path)
            before = client.stats(opened["session"])
            _write(tmp_path / "live.ost", events=1_600, seed=2)
            after = client.stats(opened["session"])
            assert after["tasks"] != before["tasks"]
            assert server.service.pool.invalidations == 1
            client.close_connection()
        finally:
            server.shutdown()


class TestCliIntegration:
    @pytest.fixture(scope="class")
    def cli(self):
        spec = importlib.util.spec_from_file_location("aftermath_cli",
                                                      CLI_PATH)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @pytest.fixture(scope="class")
    def server(self, trace_dir):
        server = start_server(root=str(trace_dir))
        yield server
        server.shutdown()

    def test_info_remote(self, cli, server, trace_dir, capsys):
        cli.main(["info", str(trace_dir / "a.ost"),
                  "--remote", server.url])
        out = capsys.readouterr().out
        assert "remote trace" in out
        assert "cores: 4" in out

    def test_report_remote(self, cli, server, trace_dir, capsys):
        cli.main(["report", str(trace_dir / "a.ost"),
                  "--remote", server.url])
        out = capsys.readouterr().out
        assert "average parallelism:" in out
        assert "running" in out

    def test_render_remote_writes_png(self, cli, server, trace_dir,
                                      tmp_path, capsys):
        output = str(tmp_path / "remote.png")
        cli.main(["render", str(trace_dir / "a.ost"), output,
                  "--remote", server.url, "--mode", "heatmap",
                  "--width", "64"])
        assert "draw calls, png" in capsys.readouterr().out
        with open(output, "rb") as handle:
            assert handle.read(8) == b"\x89PNG\r\n\x1a\n"

    def test_remote_error_exits_with_diagnostic(self, cli, server,
                                                capsys):
        with pytest.raises(SystemExit):
            cli.main(["info", "/outside/root.ost",
                      "--remote", server.url])
        assert "outside the served root" in capsys.readouterr().err

    def test_serve_subcommand_is_wired(self, cli):
        # The foreground server loop is exercised over HTTP above;
        # here: the parser wires the handler and its defaults.  main()
        # builds its parser per call, so patching cmd_serve intercepts
        # the dispatch without starting a real serve_forever loop.
        import unittest.mock as mock
        args = None

        def fake_handler(parsed):
            nonlocal args
            args = parsed

        with mock.patch.object(cli, "cmd_serve", fake_handler):
            cli.main(["serve", "--port", "0", "--pool-capacity", "3"])
        assert args.port == 0
        assert args.pool_capacity == 3
        assert args.host == "127.0.0.1"


class TestPngExport:
    def test_png_bytes_round_trip_pixels(self):
        from repro.render import Framebuffer
        framebuffer = Framebuffer(3, 2, background=(10, 20, 30))
        framebuffer.put_pixel(1, 0, (255, 0, 0))
        data = framebuffer.png_bytes()
        width, height = struct.unpack(">II", data[16:24])
        assert (width, height) == (3, 2)
        # Decode the IDAT payload: filter byte 0 + raw RGB per row.
        idat_offset = data.index(b"IDAT") + 4
        idat_length = struct.unpack(">I",
                                    data[idat_offset - 8:
                                         idat_offset - 4])[0]
        raw = zlib.decompress(data[idat_offset:
                                   idat_offset + idat_length])
        rows = [raw[i * 10:(i + 1) * 10] for i in range(2)]
        assert all(row[0] == 0 for row in rows)
        assert rows[0][1:4] == bytes((10, 20, 30))
        assert rows[0][4:7] == bytes((255, 0, 0))

    def test_save_png(self, tmp_path):
        from repro.render import Framebuffer
        path = tmp_path / "out.png"
        Framebuffer(4, 4).save_png(str(path))
        assert path.read_bytes().startswith(b"\x89PNG\r\n\x1a\n")
        assert path.read_bytes().endswith(b"IEND\xaeB`\x82")

    def test_to_ascii_maps_luminance(self):
        from repro.render import Framebuffer
        from repro.render.framebuffer import ASCII_RAMP
        framebuffer = Framebuffer(2, 1)
        framebuffer.put_pixel(1, 0, (255, 255, 255))
        (row,) = framebuffer.to_ascii()
        assert row == ASCII_RAMP[0] + ASCII_RAMP[-1]


class TestTimelineModeRegistry:
    def test_every_name_instantiates(self):
        from repro.render import TIMELINE_MODES, timeline_mode
        for name in TIMELINE_MODES:
            assert timeline_mode(name) is not None

    def test_numa_modes_carry_their_kind(self):
        from repro.render import timeline_mode
        assert timeline_mode("numa-read").kind == "read"
        assert timeline_mode("numa-write").kind == "write"

    def test_unknown_name_lists_the_valid_ones(self):
        from repro.render import timeline_mode
        with pytest.raises(ValueError, match="state"):
            timeline_mode("vortex")
