"""Tests for the work-stealing schedulers."""

import pytest

from repro.runtime import (Machine, NumaAwareScheduler, Program,
                           RandomStealScheduler)


@pytest.fixture
def machine():
    return Machine(2, 2)


def make_task(machine, reads=()):
    program = Program(machine)
    task = program.spawn("t", 100, reads=reads)
    return program, task


class TestQueueMechanics:
    def test_enqueue_pop_local_lifo(self, machine):
        scheduler = RandomStealScheduler(machine)
        program = Program(machine)
        first = program.spawn("a", 1)
        second = program.spawn("b", 1)
        scheduler.enqueue(first, 0)
        scheduler.enqueue(second, 0)
        assert scheduler.pop_local(0) is second    # depth-first
        assert scheduler.pop_local(0) is first

    def test_pop_empty_returns_none(self, machine):
        assert RandomStealScheduler(machine).pop_local(1) is None

    def test_steal_takes_oldest(self, machine):
        scheduler = RandomStealScheduler(machine, seed=0)
        program = Program(machine)
        first = program.spawn("a", 1)
        second = program.spawn("b", 1)
        scheduler.enqueue(first, 0)
        scheduler.enqueue(second, 0)
        stolen, victim = scheduler.steal(3)
        assert stolen is first                      # breadth-first steal
        assert victim == 0

    def test_steal_empty_returns_none(self, machine):
        assert RandomStealScheduler(machine, seed=0).steal(0) is None

    def test_queued_tasks_count(self, machine):
        scheduler = RandomStealScheduler(machine)
        program = Program(machine)
        for index in range(5):
            scheduler.enqueue(program.spawn(str(index), 1), index % 4)
        assert scheduler.queued_tasks() == 5


class TestRandomPlacement:
    def test_random_scheduler_keeps_origin(self, machine):
        scheduler = RandomStealScheduler(machine)
        program, task = make_task(machine)
        assert scheduler.enqueue(task, 3) == 3


class TestNumaAwarePlacement:
    def test_places_near_input_data(self, machine):
        scheduler = NumaAwareScheduler(machine)
        program = Program(machine)
        region = program.allocate(8 * 4096)
        program.memory.touch(region, 0, region.size, toucher_node=1)
        task = program.spawn("t", 1, reads=[(region, 0, region.size)])
        core = scheduler.enqueue(task, 0)
        assert machine.node_of_core(core) == 1

    def test_input_less_tasks_spread_round_robin(self, machine):
        scheduler = NumaAwareScheduler(machine)
        program = Program(machine)
        nodes = []
        for index in range(4):
            task = program.spawn(str(index), 1)
            nodes.append(machine.node_of_core(
                scheduler.enqueue(task, 0)))
        assert nodes == [0, 1, 0, 1]

    def test_prefers_majority_node(self, machine):
        scheduler = NumaAwareScheduler(machine)
        program = Program(machine)
        big = program.allocate(8 * 4096)
        small = program.allocate(4096)
        program.memory.touch(big, 0, big.size, toucher_node=1)
        program.memory.touch(small, 0, small.size, toucher_node=0)
        task = program.spawn("t", 1, reads=[(big, 0, big.size),
                                            (small, 0, small.size)])
        core = scheduler.enqueue(task, 0)
        assert machine.node_of_core(core) == 1

    def test_least_loaded_core_chosen(self, machine):
        scheduler = NumaAwareScheduler(machine)
        program = Program(machine)
        region = program.allocate(4096)
        program.memory.touch(region, 0, 4096, toucher_node=0)
        cores = [scheduler.enqueue(
            program.spawn(str(index), 1,
                          reads=[(region, 0, 4096)]), 0)
            for index in range(2)]
        # Node 0 has cores {0, 1}; load balancing alternates them.
        assert set(cores) == {0, 1}

    def test_local_steal_only_by_default(self, machine):
        scheduler = NumaAwareScheduler(machine, seed=0)
        program = Program(machine)
        program.spawn("t", 1)
        # Queue the task on node 0 ...
        region = program.allocate(4096)
        program.memory.touch(region, 0, 4096, toucher_node=0)
        task2 = program.spawn("u", 1, reads=[(region, 0, 4096)])
        scheduler.enqueue(task2, 0)
        # ... a thief on node 1 cannot reach it.
        assert scheduler.steal(2) is None
        # A thief on node 0 can.
        assert scheduler.steal(1) is not None

    def test_remote_steal_opt_in(self, machine):
        scheduler = NumaAwareScheduler(machine, seed=0, remote_steal=True)
        program = Program(machine)
        region = program.allocate(4096)
        program.memory.touch(region, 0, 4096, toucher_node=0)
        task = program.spawn("t", 1, reads=[(region, 0, 4096)])
        scheduler.enqueue(task, 0)
        stolen, victim = scheduler.steal(2)
        assert stolen is task
        assert machine.node_of_core(victim) == 0
