"""Tests for counter overlays and matrix/histogram views."""

import numpy as np
import pytest

from repro.core import CounterIndex, TopologyInfo, TraceBuilder
from repro.render import (Framebuffer, TimelineView, histogram_to_text,
                          matrix_to_text, render_counter,
                          render_counter_rate, render_histogram,
                          render_matrix, value_bounds)


def counter_trace(samples):
    builder = TraceBuilder(TopologyInfo(1, 1))
    counter = builder.describe_counter("c")
    for timestamp, value in samples:
        builder.counter_sample(0, counter, timestamp, value)
    return builder.build()


class TestValueBounds:
    def test_bounds_span_samples(self):
        trace = counter_trace([(0, 2.0), (10, 8.0), (20, 5.0)])
        assert value_bounds(trace, 0) == (2.0, 8.0)

    def test_empty_counter(self):
        trace = counter_trace([])
        assert value_bounds(trace, 0) == (0.0, 1.0)

    def test_constant_counter_padded(self):
        trace = counter_trace([(0, 5.0), (10, 5.0)])
        lo, hi = value_bounds(trace, 0)
        assert hi > lo


class TestRenderCounter:
    def test_optimized_one_line_per_column(self):
        samples = [(t, float(t % 17)) for t in range(0, 1000, 5)]
        trace = counter_trace(samples)
        view = TimelineView(0, 1000, width=40, height=30)
        fb = Framebuffer(40, 30)
        calls = render_counter(trace, 0, view, fb)
        assert calls == 40    # exactly one vertical line per column

    def test_naive_one_line_per_sample_pair(self):
        samples = [(t, float(t)) for t in range(0, 100, 10)]
        trace = counter_trace(samples)
        view = TimelineView(0, 100, width=50, height=20)
        fb = Framebuffer(50, 20)
        calls = render_counter(trace, 0, view, fb, optimized=False)
        assert calls == len(samples) - 1

    def test_optimized_cheaper_when_samples_dense(self):
        samples = [(t, float((t * 7) % 23)) for t in range(2000)]
        trace = counter_trace(samples)
        view = TimelineView(0, 2000, width=100, height=40)
        naive_fb = Framebuffer(100, 40)
        naive = render_counter(trace, 0, view, naive_fb, optimized=False)
        fast_fb = Framebuffer(100, 40)
        fast = render_counter(trace, 0, view, fast_fb)
        assert fast < naive

    def test_tree_index_gives_same_extremes(self):
        samples = [(t, float((t * 13) % 101)) for t in range(0, 3000, 3)]
        trace = counter_trace(samples)
        view = TimelineView(0, 3000, width=64, height=48)
        plain_fb = Framebuffer(64, 48)
        render_counter(trace, 0, view, plain_fb)
        tree_fb = Framebuffer(64, 48)
        render_counter(trace, 0, view, tree_fb,
                       counter_index=CounterIndex(trace))
        assert (plain_fb.pixels == tree_fb.pixels).all()

    def test_empty_counter_draws_nothing(self):
        trace = counter_trace([])
        view = TimelineView(0, 100, width=10, height=10)
        fb = Framebuffer(10, 10)
        assert render_counter(trace, 0, view, fb) == 0

    def test_sparse_columns_interpolated(self):
        trace = counter_trace([(0, 0.0), (1000, 10.0)])
        view = TimelineView(0, 1000, width=20, height=20)
        fb = Framebuffer(20, 20)
        calls = render_counter(trace, 0, view, fb)
        assert calls >= 18     # middle columns interpolate

    def test_render_by_name(self, seidel_trace_small):
        view = TimelineView.fit(seidel_trace_small, 60, 40)
        fb = Framebuffer(60, 40)
        calls = render_counter(seidel_trace_small, "cache_misses", view,
                               fb, core=1)
        assert calls > 0


class TestRenderCounterRate:
    def test_rate_rendering_draws(self, seidel_trace_small):
        view = TimelineView.fit(seidel_trace_small, 80, 40)
        fb = Framebuffer(80, 40)
        calls = render_counter_rate(seidel_trace_small,
                                    "branch_mispredictions", view, fb,
                                    core=2)
        assert calls >= 0
        assert fb.pixels_drawn > 0

    def test_too_few_samples(self):
        trace = counter_trace([(0, 1.0)])
        view = TimelineView(0, 10, width=5, height=5)
        fb = Framebuffer(5, 5)
        assert render_counter_rate(trace, 0, view, fb) == 0


class TestMatrixRendering:
    def test_render_matrix_dimensions(self):
        matrix = np.asarray([[1.0, 0.0], [0.25, 0.5]])
        fb = render_matrix(matrix, cell_size=8, gap=1)
        assert fb.width == 2 * 9 + 1
        assert fb.height == 2 * 9 + 1

    def test_deeper_red_for_larger_values(self):
        matrix = np.asarray([[1.0, 0.0], [0.0, 0.0]])
        fb = render_matrix(matrix, cell_size=4, gap=0)
        hot = fb.pixels[0, 0]
        cold = fb.pixels[0, 7]
        assert hot[1] < cold[1]   # less green = deeper red

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_matrix(np.zeros(4))

    def test_matrix_to_text(self):
        text = matrix_to_text(np.asarray([[0.5, 0.5], [0.0, 1.0]]))
        assert "0.500" in text
        assert len(text.splitlines()) == 3


class TestHistogramRendering:
    def test_bars_scale_with_fraction(self):
        edges = np.asarray([0.0, 1.0, 2.0])
        fb = render_histogram(edges, [0.25, 0.75], width=20, height=40)
        assert fb.pixels_drawn > 0

    def test_empty_histogram(self):
        fb = render_histogram(np.asarray([0.0]), [])
        assert fb.pixels_drawn == 0

    def test_histogram_to_text(self):
        edges = np.asarray([0.0, 10.0, 20.0])
        text = histogram_to_text(edges, [0.4, 0.6])
        lines = text.splitlines()
        assert len(lines) == 2
        assert "#" in lines[0]
