"""Tests for the Cholesky and pipeline workloads and machine files."""

import pytest

from repro.core import graph_from_program, task_type_profile
from repro.runtime import (Machine, RandomStealScheduler, TraceCollector,
                           fully_connected_machine, load_machine,
                           machine_from_dict, mesh_machine, run_program,
                           save_machine, validate_distances)
from repro.workloads import (CholeskyConfig, PipelineConfig,
                             build_cholesky, build_pipeline)


@pytest.fixture(scope="module")
def chol_machine():
    return Machine(2, 4)


class TestCholesky:
    @pytest.fixture(scope="class")
    def program(self):
        return build_cholesky(Machine(2, 4),
                              CholeskyConfig(blocks=5, block_dim=16))

    def test_kernel_counts(self, program):
        counts = {}
        for task in program.tasks:
            counts[task.task_type.name] = counts.get(
                task.task_type.name, 0) + 1
        n = 5
        assert counts["chol_potrf"] == n
        assert counts["chol_trsm"] == n * (n - 1) // 2
        assert counts["chol_syrk"] == n * (n - 1) // 2
        assert counts["chol_gemm"] == sum(
            i - k - 1 for k in range(n) for i in range(k + 1, n))

    def test_potrf_chain_is_serial(self, program):
        """potrf(k+1) transitively depends on potrf(k)."""
        graph = graph_from_program(program)
        depths = graph.depths()
        potrfs = sorted((task.metadata["k"], depths[task.task_id])
                        for task in program.tasks
                        if task.task_type.name == "chol_potrf")
        for (__, d1), (__k, d2) in zip(potrfs, potrfs[1:]):
            assert d2 > d1

    def test_executes_and_profiles(self, program, chol_machine):
        collector = TraceCollector(chol_machine)
        result, trace = run_program(
            program, RandomStealScheduler(chol_machine, seed=0),
            collector=collector)
        assert result.tasks_executed == len(program.tasks)
        profile = task_type_profile(trace)
        names = [entry.type_name for entry in profile]
        assert "chol_gemm" in names

    def test_acyclic(self, program):
        assert program.validate_acyclic()


class TestPipeline:
    def test_stateful_stage_serializes(self, chol_machine):
        config = PipelineConfig(frames=6,
                                stage_costs=(1000, 1000),
                                stateful=(True, True))
        program = build_pipeline(chol_machine, config)
        graph = graph_from_program(program)
        depths = graph.depths()
        stage0 = sorted((task.metadata["frame"], depths[task.task_id])
                        for task in program.tasks
                        if task.metadata["stage"] == 0)
        for (__, d1), (__f, d2) in zip(stage0, stage0[1:]):
            assert d2 > d1

    def test_stateless_stage_parallel_across_frames(self, chol_machine):
        config = PipelineConfig(frames=6, stage_costs=(1000, 1000),
                                stateful=(False, False))
        program = build_pipeline(chol_machine, config)
        graph = graph_from_program(program)
        depths = graph.depths()
        stage0_depths = {depths[task.task_id]
                         for task in program.tasks
                         if task.metadata["stage"] == 0}
        assert stage0_depths == {0}

    def test_stage_order_per_frame(self, chol_machine):
        config = PipelineConfig(frames=4, stage_costs=(500, 500, 500))
        program = build_pipeline(chol_machine, config)
        collector = TraceCollector(chol_machine)
        __, trace = run_program(
            program, RandomStealScheduler(chol_machine, seed=1),
            collector=collector)
        ends = {}
        for task in program.tasks:
            execution = trace.task_by_id(task.task_id)
            ends[(task.metadata["stage"], task.metadata["frame"])] = (
                execution.start, execution.end)
        for frame in range(4):
            for stage in range(2):
                assert ends[(stage, frame)][1] \
                    <= ends[(stage + 1, frame)][0]

    def test_bottleneck_stage_dominates_profile(self, chol_machine):
        config = PipelineConfig(frames=16,
                                stage_costs=(5000, 50_000, 5000),
                                frame_bytes=2048)
        program = build_pipeline(chol_machine, config)
        collector = TraceCollector(chol_machine)
        __, trace = run_program(
            program, RandomStealScheduler(chol_machine, seed=1),
            collector=collector)
        profile = task_type_profile(trace)
        assert profile[0].type_name == "pipe_stage1"
        assert profile[0].share_of_execution > 0.5

    def test_mismatched_stateful_flags_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(frames=2, stage_costs=(1, 2),
                           stateful=(True,))


class TestMachineFiles:
    def test_roundtrip(self, tmp_path):
        machine = Machine(4, 8, name="round")
        path = tmp_path / "machine.json"
        save_machine(machine, str(path))
        loaded = load_machine(str(path))
        assert loaded.name == "round"
        assert loaded.num_cores == machine.num_cores
        for a in range(4):
            for b in range(4):
                assert loaded.distance(a, b) == machine.distance(a, b)

    def test_custom_distances_validated(self):
        with pytest.raises(ValueError):
            machine_from_dict({"num_nodes": 2, "cores_per_node": 1,
                               "distances": [[10, 15], [20, 10]]})
        with pytest.raises(ValueError):
            machine_from_dict({"num_nodes": 2, "cores_per_node": 1,
                               "distances": [[11, 20], [20, 10]]})
        with pytest.raises(ValueError):
            machine_from_dict({"num_nodes": 2, "cores_per_node": 1,
                               "distances": [[10, 5], [5, 10]]})

    def test_mesh_distances(self):
        machine = mesh_machine(2, 3, cores_per_node=2)
        assert machine.num_nodes == 6
        # Nodes 0 and 1 are one hop apart; 0 and 5 are three.
        assert machine.distance(0, 1) < machine.distance(0, 5)
        assert validate_distances(
            [[machine.distance(a, b) for b in range(6)]
             for a in range(6)], 6)

    def test_fully_connected_uniform(self):
        machine = fully_connected_machine(4)
        remotes = {machine.distance(a, b)
                   for a in range(4) for b in range(4) if a != b}
        assert len(remotes) == 1

    def test_simulation_on_mesh(self):
        from repro.workloads import build_fork_join
        machine = mesh_machine(2, 2, cores_per_node=2)
        program = build_fork_join(machine, width=8)
        result, __ = run_program(program,
                                 RandomStealScheduler(machine, seed=0))
        assert result.tasks_executed == len(program.tasks)
