"""Tests for the binary trace format (Section VI-A)."""

import io

import pytest

from repro.core import CounterDescription, TopologyInfo, TraceBuilder
from repro.trace_format import (FormatError, codec_for_path,
                                open_trace_file, read_trace,
                                read_trace_stream, write_trace)
from repro.trace_format.writer import TraceWriter


def traces_equal(first, second):
    assert first.topology == second.topology
    assert first.counter_descriptions == second.counter_descriptions
    assert first.task_types == second.task_types
    assert first.regions == second.regions
    for table in ("states", "tasks", "discrete"):
        a = getattr(first, table).columns
        b = getattr(second, table).columns
        for name in a:
            assert (a[name] == b[name]).all(), (table, name)
    for name in first.comm:
        assert (first.comm[name] == second.comm[name]).all()
    for name in first.accesses:
        assert (first.accesses[name] == second.accesses[name]).all()
    assert set(first.counter_series) == set(second.counter_series)
    for key in first.counter_series:
        t1, v1 = first.counter_series[key]
        t2, v2 = second.counter_series[key]
        assert (t1 == t2).all()
        assert v1 == pytest.approx(v2)
    return True


class TestRoundtrip:
    def test_full_trace_roundtrip(self, seidel_trace_small, tmp_path):
        path = tmp_path / "seidel.ost"
        records = write_trace(seidel_trace_small, str(path))
        assert records > 0
        loaded = read_trace(str(path))
        assert traces_equal(seidel_trace_small, loaded)

    @pytest.mark.parametrize("suffix", [".gz", ".bz2", ".xz"])
    def test_compressed_roundtrip(self, seidel_trace_small, tmp_path,
                                  suffix):
        """Aftermath directly opens gzip/bzip2/xz compressed traces."""
        path = tmp_path / ("seidel.ost" + suffix)
        write_trace(seidel_trace_small, str(path))
        loaded = read_trace(str(path))
        assert traces_equal(seidel_trace_small, loaded)

    def test_compression_shrinks_file(self, seidel_trace_small,
                                      tmp_path):
        raw = tmp_path / "t.ost"
        packed = tmp_path / "t.ost.xz"
        write_trace(seidel_trace_small, str(raw))
        write_trace(seidel_trace_small, str(packed))
        assert packed.stat().st_size < raw.stat().st_size

    def test_kmeans_roundtrip(self, kmeans_trace_small, tmp_path):
        path = tmp_path / "kmeans.ost.gz"
        write_trace(kmeans_trace_small, str(path))
        assert traces_equal(kmeans_trace_small, read_trace(str(path)))


class TestCodecSelection:
    def test_suffix_detection(self):
        assert codec_for_path("a.ost.gz") == ".gz"
        assert codec_for_path("A.OST.XZ") == ".xz"
        assert codec_for_path("a.ost") is None

    def test_text_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            open_trace_file(str(tmp_path / "x.ost"), "w")


class TestIncrementalFormat:
    """Any record type may be missing (Section VI-A): analyses degrade
    gracefully rather than failing to load."""

    def minimal_trace(self):
        builder = TraceBuilder(TopologyInfo(2, 2))
        builder.task_execution(0, 0, 0, 0, 100)
        builder.task_execution(1, 0, 1, 50, 180)
        return builder.build()

    def test_trace_without_accesses_loads(self, tmp_path):
        path = tmp_path / "durations_only.ost"
        write_trace(self.minimal_trace(), str(path))
        loaded = read_trace(str(path))
        assert len(loaded.tasks) == 2
        assert len(loaded.accesses["task_id"]) == 0
        # Duration-based analyses still work...
        from repro.core import task_duration_histogram
        __, fractions = task_duration_histogram(loaded, bins=2)
        assert fractions.sum() == pytest.approx(1.0)
        # ...and locality analyses degrade to "nothing known".
        from repro.core import communication_matrix
        assert communication_matrix(loaded).sum() == 0

    def test_free_record_interleaving(self):
        """Records of different cores and kinds may interleave freely;
        only per-core timestamp order matters."""
        stream = io.BytesIO()
        writer = TraceWriter(stream)
        writer.topology(TopologyInfo(1, 2))
        writer.state_interval(1, 0, 0, 10)
        writer.task_execution(5, 0, 0, 0, 10)
        writer.state_interval(0, 0, 0, 10)
        writer.counter_description(CounterDescription(0, "c"))
        writer.counter_sample(0, 0, 5, 1.0)
        writer.state_interval(1, 1, 10, 30)
        stream.seek(0)
        trace = read_trace_stream(stream)
        assert len(trace.states) == 3
        assert trace.task_by_id(5).end == 10


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ost"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(FormatError):
            read_trace(str(path))

    def test_truncated_file(self, seidel_trace_small, tmp_path):
        path = tmp_path / "trunc.ost"
        write_trace(seidel_trace_small, str(path))
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(FormatError):
            read_trace(str(path))

    def test_unknown_tag(self, tmp_path):
        from repro.trace_format import MAGIC, VERSION
        import struct
        path = tmp_path / "unknown.ost"
        payload = struct.pack("<4sI", MAGIC, VERSION) + bytes([200])
        path.write_bytes(payload)
        with pytest.raises(FormatError):
            read_trace(str(path))

    def test_missing_topology(self, tmp_path):
        from repro.trace_format import MAGIC, VERSION
        import struct
        path = tmp_path / "empty.ost"
        path.write_bytes(struct.pack("<4sI", MAGIC, VERSION))
        with pytest.raises(FormatError):
            read_trace(str(path))

    def test_wrong_version(self, tmp_path):
        from repro.trace_format import MAGIC
        import struct
        path = tmp_path / "v99.ost"
        path.write_bytes(struct.pack("<4sI", MAGIC, 99))
        with pytest.raises(FormatError):
            read_trace(str(path))
