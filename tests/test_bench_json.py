"""Tests for the perf-history writer and the CI perf gate.

``tools/bench_json.py`` merges benchmark payloads into the sectioned
``BENCH_HISTORY.json`` under a file lock — two bench modules recording
concurrently must never lose each other's entries (the regression this
file pins: the old implementation re-read the file outside any lock,
so racing writers overwrote unrelated top-level keys).
``tools/perf_gate.py`` turns the history into an enforced floor.
"""

import json
import multiprocessing
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))
import bench_json  # noqa: E402
import perf_gate  # noqa: E402

sys.path.pop(0)


class TestRecord:
    def test_round_trip_single_entry(self, tmp_path):
        path = tmp_path / "history.json"
        bench_json.record("bench_a", {"speedup": 4.5}, section="pr9",
                          path=path)
        assert bench_json.load_history(path) \
            == {"pr9": {"bench_a": {"speedup": 4.5}}}

    def test_sections_and_names_are_preserved(self, tmp_path):
        path = tmp_path / "history.json"
        bench_json.record("a", {"x": 1}, section="pr4", path=path)
        bench_json.record("b", {"y": 2}, section="pr5", path=path)
        bench_json.record("c", {"z": 3}, section="pr4", path=path)
        assert bench_json.load_history(path) == {
            "pr4": {"a": {"x": 1}, "c": {"z": 3}},
            "pr5": {"b": {"y": 2}},
        }

    def test_same_key_overwrites_only_itself(self, tmp_path):
        path = tmp_path / "history.json"
        bench_json.record("a", {"x": 1}, section="pr4", path=path)
        bench_json.record("a", {"x": 9}, section="pr4", path=path)
        bench_json.record("a", {"x": 7}, section="pr5", path=path)
        assert bench_json.load_history(path) == {
            "pr4": {"a": {"x": 9}}, "pr5": {"a": {"x": 7}}}

    def test_corrupt_file_recovers(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text("{not json")
        bench_json.record("a", {"x": 1}, section="pr4", path=path)
        assert bench_json.load_history(path) == {"pr4": {"a": {"x": 1}}}

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        """Many processes hammering distinct (section, name) keys: the
        lock makes every entry survive."""
        path = tmp_path / "history.json"
        jobs = [("pr{}".format(index % 3), "bench_{}".format(index),
                 str(path)) for index in range(24)]
        try:
            with multiprocessing.get_context().Pool(4) as pool:
                pool.map(_record_one, jobs)
        except (OSError, PermissionError):
            pytest.skip("platform cannot spawn processes")
        history = bench_json.load_history(path)
        recorded = {(section, name) for section in history
                    for name in history[section]}
        assert recorded == {(section, name)
                            for section, name, __ in jobs}


def _record_one(job):
    """Worker body for the concurrency test (module-level: picklable)."""
    section, name, path = job
    bench_json.record(name, {"value": 1}, section=section, path=path)


def _history(sweep_speedup=4.0, reopen=100.0, frames=12.0,
             scale="default", ingest=120_000.0, first_frame=0.6,
             deep_zoom=0.2, analyze=900_000.0, service=20.0):
    """A fresh history covering every tracked metric."""
    return {
        "pr4": {
            "cache_reopen": {"scale": scale,
                             "reopen_speedup": reopen},
            "frame_loop": {"scale": scale, "frame_speedup": frames},
        },
        "pr5": {
            "sweep_scaling": {"scale": scale, "cpus": 4,
                              "pool_speedup": sweep_speedup},
        },
        "pr6": {
            "ingest_throughput": {"scale": scale, "gate": "always",
                                  "events_per_sec": ingest},
        },
        "pr8": {
            "first_frame_reopen": {"scale": scale,
                                   "first_frame_reopen_ms":
                                       first_frame},
            "deep_zoom_frame": {"scale": scale,
                                "deep_zoom_frame_ms": deep_zoom},
        },
        "pr9": {
            "analyze_throughput": {"scale": scale, "gate": "always",
                                   "events_per_sec": analyze},
        },
        "pr10": {
            "service_throughput": {"scale": scale, "cpus": 4,
                                   "pool_speedup": service},
        },
    }


class TestPerfGate:
    def test_passes_when_all_floors_hold(self):
        failures, lines = perf_gate.check_history(_history())
        assert failures == []
        assert len(lines) == len(perf_gate.TRACKED)

    def test_fails_on_injected_regression(self):
        failures, __ = perf_gate.check_history(_history(reopen=2.0))
        assert any("below the floor" in failure
                   for failure in failures)

    def test_fails_when_tracked_metric_missing(self):
        history = _history()
        del history["pr5"]
        failures, __ = perf_gate.check_history(history)
        assert any("missing" in failure for failure in failures)

    def test_small_scale_entries_are_skipped(self):
        failures, lines = perf_gate.check_history(
            _history(sweep_speedup=0.1, reopen=0.1, frames=0.1,
                     scale="small"))
        assert failures == []
        # Every scale-gated metric skips; the always-enforced bounds
        # (ingest + analyze floors, deep-zoom ceiling) still get
        # checked (and hold here).
        skipped = [line for line in lines if "skipped" in line]
        assert len(skipped) == len(perf_gate.TRACKED) - 3
        assert any("ingest_throughput" in line and "skipped" not in
                   line for line in lines)
        assert any("deep_zoom_frame" in line and "skipped" not in
                   line for line in lines)
        assert any("analyze_throughput" in line and "skipped" not in
                   line for line in lines)

    def test_gate_skip_marker_respected(self):
        history = _history(sweep_speedup=0.5)
        history["pr5"]["sweep_scaling"]["gate"] = "skip"
        history["pr5"]["sweep_scaling"]["gate_reason"] = "1 cpu"
        failures, __ = perf_gate.check_history(history)
        assert failures == []

    def test_always_metric_enforced_at_small_scale(self):
        """The 1-CPU-runner regression this PR pins: an
        always-enforced metric must not silently skip when the bench
        ran at the small scale."""
        failures, __ = perf_gate.check_history(
            _history(scale="small", ingest=500.0))
        assert any("ingest_throughput" in failure
                   and "below the floor" in failure
                   for failure in failures)

    def test_always_metric_ignores_skip_marker(self):
        history = _history(ingest=500.0)
        history["pr6"]["ingest_throughput"]["gate"] = "skip"
        history["pr6"]["ingest_throughput"]["gate_reason"] = "nope"
        failures, __ = perf_gate.check_history(history)
        assert any("ingest_throughput" in failure
                   for failure in failures)

    def test_always_metric_keeps_small_scale_baseline(self):
        """Always metrics are scale-independent by contract, so even
        a small-scale committed baseline stays a collapse reference."""
        fresh = _history(ingest=15_000.0)     # above the 10k floor
        baseline = _history(ingest=200_000.0, scale="small")
        failures, __ = perf_gate.check_history(fresh,
                                               baseline=baseline,
                                               slack=0.5)
        assert any("ingest_throughput" in failure
                   and "regressed below" in failure
                   for failure in failures)

    def test_ceiling_metric_fails_above_the_bound(self):
        """Latency metrics gate in the other direction: a value above
        the ceiling fails even though every floor metric holds."""
        failures, __ = perf_gate.check_history(_history(first_frame=2.5))
        assert any("first_frame_reopen" in failure
                   and "above the ceiling" in failure
                   for failure in failures)

    def test_ceiling_metric_passes_below_the_bound(self):
        failures, __ = perf_gate.check_history(_history(first_frame=0.9,
                                                        deep_zoom=0.9))
        assert failures == []

    def test_always_ceiling_enforced_at_small_scale(self):
        """The deep-zoom frame is O(width) regardless of trace size,
        so its ceiling holds even for a small-scale run."""
        failures, __ = perf_gate.check_history(
            _history(scale="small", deep_zoom=3.0))
        assert any("deep_zoom_frame" in failure
                   and "above the ceiling" in failure
                   for failure in failures)

    def test_ceiling_baseline_collapse_fails_even_below_ceiling(self):
        """With slack, a latency that balloons versus the committed
        baseline fails even while it still clears the ceiling."""
        fresh = _history(first_frame=0.9)     # under the 1.0 ceiling
        baseline = _history(first_frame=0.3)  # committed trajectory
        failures, __ = perf_gate.check_history(fresh,
                                               baseline=baseline,
                                               slack=0.5)
        assert any("first_frame_reopen" in failure
                   and "regressed above" in failure
                   for failure in failures)

    def test_baseline_collapse_fails_even_above_floor(self):
        fresh = _history(reopen=6.0)          # above the 5.0 floor
        baseline = _history(reopen=5000.0)    # committed trajectory
        failures, __ = perf_gate.check_history(fresh,
                                               baseline=baseline,
                                               slack=0.5)
        assert any("regressed below" in failure
                   for failure in failures)

    def test_small_scale_baselines_are_not_collapse_references(self):
        """A baseline recorded at small scale (or opted out) is not
        comparable to a default-scale fresh run — only the floor
        applies."""
        fresh = _history(reopen=120.0)
        baseline = _history(reopen=318.0, scale="small")
        failures, __ = perf_gate.check_history(fresh,
                                               baseline=baseline,
                                               slack=0.5)
        assert failures == []
        skipped = _history(reopen=5000.0)
        skipped["pr4"]["cache_reopen"]["gate"] = "skip"
        failures, __ = perf_gate.check_history(_history(reopen=6.0),
                                               baseline=skipped,
                                               slack=0.5)
        assert failures == []

    def test_committed_history_is_default_scale(self):
        """The committed baseline must stay a default-scale trajectory
        — a small-scale smoke run accidentally committed would make
        every collapse comparison meaningless."""
        history = json.loads((ROOT / "BENCH_HISTORY.json").read_text())
        for section in history.values():
            for entry in section.values():
                assert entry.get("scale") == "default"

    def test_committed_history_passes_the_gate(self):
        """The repository's own BENCH_HISTORY.json must satisfy the
        gate it ships (the perf-gate CI job diffs against it)."""
        history = json.loads((ROOT / "BENCH_HISTORY.json").read_text())
        failures, __ = perf_gate.check_history(history)
        assert failures == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_history()))
        assert perf_gate.main(["--history", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_history(sweep_speedup=1.0)))
        assert perf_gate.main(["--history", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
