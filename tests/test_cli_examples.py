"""Smoke tests for the command-line Aftermath example.

The CLI is the repository's downstream-user entry point; these tests
drive every subcommand against a real trace file.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.trace_format import write_trace

CLI_PATH = (pathlib.Path(__file__).parent.parent / "examples"
            / "aftermath_cli.py")


@pytest.fixture(scope="module")
def cli():
    spec = importlib.util.spec_from_file_location("aftermath_cli",
                                                  CLI_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def trace_path(seidel_trace_small, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.ost.gz"
    write_trace(seidel_trace_small, str(path))
    return str(path)


class TestSubcommands:
    def test_info(self, cli, trace_path, capsys):
        cli.main(["info", trace_path])
        out = capsys.readouterr().out
        assert "seidel_block" in out
        assert "machine:" in out

    def test_report(self, cli, trace_path, capsys):
        cli.main(["report", trace_path])
        assert "average parallelism" in capsys.readouterr().out

    def test_report_through_mapped_cache(self, cli, seidel_trace_small,
                                         tmp_path, capsys):
        from repro.trace_format import default_cache_path
        path = str(tmp_path / "cached.ost")
        write_trace(seidel_trace_small, path)
        cli.main(["report", path, "--cache"])
        first = capsys.readouterr().out
        assert pathlib.Path(default_cache_path(path)).exists()
        cli.main(["report", path, "--cache"])     # now served by mmap
        assert capsys.readouterr().out == first
        assert "average parallelism" in first

    def test_render_all_modes(self, cli, trace_path, tmp_path, capsys):
        for mode in ("state", "heatmap", "typemap", "numa-read",
                     "numa-write", "numa-heatmap"):
            out_path = tmp_path / "{}.ppm".format(mode)
            cli.main(["render", trace_path, str(out_path), "--mode",
                      mode, "--width", "128"])
            assert out_path.exists()
            assert out_path.read_bytes().startswith(b"P6")

    def test_render_window(self, cli, trace_path, tmp_path):
        out_path = tmp_path / "window.ppm"
        cli.main(["render", trace_path, str(out_path), "--start", "0",
                  "--end", "100000", "--width", "64"])
        assert out_path.exists()

    def test_parallelism(self, cli, trace_path, capsys):
        cli.main(["parallelism", trace_path])
        out = capsys.readouterr().out
        assert out.startswith("depth  tasks")

    def test_matrix(self, cli, trace_path, capsys):
        cli.main(["matrix", trace_path, "--kind", "read"])
        assert "0.0" in capsys.readouterr().out

    def test_export(self, cli, trace_path, tmp_path, capsys):
        out_path = tmp_path / "tasks.csv"
        cli.main(["export", trace_path, str(out_path), "--type",
                  "seidel_init"])
        lines = out_path.read_text().splitlines()
        assert len(lines) == 37    # header + 36 init tasks

    def test_dot(self, cli, trace_path, tmp_path):
        out_path = tmp_path / "graph.dot"
        cli.main(["dot", trace_path, str(out_path), "--task", "40",
                  "--hops", "1"])
        assert out_path.read_text().startswith("digraph")

    def test_anomalies(self, cli, trace_path, capsys):
        cli.main(["anomalies", trace_path])
        out = capsys.readouterr().out
        assert "severity" in out or "no anomalies" in out

    def test_profile(self, cli, trace_path, capsys):
        cli.main(["profile", trace_path])
        assert "seidel_block" in capsys.readouterr().out

    def test_critical_path(self, cli, trace_path, capsys):
        cli.main(["critical-path", trace_path, "--show-path"])
        out = capsys.readouterr().out
        assert "max speedup" in out
        assert "path:" in out

    def test_task_details(self, cli, trace_path, capsys,
                          seidel_trace_small):
        task_id = int(seidel_trace_small.tasks.columns["task_id"][0])
        cli.main(["task", trace_path, str(task_id)])
        assert "work function" in capsys.readouterr().out


@pytest.fixture(scope="module")
def suite_paths(tmp_path_factory):
    """Four tiny synthetic traces for the multi-trace subcommands."""
    from repro.analysis.experiments import run_suite, synthetic_sweep
    directory = str(tmp_path_factory.mktemp("cli-suite"))
    return run_suite(synthetic_sweep(4, events=2_000), directory,
                     workers=1)


class TestMultiTraceSubcommands:
    def test_sweep_prints_table_and_merge(self, cli, suite_paths,
                                          capsys):
        cli.main(["sweep", "--workers", "1"] + list(suite_paths))
        out = capsys.readouterr().out
        assert "synthetic_0" in out
        assert "best duration:" in out
        assert "merged across 4 traces" in out

    def test_sweep_writes_json_table(self, cli, suite_paths, tmp_path,
                                     capsys):
        out_path = tmp_path / "table.json"
        cli.main(["sweep", "--workers", "1", "--json", str(out_path)]
                 + list(suite_paths))
        payload = json.loads(out_path.read_text())
        assert len(payload["rows"]) == len(suite_paths)

    def test_compare_self_is_empty(self, cli, suite_paths, capsys):
        cli.main(["compare", suite_paths[0], suite_paths[0]])
        assert "no deviations" in capsys.readouterr().out

    def test_compare_reports_and_writes_json(self, cli, suite_paths,
                                             tmp_path, capsys):
        out_path = tmp_path / "diff.json"
        cli.main(["compare", suite_paths[0], suite_paths[1],
                  "--relative", "0", "--distribution", "0",
                  "--json", str(out_path)])
        out = capsys.readouterr().out
        assert "deviation(s) between" in out
        payload = json.loads(out_path.read_text())
        assert payload["empty"] is False

    def test_compare_strict_exits_nonzero(self, cli, suite_paths):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["compare", suite_paths[0], suite_paths[1],
                      "--relative", "0", "--distribution", "0",
                      "--strict"])
        assert excinfo.value.code == 1
