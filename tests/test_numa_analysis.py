"""Tests for per-task NUMA locality analysis (Section IV)."""

import numpy as np
import pytest

from repro.core import (average_remote_fraction, task_node_bytes,
                        task_predominant_nodes, task_remote_fractions)


class TestTaskNodeBytes:
    def test_shape(self, seidel_trace_small):
        trace = seidel_trace_small
        matrix = task_node_bytes(trace)
        assert matrix.shape == (len(trace.tasks),
                                trace.topology.num_nodes)

    def test_read_plus_write_equals_any(self, seidel_trace_small):
        trace = seidel_trace_small
        reads = task_node_bytes(trace, "read")
        writes = task_node_bytes(trace, "write")
        combined = task_node_bytes(trace, "any")
        assert np.allclose(reads + writes, combined)

    def test_totals_match_access_sizes(self, seidel_trace_small):
        trace = seidel_trace_small
        matrix = task_node_bytes(trace, "any")
        accesses = trace.accesses
        nodes = trace.nodes_of_addresses(accesses["address"])
        expected = accesses["size"][nodes >= 0].sum()
        assert matrix.sum() == pytest.approx(float(expected))


class TestPredominantNodes:
    def test_aligned_with_task_table(self, seidel_trace_small):
        trace = seidel_trace_small
        nodes = task_predominant_nodes(trace, "read")
        assert len(nodes) == len(trace.tasks)

    def test_init_tasks_have_no_read_node(self, seidel_trace_small):
        """Initialization tasks only write; their read map slot is -1
        (rendered as background in the NUMA read map)."""
        trace = seidel_trace_small
        nodes = task_predominant_nodes(trace, "read")
        type_ids = trace.tasks.columns["type_id"]
        init_type = next(info.type_id for info in trace.task_types
                         if info.name == "seidel_init")
        assert (nodes[type_ids == init_type] == -1).all()

    def test_write_nodes_valid(self, seidel_trace_small):
        trace = seidel_trace_small
        nodes = task_predominant_nodes(trace, "write")
        assert (nodes >= 0).all()
        assert (nodes < trace.topology.num_nodes).all()

    def test_predominant_matches_argmax(self, seidel_trace_small):
        trace = seidel_trace_small
        matrix = task_node_bytes(trace, "read")
        nodes = task_predominant_nodes(trace, "read")
        for row in range(0, len(nodes), 7):
            if matrix[row].sum() > 0:
                assert nodes[row] == matrix[row].argmax()


class TestRemoteFractions:
    def test_in_unit_interval(self, seidel_trace_small):
        fractions = task_remote_fractions(seidel_trace_small)
        assert (fractions >= 0).all()
        assert (fractions <= 1).all()

    def test_average_weighted_by_traffic(self, seidel_trace_small):
        trace = seidel_trace_small
        value = average_remote_fraction(trace)
        from repro.core import locality_fraction
        assert value == pytest.approx(1.0 - locality_fraction(trace))

    def test_interval_restriction_changes_population(
            self, seidel_trace_small):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        early = average_remote_fraction(trace, end=mid)
        assert 0.0 <= early <= 1.0


class TestOptimizedVsNonOptimized:
    """The Section IV claim at unit-test scale: the NUMA-aware run-time
    yields dramatically better locality than the NUMA-oblivious one."""

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.experiments import seidel_trace
        from repro.workloads import SeidelConfig
        config = SeidelConfig(blocks=8, block_dim=16, steps=4)
        from repro.runtime import Machine
        machine = Machine(4, 4)
        __, non_opt = seidel_trace(optimized=False, machine=machine,
                                   config=config, collect_rusage=False,
                                   seed=1)
        __, opt = seidel_trace(optimized=True, machine=machine,
                               config=config, collect_rusage=False,
                               seed=1)
        return non_opt, opt

    def test_locality_gap(self, pair):
        from repro.core import locality_fraction
        non_opt, opt = pair
        assert locality_fraction(opt) > 0.75
        assert locality_fraction(non_opt) < 0.5

    def test_comm_matrix_diagonal_dominance(self, pair):
        from repro.core import communication_matrix
        __, opt = pair
        matrix = communication_matrix(opt)
        assert np.trace(matrix) > 0.75

    def test_non_optimized_matrix_spread(self, pair):
        from repro.core import communication_matrix
        non_opt, __ = pair
        matrix = communication_matrix(non_opt)
        # Off-diagonal traffic dominates: every node talks to others.
        off_diagonal = matrix.sum() - np.trace(matrix)
        assert off_diagonal > 0.5
