"""Tests for counter attribution and correlation analysis (Section V)."""

import csv

import numpy as np
import pytest

from repro.core import (TaskTypeFilter, counter_increase_per_task,
                        counter_rate_per_task, duration_vs_counter_rate,
                        export_task_table, linear_regression)


class TestCounterAttribution:
    def test_increases_non_negative(self, kmeans_trace_small):
        __, increases = counter_increase_per_task(
            kmeans_trace_small, "branch_mispredictions")
        assert (increases >= 0).all()

    def test_pinned_increments_recovered(self, kmeans_trace_small):
        """The workload pins exact per-task misprediction counts; the
        attribution from boundary samples must recover them."""
        trace = kmeans_trace_small
        columns, increases = counter_increase_per_task(
            trace, "branch_mispredictions",
            TaskTypeFilter("kmeans_distance"))
        assert len(increases) > 0
        assert (increases > 0).all()

    def test_total_attribution_bounded_by_counter_total(
            self, kmeans_trace_small):
        trace = kmeans_trace_small
        __, increases = counter_increase_per_task(trace, "cache_misses")
        final_total = sum(
            trace.counter_samples(core,
                                  trace.counter_id("cache_misses"))[1][-1]
            for core in range(trace.num_cores)
            if len(trace.counter_samples(
                core, trace.counter_id("cache_misses"))[0]))
        assert increases.sum() <= final_total + 1e-6

    def test_rates_scale_with_per(self, kmeans_trace_small):
        __, per_k = counter_rate_per_task(kmeans_trace_small,
                                          "branch_mispredictions",
                                          per=1000)
        __, per_m = counter_rate_per_task(kmeans_trace_small,
                                          "branch_mispredictions",
                                          per=1_000_000)
        assert per_m == pytest.approx(per_k * 1000)


class TestLinearRegression:
    def test_perfect_line(self):
        x = np.arange(20, dtype=float)
        result = linear_regression(x, 3 * x + 5)
        assert result.slope == pytest.approx(3)
        assert result.intercept == pytest.approx(5)
        assert result.r_squared == pytest.approx(1.0)

    def test_noise_lowers_r_squared(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 200)
        clean = linear_regression(x, 2 * x)
        noisy = linear_regression(x, 2 * x + rng.normal(0, 5, 200))
        assert noisy.r_squared < clean.r_squared

    def test_predict(self):
        result = linear_regression([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert result.predict([3.0]) == pytest.approx([7.0])

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            linear_regression([1.0], [2.0])

    def test_describe_mentions_r_squared(self):
        result = linear_regression([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        assert "R^2" in result.describe()


class TestDurationVsCounter:
    def test_kmeans_duration_correlates_with_mispredictions(
            self, kmeans_trace_small):
        """The Section V anomaly: distance-task duration is linear in
        the branch misprediction rate."""
        rates, durations, regression = duration_vs_counter_rate(
            kmeans_trace_small, "branch_mispredictions",
            TaskTypeFilter("kmeans_distance"))
        assert regression.slope > 0
        assert regression.r_squared > 0.5
        assert len(rates) == len(durations)


class TestExport:
    def test_csv_roundtrip(self, kmeans_trace_small, tmp_path):
        path = tmp_path / "tasks.csv"
        rows = export_task_table(
            kmeans_trace_small, str(path),
            counters=("branch_mispredictions", "cache_misses"),
            task_filter=TaskTypeFilter("kmeans_distance"))
        with open(path) as handle:
            reader = csv.reader(handle)
            header = next(reader)
            body = list(reader)
        assert header == ["task_id", "type", "core", "start", "duration",
                          "branch_mispredictions", "cache_misses"]
        assert len(body) == rows
        assert all(row[1] == "kmeans_distance" for row in body)

    def test_export_all_tasks(self, kmeans_trace_small, tmp_path):
        path = tmp_path / "all.csv"
        rows = export_task_table(kmeans_trace_small, str(path))
        assert rows == len(kmeans_trace_small.tasks)
