"""Tests for critical-path, scheduling-delay and type-profile analyses."""

import pytest

from repro.core import (TaskGraph, critical_path_report,
                        describe_profile, reconstruct_task_graph,
                        scheduling_delays, task_type_profile)


class TestWeightedCriticalPath:
    def test_unweighted_equals_depth_chain(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(0, 2)
        length, path = graph.critical_path()
        assert length == 3          # three tasks of weight 1
        assert path == [0, 1, 2]

    def test_weights_can_reroute_path(self):
        graph = TaskGraph()
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        weights = {0: 1, 1: 100, 2: 1, 3: 1}
        length, path = graph.critical_path(weights)
        assert length == 102
        assert path == [0, 1, 3]

    def test_empty_graph(self):
        assert TaskGraph().critical_path() == (0, [])

    def test_isolated_node(self):
        graph = TaskGraph()
        graph.add_node(7)
        length, path = graph.critical_path({7: 42})
        assert (length, path) == (42, [7])


class TestCriticalPathReport:
    def test_bounds_hold(self, seidel_trace_small):
        report = critical_path_report(seidel_trace_small)
        assert 0 < report.length_cycles <= report.total_work_cycles
        # The makespan can never beat the critical path.
        assert report.makespan >= report.length_cycles
        assert report.max_speedup >= 1.0
        assert 0 < report.schedule_efficiency <= 1.0

    def test_path_is_a_dependence_chain(self, seidel_trace_small):
        trace = seidel_trace_small
        graph = reconstruct_task_graph(trace)
        report = critical_path_report(trace, graph)
        for src, dst in zip(report.path, report.path[1:]):
            assert dst in graph.successors[src]

    def test_serial_chain_efficiency(self, machine):
        from repro.runtime import (RandomStealScheduler, TraceCollector,
                                   run_program)
        from repro.workloads import build_chain
        program = build_chain(machine, length=6)
        collector = TraceCollector(machine)
        __, trace = run_program(program,
                                RandomStealScheduler(machine, seed=0),
                                collector=collector)
        report = critical_path_report(trace)
        # A chain is all critical path: max speedup 1.
        assert report.max_speedup == pytest.approx(1.0)
        assert report.schedule_efficiency > 0.9

    def test_describe(self, seidel_trace_small):
        text = critical_path_report(seidel_trace_small).describe()
        assert "max speedup" in text


class TestSchedulingDelays:
    def test_delays_non_negative(self, seidel_trace_small):
        delays = scheduling_delays(seidel_trace_small)
        assert len(delays) == len(seidel_trace_small.tasks)
        assert all(delay >= 0 for delay in delays.values())

    def test_serial_chain_has_small_delays(self, machine):
        from repro.runtime import (RandomStealScheduler, TraceCollector,
                                   run_program)
        from repro.workloads import build_chain
        program = build_chain(machine, length=5)
        collector = TraceCollector(machine)
        __, trace = run_program(program,
                                RandomStealScheduler(machine, seed=0),
                                collector=collector)
        delays = scheduling_delays(trace)
        # Each chain link starts shortly after its predecessor ends:
        # the delay is bounded by wake/steal latency, far below the
        # task duration.
        durations = [execution.duration
                     for execution in trace.task_executions()]
        for task_id, delay in delays.items():
            assert delay < min(durations)


class TestTypeProfile:
    def test_shares_sum_to_one(self, seidel_trace_small):
        entries = task_type_profile(seidel_trace_small)
        assert sum(entry.share_of_execution
                   for entry in entries) == pytest.approx(1.0)

    def test_sorted_by_total(self, seidel_trace_small):
        entries = task_type_profile(seidel_trace_small)
        totals = [entry.total_cycles for entry in entries]
        assert totals == sorted(totals, reverse=True)

    def test_counts_match_trace(self, seidel_trace_small):
        entries = task_type_profile(seidel_trace_small)
        assert sum(entry.tasks for entry in entries) \
            == len(seidel_trace_small.tasks)

    def test_describe_table(self, seidel_trace_small):
        text = describe_profile(task_type_profile(seidel_trace_small))
        assert "seidel_block" in text
        assert "share" in text
