"""Tests for task filters (Section II-A.3)."""

import numpy as np
import pytest

from repro.core import (AllTasks, CoreFilter, DurationFilter,
                        IntervalFilter, NumaNodeFilter, PredicateFilter,
                        TaskTypeFilter, filtered_tasks)


class TestTaskTypeFilter:
    def test_by_name(self, seidel_trace_small):
        trace = seidel_trace_small
        init = TaskTypeFilter("seidel_init").mask(trace)
        block = TaskTypeFilter("seidel_block").mask(trace)
        assert init.sum() == 36          # 6x6 blocks
        assert block.sum() == 36 * 4     # 4 steps
        assert not (init & block).any()

    def test_by_id(self, seidel_trace_small):
        trace = seidel_trace_small
        by_name = TaskTypeFilter("seidel_init").mask(trace)
        type_id = next(info.type_id for info in trace.task_types
                       if info.name == "seidel_init")
        by_id = TaskTypeFilter(type_id).mask(trace)
        assert (by_name == by_id).all()

    def test_unknown_name_raises(self, seidel_trace_small):
        with pytest.raises(KeyError):
            TaskTypeFilter("nonexistent").mask(seidel_trace_small)

    def test_multiple_types_union(self, seidel_trace_small):
        trace = seidel_trace_small
        both = TaskTypeFilter("seidel_init", "seidel_block").mask(trace)
        assert both.all()

    def test_needs_at_least_one_type(self):
        with pytest.raises(ValueError):
            TaskTypeFilter()


class TestDurationFilter:
    def test_range_selects_correctly(self, seidel_trace_small):
        trace = seidel_trace_small
        columns = trace.tasks.columns
        durations = columns["end"] - columns["start"]
        cutoff = int(np.median(durations))
        mask = DurationFilter(minimum=cutoff).mask(trace)
        assert (durations[mask] >= cutoff).all()
        assert (durations[~mask] < cutoff).all()

    def test_maximum_bound(self, seidel_trace_small):
        trace = seidel_trace_small
        columns = trace.tasks.columns
        durations = columns["end"] - columns["start"]
        mask = DurationFilter(maximum=int(durations.max()) - 1).mask(trace)
        assert mask.sum() < len(mask)


class TestIntervalFilter:
    def test_full_range_selects_all(self, seidel_trace_small):
        trace = seidel_trace_small
        mask = IntervalFilter(trace.begin, trace.end + 1).mask(trace)
        assert mask.all()

    def test_empty_window_selects_none(self, seidel_trace_small):
        trace = seidel_trace_small
        mask = IntervalFilter(trace.end + 10, trace.end + 20).mask(trace)
        assert not mask.any()

    def test_half_window(self, seidel_trace_small):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        mask = IntervalFilter(trace.begin, mid).mask(trace)
        columns = trace.tasks.columns
        assert (columns["start"][mask] < mid).all()


class TestCoreFilter:
    def test_selects_only_requested_cores(self, seidel_trace_small):
        trace = seidel_trace_small
        mask = CoreFilter([0, 1]).mask(trace)
        cores = trace.tasks.columns["core"][mask]
        assert set(np.unique(cores)) <= {0, 1}


class TestNumaNodeFilter:
    def test_write_mode(self, seidel_trace_small):
        trace = seidel_trace_small
        masks = [NumaNodeFilter([node], mode="write").mask(trace)
                 for node in range(trace.topology.num_nodes)]
        union = np.logical_or.reduce(masks)
        assert union.all()   # every task writes somewhere

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            NumaNodeFilter([0], mode="sideways")

    def test_read_vs_write_differ(self, seidel_trace_small):
        trace = seidel_trace_small
        read = NumaNodeFilter([0], mode="read").mask(trace)
        write = NumaNodeFilter([0], mode="write").mask(trace)
        assert read.shape == write.shape


class TestComposition:
    def test_and(self, seidel_trace_small):
        trace = seidel_trace_small
        combined = (TaskTypeFilter("seidel_block")
                    & DurationFilter(minimum=0)).mask(trace)
        assert combined.sum() == 36 * 4

    def test_or(self, seidel_trace_small):
        trace = seidel_trace_small
        either = (TaskTypeFilter("seidel_init")
                  | TaskTypeFilter("seidel_block")).mask(trace)
        assert either.all()

    def test_not(self, seidel_trace_small):
        trace = seidel_trace_small
        inverted = (~TaskTypeFilter("seidel_init")).mask(trace)
        assert inverted.sum() == 36 * 4

    def test_de_morgan(self, seidel_trace_small):
        trace = seidel_trace_small
        a = TaskTypeFilter("seidel_init")
        b = DurationFilter(minimum=10_000)
        left = (~(a & b)).mask(trace)
        right = ((~a) | (~b)).mask(trace)
        assert (left == right).all()


class TestHelpers:
    def test_all_tasks_neutral(self, seidel_trace_small):
        assert AllTasks().mask(seidel_trace_small).all()

    def test_count(self, seidel_trace_small):
        assert (TaskTypeFilter("seidel_init").count(seidel_trace_small)
                == 36)

    def test_predicate_filter(self, seidel_trace_small):
        trace = seidel_trace_small
        mask = PredicateFilter(
            lambda execution: execution.core == 0).mask(trace)
        assert (trace.tasks.columns["core"][mask] == 0).all()

    def test_filtered_tasks_none_returns_all(self, seidel_trace_small):
        columns = filtered_tasks(seidel_trace_small, None)
        assert len(columns["task_id"]) == len(seidel_trace_small.tasks)

    def test_filtered_tasks_applies_mask(self, seidel_trace_small):
        columns = filtered_tasks(seidel_trace_small,
                                 TaskTypeFilter("seidel_init"))
        assert len(columns["task_id"]) == 36
