"""Tests for the software framebuffer."""

import pytest

from repro.render import Framebuffer


class TestConstruction:
    def test_background_fill(self):
        fb = Framebuffer(10, 5, background=(1, 2, 3))
        assert (fb.pixels == (1, 2, 3)).all()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 5)


class TestFillRect:
    def test_basic_fill(self):
        fb = Framebuffer(10, 10)
        fb.fill_rect(2, 3, 4, 2, (9, 9, 9))
        assert (fb.pixels[3:5, 2:6] == 9).all()
        assert (fb.pixels[0, 0] == 0).all()
        assert fb.rect_calls == 1
        assert fb.pixels_drawn == 8

    def test_clipping(self):
        fb = Framebuffer(4, 4)
        fb.fill_rect(-2, -2, 10, 10, (5, 5, 5))
        assert (fb.pixels == 5).all()
        assert fb.pixels_drawn == 16

    def test_fully_outside_is_noop(self):
        fb = Framebuffer(4, 4)
        fb.fill_rect(10, 10, 2, 2, (5, 5, 5))
        assert fb.rect_calls == 0
        assert (fb.pixels == 0).all()


class TestLines:
    def test_vertical_line(self):
        fb = Framebuffer(5, 10)
        fb.vertical_line(2, 3, 7, (8, 8, 8))
        assert (fb.pixels[3:8, 2] == 8).all()
        assert fb.line_calls == 1

    def test_vertical_line_swapped_ends(self):
        fb = Framebuffer(5, 10)
        fb.vertical_line(1, 7, 3, (8, 8, 8))
        assert (fb.pixels[3:8, 1] == 8).all()

    def test_vertical_line_clipped(self):
        fb = Framebuffer(5, 5)
        fb.vertical_line(0, -10, 10, (1, 1, 1))
        assert (fb.pixels[:, 0] == 1).all()

    def test_diagonal_line_endpoints(self):
        fb = Framebuffer(10, 10)
        fb.draw_line(0, 0, 9, 9, (7, 7, 7))
        assert (fb.pixels[0, 0] == 7).all()
        assert (fb.pixels[9, 9] == 7).all()
        assert fb.pixels_drawn == 10

    def test_horizontal_line(self):
        fb = Framebuffer(10, 3)
        fb.draw_line(1, 1, 8, 1, (4, 4, 4))
        assert (fb.pixels[1, 1:9] == 4).all()


class TestAccounting:
    def test_reset_counters(self):
        fb = Framebuffer(5, 5)
        fb.fill_rect(0, 0, 2, 2, (1, 1, 1))
        fb.vertical_line(0, 0, 4, (1, 1, 1))
        assert fb.draw_calls == 2
        fb.reset_counters()
        assert fb.draw_calls == 0
        assert fb.pixels_drawn == 0


class TestExport:
    def test_ppm_header_and_size(self, tmp_path):
        fb = Framebuffer(7, 3)
        fb.fill_rect(0, 0, 7, 3, (10, 20, 30))
        path = tmp_path / "out.ppm"
        fb.save_ppm(str(path))
        data = path.read_bytes()
        assert data.startswith(b"P6\n7 3\n255\n")
        assert len(data) == len(b"P6\n7 3\n255\n") + 7 * 3 * 3

    def test_unique_colors(self):
        fb = Framebuffer(4, 4, background=(0, 0, 0))
        fb.fill_rect(0, 0, 2, 2, (1, 2, 3))
        assert fb.unique_colors() == {(0, 0, 0), (1, 2, 3)}

    def test_column(self):
        fb = Framebuffer(4, 4)
        fb.vertical_line(1, 0, 3, (9, 9, 9))
        assert (fb.column(1) == 9).all()
