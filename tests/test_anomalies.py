"""Tests for semi-automatic anomaly detection."""

import pytest

from repro.core import (TaskTypeFilter, TopologyInfo, TraceBuilder,
                        WorkerState, correlate_counters,
                        detect_duration_outliers, detect_idle_phases,
                        detect_load_imbalance, detect_locality_anomalies,
                        scan)


def synthetic_trace(num_cores=4, idle_band=True):
    """Two phases: busy everywhere, then (optionally) 3 of 4 cores idle."""
    builder = TraceBuilder(TopologyInfo(1, num_cores))
    for core in range(num_cores):
        builder.state_interval(core, int(WorkerState.RUNNING), 0, 1000)
        if idle_band and core > 0:
            builder.state_interval(core, int(WorkerState.IDLE), 1000,
                                   2000)
        else:
            builder.state_interval(core, int(WorkerState.RUNNING), 1000,
                                   2000)
    for index in range(num_cores * 2):
        builder.task_execution(index, 0, index % num_cores,
                               index * 10, index * 10 + 100)
    return builder.build()


class TestIdlePhases:
    def test_detects_planted_band(self):
        trace = synthetic_trace(idle_band=True)
        findings = detect_idle_phases(trace, num_intervals=20,
                                      threshold=0.5)
        assert len(findings) == 1
        anomaly = findings[0]
        assert anomaly.kind == "idle-phase"
        assert anomaly.start >= 900
        assert anomaly.severity == pytest.approx(0.75)

    def test_clean_trace_no_findings(self):
        trace = synthetic_trace(idle_band=False)
        assert detect_idle_phases(trace, num_intervals=20) == []

    def test_finds_seidel_bands(self, seidel_trace_small):
        findings = detect_idle_phases(seidel_trace_small,
                                      num_intervals=100, threshold=0.5)
        assert findings
        assert all(f.severity >= 0.5 for f in findings)

    def test_sorted_by_severity(self, seidel_trace_small):
        findings = detect_idle_phases(seidel_trace_small,
                                      num_intervals=100, threshold=0.3)
        severities = [f.severity for f in findings]
        assert severities == sorted(severities, reverse=True)


class TestDurationOutliers:
    def test_detects_seidel_init(self, seidel_trace_small):
        findings = detect_duration_outliers(seidel_trace_small,
                                            z_threshold=1.5)
        assert any(f.task_type == "seidel_init" for f in findings)

    def test_uniform_durations_clean(self):
        builder = TraceBuilder(TopologyInfo(1, 1))
        for index in range(50):
            builder.task_execution(index, 0, 0, index * 100,
                                   index * 100 + 100)
        assert detect_duration_outliers(builder.build()) == []

    def test_too_few_tasks_skipped(self):
        builder = TraceBuilder(TopologyInfo(1, 1))
        builder.task_execution(0, 0, 0, 0, 100)
        assert detect_duration_outliers(builder.build()) == []


class TestLocalityAnomalies:
    def test_non_optimized_flagged(self):
        from repro.experiments import seidel_trace
        __, trace = seidel_trace(optimized=False, scale="small", seed=4,
                                 collect_rusage=False)
        findings = detect_locality_anomalies(trace, num_intervals=10)
        assert findings
        assert findings[0].severity > 0.4

    def test_optimized_mostly_clean(self):
        from repro.experiments import seidel_trace
        __, trace = seidel_trace(optimized=True, scale="small", seed=4,
                                 collect_rusage=False)
        findings = detect_locality_anomalies(trace, num_intervals=10,
                                             threshold=0.4)
        # The NUMA-aware run keeps remote fractions low nearly always.
        assert len(findings) <= 2


class TestLoadImbalance:
    def test_detects_single_busy_core(self):
        builder = TraceBuilder(TopologyInfo(1, 4))
        builder.state_interval(0, int(WorkerState.RUNNING), 0, 10_000)
        builder.state_interval(1, int(WorkerState.RUNNING), 0, 500)
        trace = builder.build()
        findings = detect_load_imbalance(trace, num_intervals=2)
        assert findings
        assert findings[0].kind == "load-imbalance"

    def test_balanced_trace_clean(self):
        builder = TraceBuilder(TopologyInfo(1, 4))
        for core in range(4):
            builder.state_interval(core, int(WorkerState.RUNNING), 0,
                                   10_000)
        assert detect_load_imbalance(builder.build(),
                                     num_intervals=2) == []


class TestCounterCorrelation:
    def test_ranks_mispredictions_first(self, kmeans_trace_small):
        results = correlate_counters(
            kmeans_trace_small,
            task_filter=TaskTypeFilter("kmeans_distance"))
        assert results
        assert results[0].counter == "branch_mispredictions"
        assert results[0].r_squared > 0.5

    def test_scans_all_types_without_filter(self, kmeans_trace_small):
        results = correlate_counters(kmeans_trace_small)
        types = {entry.task_type for entry in results}
        assert "kmeans_distance" in types


class TestScan:
    def test_scan_returns_findings_for_seidel(self, seidel_trace_small):
        from repro.core import Anomaly
        findings = scan(seidel_trace_small)
        kinds = {f.kind for f in findings}
        assert "idle-phase" in kinds
        assert all(isinstance(f, Anomaly) for f in findings)

    def test_scan_handles_access_free_trace(self):
        trace = synthetic_trace()
        findings = scan(trace)
        assert isinstance(findings, list)
