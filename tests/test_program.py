"""Tests for task declaration and dependence derivation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import Machine, Program
from repro.runtime.task import Access


@pytest.fixture
def machine():
    return Machine(2, 2)


def make_program(machine):
    return Program(machine, name="unit")


class TestSpawn:
    def test_task_ids_are_dense(self, machine):
        program = make_program(machine)
        tasks = [program.spawn("work", 100) for __ in range(5)]
        assert [task.task_id for task in tasks] == [0, 1, 2, 3, 4]

    def test_task_types_are_interned(self, machine):
        program = make_program(machine)
        first = program.spawn("alpha", 1)
        second = program.spawn("alpha", 1)
        third = program.spawn("beta", 1)
        assert first.task_type is second.task_type
        assert third.task_type is not first.task_type
        assert len(program.task_types) == 2

    def test_type_addresses_distinct(self, machine):
        program = make_program(machine)
        program.spawn("a", 1)
        program.spawn("b", 1)
        addresses = [t.address for t in program.task_types]
        assert len(set(addresses)) == 2

    def test_spawn_after_finalize_rejected(self, machine):
        program = make_program(machine)
        program.spawn("a", 1)
        program.finalize()
        with pytest.raises(RuntimeError):
            program.spawn("b", 1)

    def test_negative_work_rejected(self, machine):
        program = make_program(machine)
        with pytest.raises(ValueError):
            program.spawn("a", -5)


class TestAccessValidation:
    def test_access_overrun_rejected(self, machine):
        program = make_program(machine)
        region = program.allocate(100)
        with pytest.raises(ValueError):
            program.spawn("a", 1, writes=[(region, 50, 51)])

    def test_access_overlap_predicate(self, machine):
        program = make_program(machine)
        region = program.allocate(1000)
        a = Access(region, 0, 100, is_write=True)
        b = Access(region, 50, 100, is_write=False)
        c = Access(region, 100, 100, is_write=False)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlap_requires_same_region(self, machine):
        program = make_program(machine)
        first = program.allocate(1000)
        second = program.allocate(1000)
        a = Access(first, 0, 100, is_write=True)
        b = Access(second, 0, 100, is_write=False)
        assert not a.overlaps(b)


class TestDependenceDerivation:
    def test_reader_depends_on_last_writer(self, machine):
        program = make_program(machine)
        region = program.allocate(1000)
        w1 = program.spawn("w", 1, writes=[(region, 0, 1000)])
        w2 = program.spawn("w", 1, reads=[(region, 0, 1000)],
                           writes=[(region, 0, 1000)])
        reader = program.spawn("r", 1, reads=[(region, 0, 1000)])
        program.finalize()
        assert reader.dependencies == [w2]
        assert w2.dependencies == [w1]

    def test_partial_cover_links_multiple_writers(self, machine):
        program = make_program(machine)
        region = program.allocate(1000)
        left = program.spawn("w", 1, writes=[(region, 0, 500)])
        right = program.spawn("w", 1, writes=[(region, 500, 500)])
        reader = program.spawn("r", 1, reads=[(region, 0, 1000)])
        program.finalize()
        assert set(reader.dependencies) == {left, right}

    def test_disjoint_ranges_no_dependence(self, machine):
        program = make_program(machine)
        region = program.allocate(1000)
        writer = program.spawn("w", 1, writes=[(region, 0, 100)])
        reader = program.spawn("r", 1, reads=[(region, 500, 100)])
        program.finalize()
        assert reader.dependencies == []
        assert writer.dependents == []

    def test_later_writer_invisible(self, machine):
        program = make_program(machine)
        region = program.allocate(100)
        producer = program.spawn("w", 1, writes=[(region, 0, 100)])
        reader = program.spawn("r", 1, reads=[(region, 0, 100)])
        program.spawn("w2", 1, writes=[(region, 0, 100)])
        program.finalize()
        assert reader.dependencies == [producer]

    def test_no_self_dependence(self, machine):
        program = make_program(machine)
        region = program.allocate(100)
        task = program.spawn("rw", 1, reads=[(region, 0, 100)],
                             writes=[(region, 0, 100)])
        program.finalize()
        assert task.dependencies == []

    def test_duplicate_edges_collapse(self, machine):
        program = make_program(machine)
        region = program.allocate(1000)
        writer = program.spawn("w", 1, writes=[(region, 0, 1000)])
        reader = program.spawn("r", 1, reads=[(region, 0, 400),
                                              (region, 600, 400)])
        program.finalize()
        assert reader.dependencies == [writer]
        assert writer.dependents == [reader]

    def test_finalize_idempotent(self, machine):
        program = make_program(machine)
        region = program.allocate(100)
        program.spawn("w", 1, writes=[(region, 0, 100)])
        reader = program.spawn("r", 1, reads=[(region, 0, 100)])
        program.finalize()
        program.finalize()
        assert len(reader.dependencies) == 1

    def test_roots_are_dependence_free(self, machine):
        program = make_program(machine)
        region = program.allocate(100)
        writer = program.spawn("w", 1, writes=[(region, 0, 100)])
        program.spawn("r", 1, reads=[(region, 0, 100)])
        program.finalize()
        assert program.roots() == [writer]

    def test_derived_graph_is_acyclic(self, machine):
        program = make_program(machine)
        region = program.allocate(100)
        program.spawn("w", 1, writes=[(region, 0, 100)])
        for __ in range(10):
            program.spawn(
                "w", 1, reads=[(region, 0, 100)],
                writes=[(region, 0, 100)])
        program.finalize()
        assert program.validate_acyclic()

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_dependences_always_point_backwards(self, seed):
        """Property: in declaration order, every dependence edge goes
        from an earlier task to a later one (acyclicity by construction)."""
        import random
        rng = random.Random(seed)
        machine = Machine(2, 2)
        program = make_program(machine)
        regions = [program.allocate(4096) for __ in range(5)]
        for __ in range(30):
            region = rng.choice(regions)
            offset = rng.randrange(0, 2048)
            size = rng.randrange(1, 2048)
            if rng.random() < 0.5:
                program.spawn("w", 1, writes=[(region, offset, size)])
            else:
                program.spawn("r", 1, reads=[(region, offset, size)])
        program.finalize()
        for task in program.tasks:
            for dependency in task.dependencies:
                assert dependency.task_id < task.task_id
