"""Tests for analysis sessions (navigation, persistence)."""

import pytest

from repro.core import Anomaly, WorkersInState, WorkerState
from repro.session import AnalysisSession


@pytest.fixture
def session(seidel_trace_small):
    return AnalysisSession(seidel_trace_small, width=400, height=128)


class TestNavigation:
    def test_initial_view_fits_trace(self, session, seidel_trace_small):
        assert session.view.start == seidel_trace_small.begin
        assert session.view.end == seidel_trace_small.end

    def test_zoom_and_back(self, session):
        original = session.view
        session.zoom(4.0)
        assert session.view.duration < original.duration
        restored = session.back()
        assert restored == original

    def test_back_forward_symmetry(self, session):
        session.zoom(2.0)
        zoomed = session.view
        session.back()
        assert session.forward() == zoomed

    def test_back_on_empty_history_is_noop(self, session):
        view = session.view
        assert session.back() == view

    def test_new_navigation_clears_future(self, session):
        session.zoom(2.0)
        session.back()
        session.scroll(0.5)
        # The forward stack was invalidated by the scroll.
        assert session.forward() == session.view

    def test_goto_and_reset(self, session, seidel_trace_small):
        session.goto(100, 200)
        assert (session.view.start, session.view.end) == (100, 200)
        session.reset_view()
        assert session.view.end == seidel_trace_small.end

    def test_goto_anomaly_frames_interval(self, session):
        anomaly = Anomaly(kind="idle-phase", severity=1.0, start=1000,
                          end=2000, description="test")
        session.goto_anomaly(anomaly, margin=0.5)
        assert session.view.start == 500
        assert session.view.end == 2500


class TestAnnotations:
    def test_annotate_at_view_center(self, session):
        session.goto(1000, 2000)
        note = session.annotate("interesting")
        assert note.timestamp == 1500
        assert session.visible_annotations() == [note]

    def test_annotations_out_of_view_hidden(self, session):
        session.annotate("early", timestamp=session.trace.begin)
        session.goto(session.trace.end - 10, session.trace.end)
        assert session.visible_annotations() == []


class TestPersistence:
    def test_save_load_roundtrip(self, session, seidel_trace_small,
                                 tmp_path):
        session.zoom(4.0)
        session.scroll(0.25)
        session.annotate("note one", author="alice")
        session.metrics.add(WorkersInState(int(WorkerState.IDLE)))
        path = tmp_path / "session.json"
        session.save(str(path))

        restored = AnalysisSession.load(str(path), seidel_trace_small)
        assert restored.view == session.view
        assert len(restored.annotations) == 1
        assert list(restored.annotations)[0].author == "alice"
        assert restored.metrics.names() == session.metrics.names()
        # History survives: back() restores the pre-scroll view.
        previous = restored.back()
        assert previous.duration == session.view.duration

    def test_load_rejects_unknown_version(self, seidel_trace_small,
                                          tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            AnalysisSession.load(str(path), seidel_trace_small)

    def test_loaded_session_still_navigates(self, session,
                                            seidel_trace_small,
                                            tmp_path):
        path = tmp_path / "s.json"
        session.save(str(path))
        restored = AnalysisSession.load(str(path), seidel_trace_small)
        restored.zoom(8.0)
        from repro.render import StateMode, render_timeline
        fb = render_timeline(seidel_trace_small, StateMode(),
                             restored.view)
        assert fb.pixels_drawn > 0
