"""Tests for analysis sessions (navigation, persistence)."""

import pytest

from repro.core import Anomaly, WorkersInState, WorkerState
from repro.session import AnalysisSession, MultiTraceSession


@pytest.fixture
def session(seidel_trace_small):
    return AnalysisSession(seidel_trace_small, width=400, height=128)


class TestNavigation:
    def test_initial_view_fits_trace(self, session, seidel_trace_small):
        assert session.view.start == seidel_trace_small.begin
        assert session.view.end == seidel_trace_small.end

    def test_zoom_and_back(self, session):
        original = session.view
        session.zoom(4.0)
        assert session.view.duration < original.duration
        restored = session.back()
        assert restored == original

    def test_back_forward_symmetry(self, session):
        session.zoom(2.0)
        zoomed = session.view
        session.back()
        assert session.forward() == zoomed

    def test_back_on_empty_history_is_noop(self, session):
        view = session.view
        assert session.back() == view

    def test_new_navigation_clears_future(self, session):
        session.zoom(2.0)
        session.back()
        session.scroll(0.5)
        # The forward stack was invalidated by the scroll.
        assert session.forward() == session.view

    def test_goto_and_reset(self, session, seidel_trace_small):
        session.goto(100, 200)
        assert (session.view.start, session.view.end) == (100, 200)
        session.reset_view()
        assert session.view.end == seidel_trace_small.end

    def test_goto_anomaly_frames_interval(self, session):
        anomaly = Anomaly(kind="idle-phase", severity=1.0, start=1000,
                          end=2000, description="test")
        session.goto_anomaly(anomaly, margin=0.5)
        assert session.view.start == 500
        assert session.view.end == 2500


class TestUniformSessionApi:
    """The navigation/statistics/render vocabulary the CLI and the
    trace service both speak (see `repro.service.api`)."""

    def test_navigate_dispatches_every_action(self, session):
        original = session.view
        assert session.navigate("zoom", factor=2.0) \
            == session.view
        assert session.view.duration < original.duration
        session.navigate("scroll", fraction=0.25)
        session.navigate("goto", start=100, end=900)
        assert (session.view.start, session.view.end) == (100, 900)
        session.navigate("back")
        session.navigate("forward")
        assert (session.view.start, session.view.end) == (100, 900)
        assert session.navigate("reset") == original

    def test_navigate_covers_the_declared_vocabulary(self, session):
        assert set(session.NAVIGATION_ACTIONS) \
            == {"zoom", "scroll", "goto", "back", "forward", "reset"}

    def test_navigate_rejects_unknown_action(self, session):
        with pytest.raises(ValueError, match="zoom"):
            session.navigate("teleport")

    def test_navigate_missing_parameter_is_key_error(self, session):
        with pytest.raises(KeyError):
            session.navigate("goto", start=100)

    def test_view_state_is_json_shaped(self, session):
        state = session.view_state()
        assert sorted(state) == ["end", "height", "start", "width"]
        assert all(type(value) is int for value in state.values())
        assert (state["width"], state["height"]) == (400, 128)

    def test_statistics_default_to_view_window(self, session):
        session.goto(1_000, 5_000)
        stats = session.statistics()
        assert (stats["start"], stats["end"]) == (1_000, 5_000)

    def test_statistics_explicit_window_and_state_names(self, session):
        stats = session.statistics(start=0, end=10_000)
        assert (stats["start"], stats["end"]) == (0, 10_000)
        assert stats["tasks"] >= 0
        names = {state.name.lower() for state in WorkerState}
        assert set(stats["state_cycles"]) <= names
        assert "running" in stats["state_cycles"]

    def test_render_frame_accepts_name_and_object(self, session):
        from repro.render import StateMode
        by_name = session.render_frame("state")
        by_object = session.render_frame(StateMode())
        assert (by_name.width, by_name.height) == (400, 128)
        assert (by_name.pixels == by_object.pixels).all()

    def test_render_frame_rejects_unknown_mode(self, session):
        with pytest.raises(ValueError, match="unknown timeline mode"):
            session.render_frame("sideways")


class TestAnnotations:
    def test_annotate_at_view_center(self, session):
        session.goto(1000, 2000)
        note = session.annotate("interesting")
        assert note.timestamp == 1500
        assert session.visible_annotations() == [note]

    def test_annotations_out_of_view_hidden(self, session):
        session.annotate("early", timestamp=session.trace.begin)
        session.goto(session.trace.end - 10, session.trace.end)
        assert session.visible_annotations() == []


class TestPersistence:
    def test_save_load_roundtrip(self, session, seidel_trace_small,
                                 tmp_path):
        session.zoom(4.0)
        session.scroll(0.25)
        session.annotate("note one", author="alice")
        session.metrics.add(WorkersInState(int(WorkerState.IDLE)))
        path = tmp_path / "session.json"
        session.save(str(path))

        restored = AnalysisSession.load(str(path), seidel_trace_small)
        assert restored.view == session.view
        assert len(restored.annotations) == 1
        assert list(restored.annotations)[0].author == "alice"
        assert restored.metrics.names() == session.metrics.names()
        # History survives: back() restores the pre-scroll view.
        previous = restored.back()
        assert previous.duration == session.view.duration

    def test_load_rejects_unknown_version(self, seidel_trace_small,
                                          tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            AnalysisSession.load(str(path), seidel_trace_small)

    def test_loaded_session_still_navigates(self, session,
                                            seidel_trace_small,
                                            tmp_path):
        path = tmp_path / "s.json"
        session.save(str(path))
        restored = AnalysisSession.load(str(path), seidel_trace_small)
        restored.zoom(8.0)
        from repro.render import StateMode, render_timeline
        fb = render_timeline(seidel_trace_small, StateMode(),
                             restored.view)
        assert fb.pixels_drawn > 0


class TestMultiTraceSession:
    @pytest.fixture
    def multi(self, seidel_trace_small, kmeans_trace_small):
        return MultiTraceSession([seidel_trace_small,
                                  kmeans_trace_small],
                                 names=["seidel", "kmeans"],
                                 width=256, height=64)

    def test_shared_axis_covers_union(self, multi, seidel_trace_small,
                                      kmeans_trace_small):
        assert multi.begin == min(seidel_trace_small.begin,
                                  kmeans_trace_small.begin)
        assert multi.end == max(seidel_trace_small.end,
                                kmeans_trace_small.end)
        assert multi.view.start == multi.begin
        assert multi.view.end == multi.end

    def test_back_never_desynchronizes_members(self, multi):
        """back() past the first navigation keeps every member on the
        shared window (the constructor's per-member fit views must not
        be reachable)."""
        for __ in range(3):
            multi.back()
        views = [(session.view.start, session.view.end)
                 for session in multi.sessions]
        assert views == [(multi.begin, multi.end)] * len(multi)
        multi.zoom(2.0)
        multi.back()
        multi.back()
        views = [(session.view.start, session.view.end)
                 for session in multi.sessions]
        assert len(set(views)) == 1

    def test_navigation_broadcasts_to_every_member(self, multi):
        multi.zoom(4.0)
        views = [session.view for session in multi.sessions]
        assert all(view.start == views[0].start
                   and view.end == views[0].end for view in views)
        multi.scroll(0.25)
        assert all(session.view == multi.sessions[0].view
                   for session in multi.sessions)
        multi.back()
        multi.reset_view()
        assert multi.view.start == multi.begin

    def test_compare_members_by_name(self, multi):
        from repro.analysis.experiments import EXACT
        report = multi.compare("seidel", "kmeans", tolerances=EXACT)
        assert not report.is_empty
        assert report.baseline == "seidel"
        assert multi.compare("seidel", "seidel",
                             tolerances=EXACT).is_empty

    def test_render_comparison_covers_all_members(self, multi):
        multi.zoom(2.0)
        fb = multi.render_comparison(lane_height=2)
        lanes = sum(2 * trace.num_cores for trace in multi.traces)
        assert fb.height == lanes + (len(multi) - 1) * 2
        assert fb.width == multi.view.width

    def test_open_from_files(self, seidel_trace_small, tmp_path):
        from repro.trace_format import write_trace
        paths = []
        for index in range(2):
            path = str(tmp_path / "member_{}.ost".format(index))
            write_trace(seidel_trace_small, path)
            paths.append(path)
        multi = MultiTraceSession.open(paths, width=128, height=32)
        assert multi.names == ["member_0", "member_1"]
        assert multi.compare(0, 1).is_empty

    def test_rejects_empty_and_mismatched_names(self,
                                                seidel_trace_small):
        with pytest.raises(ValueError):
            MultiTraceSession([])
        with pytest.raises(ValueError):
            MultiTraceSession([seidel_trace_small], names=["a", "b"])

    def test_compare_rejects_out_of_range_members(self,
                                                  seidel_trace_small):
        single = MultiTraceSession([seidel_trace_small])
        with pytest.raises(ValueError):
            single.compare()             # default candidate=1 absent
        with pytest.raises(ValueError):
            single.compare(-1, 0)
