"""Tests for the event data model and the color palettes."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (STATE_NAMES, StateInterval, TaskExecution,
                        TopologyInfo, WorkerState)
from repro.render import (heatmap_shades, numa_heat_color, numa_palette,
                          state_color, type_palette)
from repro.render.colors import heatmap_color


class TestEventModel:
    def test_every_state_has_a_name(self):
        for state in WorkerState:
            assert state in STATE_NAMES

    def test_interval_duration(self):
        interval = StateInterval(core=0, state=0, start=10, end=35)
        assert interval.duration == 25

    def test_task_execution_duration(self):
        execution = TaskExecution(task_id=1, type_id=0, core=2,
                                  start=100, end=150)
        assert execution.duration == 50

    def test_topology_core_mapping(self):
        topology = TopologyInfo(num_nodes=3, cores_per_node=4)
        assert topology.num_cores == 12
        assert topology.node_of_core(0) == 0
        assert topology.node_of_core(4) == 1
        assert topology.node_of_core(11) == 2

    def test_events_are_hashable(self):
        first = StateInterval(0, 0, 0, 10)
        second = StateInterval(0, 0, 0, 10)
        assert first == second
        assert hash(first) == hash(second)


class TestPalettes:
    def test_each_state_distinct_color(self):
        colors = {state_color(state) for state in WorkerState}
        assert len(colors) == len(WorkerState)

    def test_unknown_state_has_fallback(self):
        assert state_color(999) == (200, 200, 200)

    def test_heatmap_shades_darken(self):
        shades = heatmap_shades(10)
        greens = [shade[1] for shade in shades]
        assert greens == sorted(greens, reverse=True)

    def test_heatmap_needs_two_shades(self):
        with pytest.raises(ValueError):
            heatmap_shades(1)

    @given(fraction=st.floats(min_value=-2, max_value=3,
                              allow_nan=False))
    def test_heatmap_color_always_valid(self, fraction):
        shades = heatmap_shades(10)
        color = heatmap_color(fraction, shades)
        assert color in shades

    @given(count=st.integers(min_value=1, max_value=64))
    def test_palettes_are_distinct(self, count):
        for palette in (type_palette(count), numa_palette(count)):
            assert len(palette) == count
            assert len(set(palette)) == count

    @given(fraction=st.floats(min_value=0, max_value=1,
                              allow_nan=False))
    def test_numa_heat_gradient_in_rgb_range(self, fraction):
        color = numa_heat_color(fraction)
        assert all(0 <= channel <= 255 for channel in color)

    def test_numa_heat_endpoints(self):
        blue = numa_heat_color(0.0)
        pink = numa_heat_color(1.0)
        assert blue[2] > blue[0]      # blue end: B dominates
        assert pink[0] > pink[2]      # pink end: R dominates
