"""Cross-format conformance harness: property-based round trips
through every registered trace source, plus registry dispatch.

The contract under test is the PR's tentpole: any trace written to a
foreign format and ingested back through the registry must preserve
everything the format can express.  Chrome trace-event JSON is
self-describing here (an ``otherData.repro`` block), so its round trip
is *exact* (:func:`traces_equal`).  Paraver is documented-lossy in
exactly three ways — memory accesses and data regions have no record
type, and task-type address/source metadata has no PCF field — so its
round trip is asserted column-exact on every event kind after
normalizing that metadata away.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import state_time_summary, traces_equal
from repro.trace_format import (FormatError, detect_source,
                                export_chrome, export_paraver,
                                import_chrome, import_paraver,
                                ingest_trace, registered_sources,
                                write_trace)
from trace_gen import make_random_trace

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.function_scoped_fixture])

EVENT_TABLES = ("states", "tasks", "discrete")


def strip_paraver_lossy(trace):
    """A copy of ``trace``'s metadata normalized to what the Paraver
    dialect can express, for exact comparison against an import."""
    return {
        "task_types": [replace(info, address=0, source_file="",
                               source_line=0)
                       for info in trace.task_types],
        "counters": list(trace.counter_descriptions),
        "shape": (trace.topology.num_nodes,
                  trace.topology.cores_per_node),
    }


def assert_event_columns_equal(expected, actual):
    for table in EVENT_TABLES:
        expected_store = getattr(expected, table)
        actual_store = getattr(actual, table)
        assert len(actual_store) == len(expected_store), table
        for name, column in expected_store.columns.items():
            assert np.array_equal(actual_store.columns[name],
                                  column), (table, name)
    for name, column in expected.comm.items():
        assert np.array_equal(actual.comm[name], column), ("comm", name)
    assert sorted(actual.counter_series) == \
        sorted(expected.counter_series)
    for key, (times, values) in expected.counter_series.items():
        actual_times, actual_values = actual.counter_series[key]
        assert np.array_equal(times, actual_times)
        assert np.array_equal(values, actual_values)


class TestParaverRoundTrip:
    @given(seed=st.integers(0, 200), sparse=st.booleans())
    @SLOW
    def test_event_data_survives(self, seed, sparse, tmp_path):
        trace = make_random_trace(seed, sparse=sparse)
        path = tmp_path / "rt_{}.prv".format(seed)
        export_paraver(trace, str(path))
        back = import_paraver(str(path))
        assert_event_columns_equal(trace, back)
        expected = strip_paraver_lossy(trace)
        assert back.task_types == expected["task_types"]
        assert back.counter_descriptions == expected["counters"]
        assert (back.topology.num_nodes,
                back.topology.cores_per_node) == expected["shape"]
        if len(trace.states):
            assert (back.begin, back.end) == (trace.begin, trace.end)
            assert state_time_summary(back) == state_time_summary(trace)

    @given(seed=st.integers(0, 200))
    @SLOW
    def test_second_generation_identical(self, seed, tmp_path):
        """prv -> native -> prv is a fixed point: the second export
        must be byte-identical to the first (ingestion is stable)."""
        trace = make_random_trace(seed, events_per_core=15)
        first = tmp_path / "gen1.prv"
        second = tmp_path / "gen2.prv"
        export_paraver(trace, str(first))
        export_paraver(import_paraver(str(first)), str(second))
        assert first.read_text() == second.read_text()


class TestChromeRoundTrip:
    @given(seed=st.integers(0, 200), sparse=st.booleans())
    @SLOW
    def test_exact_round_trip(self, seed, sparse, tmp_path):
        trace = make_random_trace(seed, sparse=sparse)
        path = tmp_path / "rt_{}.json".format(seed)
        export_chrome(trace, str(path))
        assert traces_equal(import_chrome(str(path)), trace)

    @given(seed=st.integers(0, 200))
    @SLOW
    def test_gzip_variant(self, seed, tmp_path):
        trace = make_random_trace(seed, events_per_core=15)
        path = tmp_path / "rt.json.gz"
        export_chrome(trace, str(path))
        assert traces_equal(import_chrome(str(path)), trace)

    def test_foreign_file_without_metadata(self, tmp_path):
        """A Chrome file from another tool (no ``otherData.repro``)
        still ingests: µs timestamps scale to cycles, (pid, tid)
        pairs become cores, B/E pairs become tasks."""
        import json
        path = tmp_path / "foreign.json"
        events = [
            {"ph": "X", "ts": 10.0, "dur": 5.0, "pid": 1, "tid": 1,
             "name": "work"},
            {"ph": "B", "ts": 20.0, "pid": 1, "tid": 2, "name": "load"},
            {"ph": "E", "ts": 29.0, "pid": 1, "tid": 2, "name": "load"},
            {"ph": "C", "ts": 12.0, "pid": 1, "tid": 1, "name": "mem",
             "args": {"value": 7}},
            {"ph": "i", "ts": 15.0, "pid": 1, "tid": 1, "name": "mark"},
        ]
        path.write_text(json.dumps({"traceEvents": events}))
        trace = ingest_trace(str(path))
        assert len(trace.tasks) == 2
        assert trace.num_cores == 2
        assert [info.name for info in trace.task_types] == \
            ["work", "load"]
        assert len(trace.counter_series) == 1

    def test_bare_array_document(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('[{"ph": "X", "ts": 1.0, "dur": 2.0, '
                        '"pid": 0, "tid": 0, "name": "t"}]')
        assert len(import_chrome(str(path)).tasks) == 1


class TestRegistryDispatch:
    def test_sources_registered_in_priority_order(self):
        assert [source.name for source in registered_sources()] == \
            ["native", "paraver", "chrome"]

    @pytest.mark.parametrize("writer,suffix,expected", [
        (write_trace, ".ost", "native"),
        (export_paraver, ".prv", "paraver"),
        (export_chrome, ".json", "chrome"),
    ])
    def test_detects_each_format(self, writer, suffix, expected,
                                 tmp_path):
        trace = make_random_trace(0, events_per_core=5)
        path = tmp_path / ("probe" + suffix)
        writer(trace, str(path))
        assert detect_source(str(path)).name == expected

    def test_detection_reads_content_not_suffix(self, tmp_path):
        """A Paraver file with a misleading suffix still dispatches by
        its header, not its name."""
        trace = make_random_trace(1, events_per_core=5)
        honest = tmp_path / "t.prv"
        export_paraver(trace, str(honest))
        lying = tmp_path / "t.ost"
        lying.write_text(honest.read_text())
        assert detect_source(str(lying)).name == "paraver"

    def test_ingest_equivalent_to_direct_import(self, tmp_path):
        trace = make_random_trace(2, events_per_core=10)
        path = tmp_path / "t.json"
        export_chrome(trace, str(path))
        assert traces_equal(ingest_trace(str(path)),
                            import_chrome(str(path)))

    def test_forced_source_overrides_sniffing(self, tmp_path):
        trace = make_random_trace(3, events_per_core=5)
        path = tmp_path / "t.json"
        export_chrome(trace, str(path))
        assert traces_equal(ingest_trace(str(path), source="chrome"),
                            trace)

    def test_unknown_forced_source_raises(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("[]")
        with pytest.raises(FormatError):
            ingest_trace(str(path), source="vampir")

    @pytest.mark.parametrize("body", [
        b"",
        b"garbage that is no trace at all\n",
        b"\x00\x01\x02\x03 binary junk",
        b"{\"events\": []}",          # JSON but not a Chrome trace
    ])
    def test_unrecognized_content_raises(self, body, tmp_path):
        path = tmp_path / "mystery.dat"
        path.write_bytes(body)
        with pytest.raises(FormatError):
            ingest_trace(str(path))

    def test_missing_file_raises_format_error(self, tmp_path):
        """Unreadable paths surface as FormatError too, so callers
        have a single exception type to catch around ingestion."""
        with pytest.raises(FormatError):
            ingest_trace(str(tmp_path / "absent.ost"))

    def test_columnar_ingest(self, tmp_path):
        from repro.core.columnar import ColumnarTrace
        trace = make_random_trace(4, events_per_core=10)
        path = tmp_path / "t.prv"
        export_paraver(trace, str(path))
        columnar = ingest_trace(str(path), columnar=True)
        assert isinstance(columnar, ColumnarTrace)
        assert len(columnar.tasks) == len(trace.tasks)

    def test_malformed_chrome_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"traceEvents": [')
        with pytest.raises(FormatError):
            ingest_trace(str(path))


class TestAnalysisParity:
    """The acceptance bar of the tentpole: statistics, anomaly scans
    and rendered timelines must be identical on ingested traces."""

    def test_render_identical_on_every_format(self, tmp_path):
        from repro.render import (StateMode, TimelineView,
                                  render_timeline)
        trace = make_random_trace(7)
        view = TimelineView.fit(trace, 320, 4 * trace.num_cores)
        reference = render_timeline(trace, StateMode(), view).pixels
        for export, suffix in ((export_paraver, ".prv"),
                               (export_chrome, ".json")):
            path = tmp_path / ("render" + suffix)
            export(trace, str(path))
            pixels = render_timeline(ingest_trace(str(path)),
                                     StateMode(), view).pixels
            assert np.array_equal(pixels, reference), suffix

    def test_chrome_statistics_and_scan_identical(self, tmp_path):
        from repro.core import interval_report, scan
        trace = make_random_trace(8)
        path = tmp_path / "parity.json"
        export_chrome(trace, str(path))
        back = ingest_trace(str(path))
        assert interval_report(back).describe() == \
            interval_report(trace).describe()
        assert [(a.kind, a.start, a.end, a.severity)
                for a in scan(back)] == \
            [(a.kind, a.start, a.end, a.severity)
             for a in scan(trace)]

    def test_paraver_scan_identical_without_accesses(self, tmp_path):
        """On a trace without memory accesses (the one record kind
        Paraver cannot carry) the anomaly scan matches exactly."""
        from repro.analysis.experiments import wavefront_trace
        from repro.core import scan
        __, trace = wavefront_trace(scale="small", seed=0,
                                    collect_accesses=False)
        path = tmp_path / "parity.prv"
        export_paraver(trace, str(path))
        back = ingest_trace(str(path))
        assert [(a.kind, a.start, a.end, a.severity, a.description)
                for a in scan(back)] == \
            [(a.kind, a.start, a.end, a.severity, a.description)
             for a in scan(trace)]
