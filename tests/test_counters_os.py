"""Tests for the hardware counter and OS models."""

import pytest

from repro.runtime import (CounterModelConfig, HardwareCounters, Machine,
                           OsModel, OsModelConfig, Program)
from repro.runtime.counters import BRANCH_MISPREDICTIONS, CACHE_MISSES


def make_task(counters=None, work=10_000):
    machine = Machine(1, 1)
    program = Program(machine)
    return program.spawn("t", work, counters=counters)


class TestHardwareCounters:
    def test_counters_start_at_zero(self):
        counters = HardwareCounters(4)
        for core in range(4):
            assert counters.value(core, CACHE_MISSES) == 0.0
            assert counters.value(core, BRANCH_MISPREDICTIONS) == 0.0

    def test_charge_task_advances_only_that_core(self):
        counters = HardwareCounters(2)
        counters.charge_task(0, make_task(), local_bytes=6400,
                             remote_bytes=0)
        assert counters.value(0, CACHE_MISSES) > 0
        assert counters.value(1, CACHE_MISSES) == 0

    def test_remote_bytes_miss_more(self):
        config = CounterModelConfig()
        local = HardwareCounters(1, config)
        remote = HardwareCounters(1, config)
        local.charge_task(0, make_task(), local_bytes=64_000,
                          remote_bytes=0)
        remote.charge_task(0, make_task(), local_bytes=0,
                           remote_bytes=64_000)
        assert (remote.value(0, CACHE_MISSES)
                > local.value(0, CACHE_MISSES))

    def test_pinned_counter_value_wins(self):
        counters = HardwareCounters(1)
        task = make_task(counters={BRANCH_MISPREDICTIONS: 777})
        counters.charge_task(0, task, local_bytes=1000, remote_bytes=0)
        assert counters.value(0, BRANCH_MISPREDICTIONS) == 777

    def test_default_branch_rate_proportional_to_work(self):
        counters = HardwareCounters(1)
        counters.charge_task(0, make_task(work=1_000_000),
                             local_bytes=0, remote_bytes=0)
        small = HardwareCounters(1)
        small.charge_task(0, make_task(work=1_000), local_bytes=0,
                          remote_bytes=0)
        assert (counters.value(0, BRANCH_MISPREDICTIONS)
                > small.value(0, BRANCH_MISPREDICTIONS))

    def test_snapshot_is_a_copy(self):
        counters = HardwareCounters(1)
        snapshot = counters.snapshot(0)
        snapshot[CACHE_MISSES] = 1e9
        assert counters.value(0, CACHE_MISSES) == 0.0


class TestOsModel:
    def test_fault_charges_system_time_and_rss(self):
        model = OsModel(2, OsModelConfig(fault_system_us=2.0,
                                         fault_cycles=1000))
        stall = model.charge_faults(1, 10)
        assert stall == 10_000
        assert model.system_time_us(1) == pytest.approx(20.0)
        assert model.resident_kb(1) == pytest.approx(40.0)  # 10 pages
        assert model.system_time_us(0) == 0.0

    def test_zero_faults_free(self):
        model = OsModel(1)
        assert model.charge_faults(0, 0) == 0
        assert model.system_time_us(0) == 0.0

    def test_total_resident_sums_workers(self):
        model = OsModel(3)
        model.charge_faults(0, 1)
        model.charge_faults(2, 2)
        assert model.total_resident_kb() == pytest.approx(12.0)

    def test_background_time_accumulates(self):
        model = OsModel(1, OsModelConfig(
            syscall_system_us_per_gcycle=1000.0))
        model.charge_background(0, 500_000_000)
        assert model.system_time_us(0) == pytest.approx(500.0)
        # A second call for the same instant adds nothing.
        model.charge_background(0, 500_000_000)
        assert model.system_time_us(0) == pytest.approx(500.0)
