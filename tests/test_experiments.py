"""Tests for the experiment harness and the paper's headline claims at
test scale."""

import pytest

from repro import experiments
from repro.core import locality_fraction
from repro.runtime import (FirstTouch, NumaAwareScheduler, RandomPlacement,
                           RandomStealScheduler)


class TestPresets:
    def test_known_presets(self):
        for name in ("small", "default", "paper"):
            assert experiments.preset(name).name == name

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            experiments.preset("galactic")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert experiments.preset().name == "small"

    def test_paper_preset_matches_paper_machines(self):
        paper = experiments.preset("paper")
        assert paper.seidel_machine_nodes == 24     # SGI UV2000
        assert paper.kmeans_machine_nodes == 8      # AMD Opteron
        assert paper.kmeans_points == 40_960_000


class TestRuntimePair:
    def test_optimized_configuration(self):
        machine = experiments.kmeans_machine("small")
        memory, scheduler = experiments.runtime_pair(machine, True)
        assert isinstance(memory.policy, FirstTouch)
        assert isinstance(scheduler, NumaAwareScheduler)

    def test_non_optimized_configuration(self):
        machine = experiments.kmeans_machine("small")
        memory, scheduler = experiments.runtime_pair(machine, False)
        assert isinstance(memory.policy, RandomPlacement)
        assert isinstance(scheduler, RandomStealScheduler)


class TestSeidelClaims:
    """Section IV at small scale: optimized wins, and by a clear margin."""

    @pytest.fixture(scope="class")
    def runs(self):
        non_opt = experiments.seidel_trace(optimized=False, scale="small",
                                           collect_rusage=False, seed=2)
        opt = experiments.seidel_trace(optimized=True, scale="small",
                                       collect_rusage=False, seed=2)
        return non_opt, opt

    def test_optimized_faster(self, runs):
        (non_result, __), (opt_result, __t) = runs
        assert non_result.makespan > opt_result.makespan * 1.3

    def test_locality_gap(self, runs):
        (__, non_trace), (__r, opt_trace) = runs
        assert locality_fraction(opt_trace) > 0.8
        assert locality_fraction(non_trace) < 0.5

    def test_both_execute_same_tasks(self, runs):
        (non_result, __), (opt_result, __t) = runs
        assert non_result.tasks_executed == opt_result.tasks_executed


class TestKmeansClaims:
    def test_block_size_u_shape(self):
        """Fig. 12 at small scale: both extremes lose to the middle."""
        machine = experiments.kmeans_machine("small")
        n = 128_000
        huge = experiments.kmeans_makespan(n // 16, machine=machine,
                                           iterations=3, num_points=n)
        good = experiments.kmeans_makespan(n // 256, machine=machine,
                                           iterations=3, num_points=n)
        tiny = experiments.kmeans_makespan(n // 4096, machine=machine,
                                           iterations=3, num_points=n)
        assert huge > good
        assert tiny > good

    def test_branch_fix_reduces_mean_and_spread(self):
        from repro.core import TaskTypeFilter, task_duration_stats
        filt = TaskTypeFilter("kmeans_distance")
        __, baseline = experiments.kmeans_trace(scale="small",
                                                block_size=4000, seed=1)
        __, fixed = experiments.kmeans_trace(scale="small",
                                             block_size=4000,
                                             optimize_branches=True,
                                             seed=1)
        base_mean, base_std = task_duration_stats(baseline, filt)
        fix_mean, fix_std = task_duration_stats(fixed, filt)
        assert fix_mean < base_mean
        assert fix_std < base_std / 2

    def test_correlation_exists_at_small_scale(self):
        from repro.core import TaskTypeFilter, duration_vs_counter_rate
        __, trace = experiments.kmeans_trace(scale="small",
                                             block_size=4000, seed=1)
        __, __d, regression = duration_vs_counter_rate(
            trace, "branch_mispredictions",
            TaskTypeFilter("kmeans_distance"))
        assert regression.r_squared > 0.5
        assert regression.slope > 0


class TestRusageCollection:
    def test_rusage_counters_optional(self):
        __, with_rusage = experiments.seidel_trace(scale="small",
                                                   collect_rusage=True)
        __, without = experiments.seidel_trace(scale="small",
                                               collect_rusage=False)
        names = lambda trace: {d.name
                               for d in trace.counter_descriptions}
        assert "os_system_time_us" in names(with_rusage)
        assert "os_system_time_us" not in names(without)

    def test_access_collection_optional(self):
        __, trace = experiments.seidel_trace(scale="small",
                                             collect_accesses=False,
                                             collect_rusage=False)
        assert len(trace.accesses["task_id"]) == 0
        # Trace still renders and reports durations.
        from repro.render import StateMode, TimelineView, render_timeline
        fb = render_timeline(trace, StateMode(),
                             TimelineView.fit(trace, 100, 50))
        assert len(fb.unique_colors()) > 1
