"""Tests for binary-search interval indexing (Section VI-B-c)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import interval_slice, point_slice, states_in_interval, \
    tasks_in_interval


def brute_force_overlap(starts, ends, lo, hi):
    return [index for index in range(len(starts))
            if starts[index] < hi and ends[index] > lo]


@st.composite
def sorted_intervals(draw):
    """Non-overlapping sorted intervals, like one core's state array."""
    count = draw(st.integers(min_value=0, max_value=30))
    cursor = 0
    starts, ends = [], []
    for __ in range(count):
        cursor += draw(st.integers(min_value=0, max_value=20))
        duration = draw(st.integers(min_value=1, max_value=50))
        starts.append(cursor)
        ends.append(cursor + duration)
        cursor += duration
    return (np.asarray(starts, dtype=np.int64),
            np.asarray(ends, dtype=np.int64))


class TestIntervalSlice:
    def test_empty_array(self):
        empty = np.empty(0, dtype=np.int64)
        result = interval_slice(empty, empty, 0, 100)
        assert result.start == result.stop == 0

    def test_basic_overlap(self):
        starts = np.asarray([0, 10, 20, 30])
        ends = np.asarray([5, 15, 25, 35])
        selection = interval_slice(starts, ends, 12, 22)
        assert selection == slice(1, 3)

    def test_query_between_intervals(self):
        starts = np.asarray([0, 100])
        ends = np.asarray([10, 110])
        selection = interval_slice(starts, ends, 50, 60)
        assert selection.start == selection.stop

    def test_touching_boundaries_excluded(self):
        """Intervals are half-open: end == query_start is no overlap."""
        starts = np.asarray([0, 10])
        ends = np.asarray([10, 20])
        selection = interval_slice(starts, ends, 10, 20)
        assert selection == slice(1, 2)

    @given(intervals=sorted_intervals(),
           lo=st.integers(min_value=0, max_value=2000),
           span=st.integers(min_value=1, max_value=500))
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, intervals, lo, span):
        starts, ends = intervals
        selection = interval_slice(starts, ends, lo, lo + span)
        expected = brute_force_overlap(starts, ends, lo, lo + span)
        assert list(range(selection.start, selection.stop)) == expected


class TestPointSlice:
    @given(timestamps=st.lists(st.integers(min_value=0, max_value=1000),
                               max_size=50),
           lo=st.integers(min_value=0, max_value=1000),
           span=st.integers(min_value=0, max_value=400))
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, timestamps, lo, span):
        array = np.asarray(sorted(timestamps), dtype=np.int64)
        selection = point_slice(array, lo, lo + span)
        expected = [index for index in range(len(array))
                    if lo <= array[index] < lo + span]
        assert list(range(selection.start, selection.stop)) == expected


class TestTraceQueries:
    def test_states_in_interval_respects_bounds(self, seidel_trace_small):
        trace = seidel_trace_small
        mid = (trace.begin + trace.end) // 2
        span = trace.duration // 10
        for core in range(trace.num_cores):
            columns = states_in_interval(trace, core, mid, mid + span)
            assert (columns["start"] < mid + span).all()
            assert (columns["end"] > mid).all()

    def test_tasks_in_interval_subset_of_lane(self, seidel_trace_small):
        trace = seidel_trace_small
        full = tasks_in_interval(trace, 0, trace.begin, trace.end + 1)
        assert len(full["task_id"]) == len(
            trace.tasks.core_column(0, "task_id"))

    def test_whole_range_returns_everything(self, seidel_trace_small):
        trace = seidel_trace_small
        total = sum(
            len(states_in_interval(trace, core, trace.begin,
                                   trace.end + 1)["state"])
            for core in range(trace.num_cores))
        assert total == len(trace.states)
