"""Tests for the seidel and k-means task-graph builders."""

import pytest

from repro.core import graph_from_program
from repro.runtime import Machine
from repro.workloads import (KmeansConfig, SeidelConfig, build_chain,
                             build_fork_join, build_kmeans,
                             build_random_dag, build_seidel)


@pytest.fixture(scope="module")
def machine():
    return Machine(2, 4)


class TestSeidelStructure:
    @pytest.fixture(scope="class")
    def program(self):
        machine = Machine(2, 4)
        return build_seidel(machine, SeidelConfig(blocks=5, block_dim=8,
                                                  steps=3))

    def test_task_count(self, program):
        # blocks^2 init tasks + blocks^2 * steps compute tasks.
        assert len(program.tasks) == 25 + 25 * 3

    def test_two_task_types(self, program):
        names = {task_type.name for task_type in program.task_types}
        assert names == {"seidel_init", "seidel_block"}

    def test_init_tasks_are_dependence_free(self, program):
        inits = [task for task in program.tasks
                 if task.task_type.name == "seidel_init"]
        assert all(not task.dependencies for task in inits)

    def test_wavefront_depths(self, program):
        """Depth of compute task (t, i, j) is 1 + i + j + 2t: the
        diagonal wave front of Fig. 6."""
        graph = graph_from_program(program)
        depths = graph.depths()
        for task in program.tasks:
            if task.task_type.name != "seidel_block":
                continue
            t = task.metadata["t"]
            i = task.metadata["i"]
            j = task.metadata["j"]
            assert depths[task.task_id] == 1 + i + j + 2 * t

    def test_parallelism_drops_to_one_at_depth_one(self, program):
        graph = graph_from_program(program)
        __, counts = graph.parallelism_profile()
        assert counts[0] == 25       # all init tasks
        assert counts[1] == 1        # only b(0,0) — the paper's drop

    def test_compute_task_dependence_pattern(self, program):
        """An interior task depends on its own previous version and the
        four neighbor versions on the wave front."""
        interior = [task for task in program.tasks
                    if task.task_type.name == "seidel_block"
                    and task.metadata["t"] == 1
                    and task.metadata["i"] == 2
                    and task.metadata["j"] == 2]
        assert len(interior) == 1
        deps = interior[0].dependencies
        coordinates = {(d.metadata["t"], d.metadata["i"], d.metadata["j"])
                       for d in deps
                       if d.task_type.name == "seidel_block"}
        assert coordinates == {(0, 2, 2), (1, 1, 2), (1, 2, 1),
                               (0, 3, 2), (0, 2, 3)}

    def test_acyclic(self, program):
        assert program.validate_acyclic()


class TestKmeansStructure:
    @pytest.fixture(scope="class")
    def config(self):
        return KmeansConfig(num_points=32_000, block_size=4_000,
                            iterations=3)

    @pytest.fixture(scope="class")
    def program(self, config):
        machine = Machine(2, 4)
        return build_kmeans(machine, config)

    def test_distance_task_count(self, program, config):
        distance = [task for task in program.tasks
                    if task.task_type.name == "kmeans_distance"]
        assert len(distance) == config.num_blocks * config.iterations

    def test_one_reduction_root_per_iteration(self, program, config):
        from collections import Counter
        reduce_tasks = [task for task in program.tasks
                        if task.task_type.name == "kmeans_reduce"]
        roots = Counter()
        for task in reduce_tasks:
            # Roots are reduce tasks no other reduce task depends on
            # within the same iteration.
            if not any(dependent.task_type.name == "kmeans_reduce"
                       for dependent in task.dependents):
                roots[task.metadata["iteration"]] += 1
        assert roots == Counter({0: 1, 1: 1, 2: 1})

    def test_later_iterations_created_dynamically(self, program):
        for task in program.tasks:
            if task.task_type.name != "kmeans_distance":
                continue
            if task.metadata["iteration"] == 0:
                assert task.creator is None
            else:
                assert task.creator is not None
                assert task.creator.task_type.name == "kmeans_reduce"

    def test_distance_tasks_read_points_and_centers(self, program):
        distance = next(task for task in program.tasks
                        if task.task_type.name == "kmeans_distance")
        read_regions = {access.region.name.split("_")[0]
                        for access in distance.reads}
        assert "points" in read_regions

    def test_iterations_are_serialized(self, program):
        """Every distance task of iteration i+1 transitively depends on
        the reduction root of iteration i (through the propagation
        tree), so iterations cannot overlap."""
        graph = graph_from_program(program)
        depths = graph.depths()
        max_depth_per_iteration = {}
        min_depth_per_iteration = {}
        for task in program.tasks:
            if task.task_type.name != "kmeans_distance":
                continue
            iteration = task.metadata["iteration"]
            depth = depths[task.task_id]
            max_depth_per_iteration[iteration] = max(
                max_depth_per_iteration.get(iteration, 0), depth)
            min_depth_per_iteration[iteration] = min(
                min_depth_per_iteration.get(iteration, 10**9), depth)
        assert (min_depth_per_iteration[1]
                > max_depth_per_iteration[0])
        assert (min_depth_per_iteration[2]
                > max_depth_per_iteration[1])

    def test_misprediction_counters_attached(self, program):
        distance = [task for task in program.tasks
                    if task.task_type.name == "kmeans_distance"]
        assert all("branch_mispredictions" in task.counters
                   for task in distance)

    def test_optimized_branches_lower_mispredictions(self, machine,
                                                     config):
        from dataclasses import replace
        optimized = build_kmeans(machine,
                                 replace(config, optimize_branches=True))
        baseline = build_kmeans(machine, config)
        count = lambda program: sum(
            task.counters["branch_mispredictions"]
            for task in program.tasks
            if task.task_type.name == "kmeans_distance")
        assert count(optimized) < count(baseline) / 4

    def test_acyclic(self, program):
        assert program.validate_acyclic()


class TestSyntheticWorkloads:
    def test_chain_is_serial(self, machine):
        program = build_chain(machine, length=6)
        graph = graph_from_program(program)
        assert graph.max_depth() == 5

    def test_fork_join_depths(self, machine):
        program = build_fork_join(machine, width=7)
        graph = graph_from_program(program)
        __, counts = graph.parallelism_profile()
        assert list(counts) == [1, 7, 1]

    def test_random_dag_deterministic(self, machine):
        first = build_random_dag(machine, num_tasks=40, seed=3)
        second = build_random_dag(machine, num_tasks=40, seed=3)
        edges = lambda program: [(d.task_id, t.task_id)
                                 for t in program.tasks
                                 for d in t.dependencies]
        assert edges(first) == edges(second)

    def test_random_dag_acyclic(self, machine):
        program = build_random_dag(machine, num_tasks=60, seed=4)
        assert program.validate_acyclic()
