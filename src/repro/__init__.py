"""Reproduction of "Interactive Visualization of Cross-Layer Performance
Anomalies in Dynamic Task-Parallel Applications and Systems"
(Drebes, Pop, Heydemann, Cohen — ISPASS 2016).

Subpackages:

* :mod:`repro.core` — Aftermath's analysis core (the paper's
  contribution): trace model, indexes, filters, derived metrics,
  statistics, NUMA locality analysis, task-graph reconstruction,
  correlation tools, symbols and annotations.
* :mod:`repro.render` — headless timeline rendering with the paper's
  optimizations (predominant pixel, rectangle aggregation, min/max
  counter lines).
* :mod:`repro.trace_format` — the binary trace format with transparent
  compression, constant-memory streaming, and the seekable chunk index
  that lets readers jump straight to a time window of a
  bigger-than-RAM trace (``docs/trace-format.md``).
* :mod:`repro.analysis` — the out-of-core parallel engine: map-reduce
  over index chunks across worker processes, the paper conclusion's
  "out-of-core processing of large traces".
* :mod:`repro.runtime` — the simulated NUMA machine and task-parallel
  run-time used as the substrate generating traces.
* :mod:`repro.workloads` — the paper's applications (seidel, k-means).
"""

__version__ = "1.0.0"
