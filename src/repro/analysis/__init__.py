"""Out-of-core analysis: parallel map-reduce over indexed trace files.

This package sits above :mod:`repro.trace_format` and below the
interactive views in :mod:`repro.core`: it computes the same summary
statistics as the in-memory paths, but from trace *files*, in bounded
memory, sharded across worker processes.  The
:mod:`repro.analysis.experiments` subpackage scales the sharding from
one file to N: pooled parameter sweeps, cross-trace aggregation,
baseline/candidate diff reports and comparison rendering.  See
``docs/architecture.md`` for where it fits in the data flow.
"""

from .parallel import (CommMatrixAccumulator, TaskHistogramAccumulator,
                       parallel_comm_matrix, parallel_map_reduce,
                       parallel_streaming_statistics,
                       parallel_task_histogram)

__all__ = ["CommMatrixAccumulator", "TaskHistogramAccumulator",
           "parallel_comm_matrix", "parallel_map_reduce",
           "parallel_streaming_statistics", "parallel_task_histogram"]
