"""Parallel map-reduce over the chunks of an indexed trace file.

The chunk index (``docs/trace-format.md``) makes a trace file
*shardable*: any subset of chunks can be parsed independently, so a
summary over the whole file decomposes into

1. **map** — each worker process opens the file, seeks to its assigned
   chunks and folds their records into a fresh accumulator;
2. **reduce** — the driver merges the partial accumulators, in chunk
   order, into one result that is exactly equal to a serial pass.

Any object with ``consume(kind, fields)`` and ``merge(other)`` works as
an accumulator; :class:`repro.trace_format.streaming.
StreamingStatistics` is the canonical one, and this module adds
histogram and communication-matrix accumulators.  Accumulators and
their factories cross process boundaries, so both must be picklable
(module-level classes, :func:`functools.partial` of them, …).

Files without an index (compressed, or written before the index
existed) degrade to a serial full scan — same results, no parallelism.
The same serial path is used when only one worker is available, and
when the platform cannot spawn processes at all, so callers never need
a fallback of their own.
"""

from __future__ import annotations

import functools
import multiprocessing
import os

import numpy as np

from ..trace_format.chunked import (iter_chunk_records,
                                    iter_preamble_records,
                                    read_chunk_index)
from ..trace_format.streaming import (StreamingStatistics,
                                      TaskHistogramAccumulator,
                                      fold_records, stream_records)

#: Shards handed to each worker; >1 smooths out uneven chunk costs.
SHARDS_PER_WORKER = 4


class CommMatrixAccumulator:
    """Mergeable core-to-core communication matrix.

    ``matrix[src, dst]`` accumulates the bytes carried by communication
    events from ``src`` to ``dst`` (the out-of-core analogue of the
    event-derived half of Fig. 15; the NUMA-placement half needs the
    in-memory region tables and stays with
    :func:`repro.core.statistics.communication_matrix`).
    """

    #: Only communication events are worth buffering (see
    #: :func:`repro.trace_format.streaming.fold_records`).
    batch_kinds = ("comm_event",)

    def __init__(self, num_cores):
        self.num_cores = num_cores
        self.matrix = np.zeros((num_cores, num_cores), dtype=np.int64)
        self.events = 0

    def consume(self, kind, fields):
        """Accumulate one communication event; others are ignored."""
        if kind != "comm_event":
            return
        src, dst, __, size, __task = fields
        self.matrix[src, dst] += size
        self.events += 1

    def consume_batch(self, kind, columns):
        """Vectorized :meth:`consume`: scatter-add a whole batch."""
        if kind != "comm_event" or not len(columns[0]):
            return
        src, dst, __, sizes, __tasks = columns
        np.add.at(self.matrix, (src, dst), sizes)
        self.events += len(src)

    def merge(self, other):
        """Add another accumulator's matrix and event count."""
        self.matrix += other.matrix
        self.events += other.events
        return self


def _scan_serial(path, factory, columnar=False):
    """The fallback map-reduce: one accumulator, one full scan."""
    return fold_records(stream_records(path), factory(),
                        columnar=columnar)


def _shard_records(stream, spans):
    """All records of one shard's chunks, in file order."""
    for entry in spans:
        for record in iter_chunk_records(stream, entry):
            yield record


def _scan_shard(job):
    """Worker body: fold one shard of chunks into a fresh accumulator.

    ``job`` is ``(path, factory, spans, columnar)`` with ``spans`` the
    chunk entries assigned to this worker.  Runs in a separate process,
    so it re-opens the file itself.
    """
    path, factory, spans, columnar = job
    with open(path, "rb") as stream:
        return fold_records(_shard_records(stream, spans), factory(),
                            columnar=columnar)


def _partition(entries, shards):
    """Split ``entries`` into at most ``shards`` contiguous, non-empty
    runs, preserving file order."""
    shards = max(1, min(shards, len(entries)))
    bounds = np.linspace(0, len(entries), shards + 1).astype(int)
    return [entries[bounds[i]:bounds[i + 1]]
            for i in range(shards)
            if bounds[i] < bounds[i + 1]]


def resolve_workers(workers, num_chunks):
    """Number of worker processes to use for ``num_chunks`` chunks."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(workers, num_chunks))


def parallel_map_reduce(path, factory, workers=None,
                        shards_per_worker=SHARDS_PER_WORKER,
                        columnar=False):
    """Fold every record of ``path`` into an accumulator, in parallel.

    ``factory`` builds an empty accumulator (called once in the driver
    for the static preamble and once per shard in the workers).  The
    merged result equals a serial ``consume`` pass over the whole file:
    every record is consumed exactly once, and partials are merged in
    file order.  ``columnar=True`` makes every scan fold its records
    through the accumulator's vectorized ``consume_batch`` path
    (:func:`repro.trace_format.streaming.fold_records`) — identical
    results, less per-record work.  Returns the final accumulator.
    """
    index = read_chunk_index(path)
    if index is None or index.num_chunks == 0:
        return _scan_serial(path, factory, columnar=columnar)
    workers = resolve_workers(workers, index.num_chunks)
    base = factory()
    with open(path, "rb") as stream:
        for kind, fields in iter_preamble_records(stream, index):
            base.consume(kind, fields)
    shards = _partition(list(index.entries),
                        workers * shards_per_worker)
    jobs = [(path, factory, spans, columnar) for spans in shards]
    if workers == 1:
        partials = map(_scan_shard, jobs)
    else:
        try:
            pool = multiprocessing.get_context().Pool(workers)
        except (OSError, ImportError, PermissionError):
            # Platforms without working process support (restricted
            # sandboxes, missing semaphores) still get correct
            # results.  Only pool creation falls back: an error
            # raised inside a worker (e.g. a truncated file)
            # propagates rather than re-running the scan serially.
            pool = None
        if pool is None:
            partials = map(_scan_shard, jobs)
        else:
            with pool:
                partials = pool.map(_scan_shard, jobs)
    for partial in partials:
        base.merge(partial)
    return base


def parallel_streaming_statistics(path, workers=None, columnar=False):
    """Sharded :func:`repro.trace_format.streaming.
    streaming_statistics`: same :class:`StreamingStatistics` result,
    computed by ``workers`` processes over the chunk index."""
    return parallel_map_reduce(path, StreamingStatistics,
                               workers=workers, columnar=columnar)


def parallel_task_histogram(path, bins, value_range, workers=None,
                            columnar=False):
    """Sharded task-duration histogram; returns ``(edges, counts)``
    identical to :func:`repro.trace_format.streaming.
    streaming_task_histogram`."""
    factory = functools.partial(TaskHistogramAccumulator, bins,
                                value_range)
    accumulator = parallel_map_reduce(path, factory, workers=workers,
                                      columnar=columnar)
    return accumulator.edges, accumulator.counts


def parallel_comm_matrix(path, workers=None, columnar=False):
    """Sharded core-to-core communication-byte matrix from the file's
    communication events."""
    topology = None
    for kind, fields in stream_records(path):
        if kind == "topology":
            topology = fields
            break
    if topology is None:
        raise ValueError("trace has no topology record")
    factory = functools.partial(CommMatrixAccumulator,
                                topology.num_cores)
    accumulator = parallel_map_reduce(path, factory, workers=workers,
                                      columnar=columnar)
    return accumulator.matrix
