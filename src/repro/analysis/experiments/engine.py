"""Crash-resilient drive loop of the experiment suite.

This is the engine behind :func:`repro.analysis.experiments.run_suite`:
specs become jobs in the durable journal (:mod:`.queue`), artifacts
live in the content-addressed store (:mod:`.store`), and a pool of
worker *processes* drains the journal with the lease/retry/quarantine
protocol.  The parts that make it survive a SIGKILL at any instant:

* The journal, not the Python call stack, holds the sweep's progress.
  Re-running the same sweep over the same directory enqueues nothing
  new, reclaims leases orphaned by the dead run, and only simulates
  the points that never completed — completed points are *never*
  re-simulated (the crash-kill-resume benchmark asserts exactly this).
* Every artifact is published to the store atomically, so the resumed
  run finds either a complete verified trace or nothing.
* On resume, every ``done`` job's artifact is CRC-verified
  (:func:`repro.trace_format.verify_trace`); a corrupt artifact is
  quarantined aside and its job requeued, so bit-rot regenerates
  instead of propagating into analyses.
* A worker that dies or hangs forfeits its lease; a spec that keeps
  failing retries with exponential backoff and then lands in
  quarantine with its captured traceback — one bad spec costs one
  journal row, not the sweep.

Workers claim jobs from the shared journal rather than being handed a
pre-sharded list, so a slow simulation does not idle the other
workers.  Platforms that cannot spawn processes (and ``workers=1``)
degrade to an identical inline loop, like every pool in this repo.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...trace_format import read_trace, verify_trace
from .queue import (DEFAULT_LEASE_SECONDS, ExperimentError, JobQueue,
                    JobRecord, QueueError, RetryPolicy, journal_path)
from .store import TraceStore, job_key, spec_key

#: Store directory inside a suite directory.
STORE_DIRNAME = "store"

#: Test seam: seconds each job sleeps before executing, so crash tests
#: can SIGKILL a sweep with deterministic partial progress.
TEST_JOB_DELAY_ENV = "REPRO_ENGINE_TEST_JOB_DELAY"


@dataclass
class EngineReport:
    """What one :func:`run_suite_engine` call did to the journal.

    ``paths`` follows the spec order; an entry is ``None`` when its
    job did not finish (quarantined, or the run stopped early via
    ``max_jobs``).  ``resimulated`` counts executions this run spent
    on points that were already *validly* complete when it started —
    the crash-resume property is ``resimulated == 0``.
    """

    paths: List[Optional[str]] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    done_before: int = 0
    simulated: int = 0
    resimulated: int = 0
    store_hits: int = 0
    reclaimed: int = 0
    requeued: int = 0
    quarantined: List[JobRecord] = field(default_factory=list)

    def describe(self):
        """One status line (the CLI sweep summary)."""
        return ("{} done ({} resumed, {} store hit(s), {} simulated), "
                "{} quarantined".format(
                    self.counts.get("done", 0), self.done_before,
                    self.store_hits, self.simulated,
                    len(self.quarantined)))


def suite_store(directory):
    """The suite directory's content-addressed :class:`TraceStore`."""
    return TraceStore(os.path.join(str(directory), STORE_DIRNAME))


def _worker_owner(index):
    return "{}:{}:{}".format(socket.gethostname(), os.getpid(), index)


def _ensure_sidecar(path):
    """Write the ``.ostc`` mapped-cache sidecar through (idempotent)."""
    read_trace(path, cache=True)


def _execute_job(queue, store, directory, job, owner):
    """Run one claimed job to ``done``/``failed``/``quarantined``.

    Store hit: verify and materialize the existing artifact (no
    simulation).  Miss: simulate into a temp file, publish atomically,
    then materialize.  A heartbeat thread keeps the lease warm for the
    whole execution, however slow the simulation.  Exceptions are
    captured into the journal, never propagated — the loop goes on to
    the next job.
    """
    stop = threading.Event()

    def beat():
        interval = max(0.05, queue.lease_seconds / 4.0)
        while not stop.wait(interval):
            try:
                queue.heartbeat(job.key, owner)
            except QueueError:
                return

    heartbeat = threading.Thread(target=beat, daemon=True)
    heartbeat.start()
    try:
        delay = float(os.environ.get(TEST_JOB_DELAY_ENV, "0") or 0)
        if delay > 0:
            time.sleep(delay)
        spec = job.spec
        key = spec_key(spec)
        final = os.path.join(directory, spec.trace_filename())
        simulated = False
        if store.contains(key):
            verification = store.verify(key)
            if not verification.ok:
                store.quarantine_artifact(
                    key, reason=verification.reason or "CRC mismatch")
        if not store.contains(key):
            from .suite import generate_trace
            temp = os.path.join(directory, ".{}.work".format(
                spec.trace_filename()))
            try:
                generate_trace(spec, temp)
                store.publish(key, temp)
            finally:
                if os.path.exists(temp):
                    os.unlink(temp)
            simulated = True
        store.materialize(key, final)
        _ensure_sidecar(final)
        queue.complete(job.key, owner, final, simulated=simulated)
        return final
    except Exception:
        try:
            queue.fail(job.key, owner, traceback.format_exc())
        except QueueError:
            pass        # lease was reclaimed under us; its loss, not ours
        return None
    finally:
        stop.set()
        heartbeat.join(timeout=5.0)


def _worker_loop(queue, store, directory, owner, max_jobs=None):
    """Claim-execute until the journal has nothing left to run.

    The loop also waits out other workers' leases and backoff windows
    (a failed job may become runnable again), and opportunistically
    reclaims stale leases it notices.  ``max_jobs`` caps how many jobs
    this loop executes — the crash-window test seam.
    """
    executed = 0
    while max_jobs is None or executed < max_jobs:
        job = queue.claim(owner)
        if job is None:
            delay = queue.runnable_in()
            if delay is None:
                break
            if delay > 0:
                queue.reclaim_stale()
            time.sleep(min(max(delay, 0.01), 0.25))
            continue
        executed += 1
        _execute_job(queue, store, directory, job, owner)
    return executed


def _worker_main(journal, store_root, directory, retry, lease_seconds,
                 index, lock):
    """Worker-process entry point: fresh connection, own owner id."""
    queue = JobQueue(journal, retry=retry, lease_seconds=lease_seconds,
                     lock=lock)
    store = TraceStore(store_root)
    try:
        _worker_loop(queue, store, directory, _worker_owner(index))
    finally:
        queue.close()


def _verify_done_jobs(queue, store, directory):
    """CRC-audit every done job's artifact on resume.

    A missing suite file is re-materialized from the store; a corrupt
    one (or a corrupt store artifact behind it) is quarantined aside
    and the job requeued for regeneration.  Returns the number of
    requeued jobs.
    """
    requeued = 0
    for record in queue.snapshot():
        if record.state != "done":
            continue
        spec = record_spec(record)
        key = spec_key(spec)
        final = os.path.join(directory, spec.trace_filename())
        reason = None
        if os.path.exists(final):
            verification = verify_trace(final)
            if not verification.ok:
                reason = verification.reason or "CRC mismatch"
                os.unlink(final)
        if not os.path.exists(final):
            stored = store.verify(key)
            if stored.ok:
                store.materialize(key, final)
                _ensure_sidecar(final)
            else:
                store.quarantine_artifact(
                    key, reason=stored.reason or reason or "CRC mismatch")
                queue.requeue(record.key, reason=reason or stored.reason)
                requeued += 1
    return requeued


def record_spec(record):
    """The :class:`ExperimentSpec` journaled in a job record."""
    from .store import spec_from_json
    return spec_from_json(record.spec_json)


def _drain(queue, store, directory, workers, retry, lease_seconds,
           max_jobs):
    """Run worker processes (or the inline loop) until the journal has
    no runnable jobs left."""
    from .suite import resolve_suite_workers
    runnable = queue.counts()
    jobs = runnable["pending"] + runnable["failed"] + runnable["leased"]
    if jobs == 0:
        return
    workers = resolve_suite_workers(workers, jobs)
    if workers == 1 or max_jobs is not None:
        _worker_loop(queue, store, directory, _worker_owner(0),
                     max_jobs=max_jobs)
        return
    try:
        context = multiprocessing.get_context()
        lock = context.Lock()
        processes = [
            context.Process(
                target=_worker_main,
                args=(queue.path, store.root, directory, queue.retry,
                      lease_seconds, index, lock),
                daemon=True)
            for index in range(workers)]
        for process in processes:
            process.start()
    except (OSError, ImportError, PermissionError):
        # Platforms without working process support still get correct
        # results from the identical inline loop.
        _worker_loop(queue, store, directory, _worker_owner(0))
        return
    try:
        while any(process.is_alive() for process in processes):
            for process in processes:
                process.join(timeout=0.2)
            queue.reclaim_stale()
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
            process.join()
    # Anything a dying worker left leased goes back to runnable; a
    # fresh inline pass picks up stragglers so the drain is complete.
    if queue.reclaim_stale() or (queue.runnable_in() == 0.0):
        _worker_loop(queue, store, directory, _worker_owner(0))


def run_suite_engine(specs, directory, workers=None, retry=None,
                     lease_seconds=DEFAULT_LEASE_SECONDS,
                     max_jobs=None):
    """Enqueue ``specs`` into the suite directory's journal and drain it.

    Idempotent and resumable: completed points are verified, not
    re-simulated.  Returns an :class:`EngineReport`; strictness (raise
    on quarantined specs) is the caller's policy
    (:func:`repro.analysis.experiments.run_suite` applies it).
    """
    specs = list(specs)
    directory = str(directory)
    os.makedirs(directory, exist_ok=True)
    store = suite_store(directory)
    queue = JobQueue(journal_path(directory), retry=retry,
                     lease_seconds=lease_seconds)
    try:
        queue.enqueue(specs)
        report = EngineReport()
        report.reclaimed = queue.reclaim_stale()
        report.requeued = _verify_done_jobs(queue, store, directory)
        before = {record.key: record for record in queue.snapshot()}
        done_keys = {key for key, record in before.items()
                     if record.state == "done"}
        report.done_before = len(done_keys)
        _drain(queue, store, directory, workers, queue.retry,
               lease_seconds, max_jobs)
        report.reclaimed += queue.reclaim_stale()
        after = {record.key: record for record in queue.snapshot()}
        for key, record in after.items():
            prior = before.get(key)
            executed = record.executions - (prior.executions
                                            if prior else 0)
            report.simulated += max(0, executed)
            if key in done_keys:
                report.resimulated += max(0, executed)
            elif record.state == "done" and executed == 0:
                report.store_hits += 1
        report.counts = queue.counts()
        report.quarantined = queue.quarantined()
        if report.quarantined:
            queue.export_debug()
        for spec in specs:
            record = after.get(job_key(spec))
            if record is not None and record.state == "done":
                report.paths.append(
                    os.path.join(directory, spec.trace_filename()))
            else:
                report.paths.append(None)
        return report
    finally:
        queue.close()


def resume_suite_engine(directory, workers=None, retry=None,
                        lease_seconds=DEFAULT_LEASE_SECONDS,
                        max_jobs=None):
    """Resume a sweep from its journal alone (no spec list needed).

    Raises :class:`QueueError` when the directory has no journal.
    """
    path = journal_path(directory)
    if not os.path.exists(path):
        raise QueueError(
            "{}: no journal to resume (the sweep never started)".format(
                path))
    queue = JobQueue(path)
    try:
        specs = queue.load_specs()
    finally:
        queue.close()
    return run_suite_engine(specs, directory, workers=workers,
                            retry=retry, lease_seconds=lease_seconds,
                            max_jobs=max_jobs)
