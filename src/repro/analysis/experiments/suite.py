"""Parallel multi-trace experiment suites.

The paper's evaluation is comparative: every figure from Fig. 12 on
contrasts *runs* — block sizes, schedulers, NUMA placements — rather
than inspecting one trace in isolation.  This module turns the
single-run harness (:mod:`repro.analysis.experiments.harness`) into a
suite engine:

* :class:`ExperimentSpec` names one point of a parameter sweep
  (workload, optimized/non-optimized run-time, block size, seed);
  :func:`scheduler_sweep` and :func:`block_size_sweep` build the two
  sweeps the paper studies, :func:`synthetic_sweep` builds cheap
  seed-varied trace files for scale tests.
* :func:`run_suite` executes every spec and writes one indexed trace
  file (plus its ``.ostc`` mapped-cache sidecar) per point into a
  suite directory.  Since the durable-engine rework it is
  crash-resilient: specs become jobs in a SQLite journal
  (:mod:`~repro.analysis.experiments.queue`), artifacts live in a
  content-addressed store (:mod:`~repro.analysis.experiments.store`),
  and worker processes drain the journal with leases, backoff retries
  and quarantine (:mod:`~repro.analysis.experiments.engine`).
  :func:`resume_suite` picks a killed sweep back up from the journal
  alone, never re-simulating completed points.
* :func:`analyze_traces` ingests N trace files — from :func:`run_suite`
  or anywhere else — through a worker pool; each worker opens its
  trace via the memory-mapped columnar cache (``read_trace(path,
  cache=True)``), so repeated sweeps over the same files fault in
  pages instead of re-parsing records, and folds it into one
  :class:`TraceSummary`.  Per-trace failures are collected, not
  pool-fatal.

Workers are separate processes, so specs and summaries are plain
picklable dataclasses.  Platforms that cannot spawn processes (or
``workers=1``) degrade to an identical serial loop, exactly like
:mod:`repro.analysis.parallel`.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from . import harness


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of a parameter sweep.

    ``workload`` selects the generator: ``"seidel"``, ``"kmeans"``,
    ``"wavefront"`` and ``"pipeline"`` run applications through the
    simulator; ``"synthetic"`` writes a synthetic trace file directly
    (cheap, for scale tests).  ``params`` carries the swept values
    (for example ``("block_size", 10000)`` pairs) and is what the
    aggregation layer groups summary tables by.  ``faults`` carries a
    :class:`repro.runtime.faults.FaultInjectionConfig` as a tuple of
    ``(field, value)`` pairs (kept flat so specs stay hashable and
    picklable across pool workers); the empty tuple plants nothing.
    """

    name: str
    workload: str = "seidel"
    optimized: bool = True
    scale: str = "small"
    seed: int = 0
    block_size: Optional[int] = None
    events: int = 50_000
    params: Tuple[Tuple[str, object], ...] = ()
    faults: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self):
        """The swept parameters as a plain dict (JSON-friendly)."""
        return dict(self.params)

    def fault_config(self):
        """The spec's :class:`FaultInjectionConfig` (None when the
        spec plants no faults)."""
        if not self.faults:
            return None
        from ...runtime.faults import FaultInjectionConfig
        return FaultInjectionConfig(**dict(self.faults))

    def trace_filename(self):
        """The suite-directory file name of this spec's trace."""
        return "{}.ost".format(self.name)


def scheduler_sweep(workload="seidel", scale="small", seed=0):
    """The paper's Section IV contrast: non-optimized vs. optimized
    run-time (random stealing/placement vs. NUMA-aware) for one
    workload."""
    return [
        ExperimentSpec(name="{}_nonopt".format(workload),
                       workload=workload, optimized=False, scale=scale,
                       seed=seed, params=(("scheduler", "random"),)),
        ExperimentSpec(name="{}_opt".format(workload), workload=workload,
                       optimized=True, scale=scale, seed=seed,
                       params=(("scheduler", "numa-aware"),)),
    ]


def block_size_sweep(block_sizes, scale="small", seed=0):
    """The Fig. 12 sweep: k-means across task granularities."""
    return [
        ExperimentSpec(name="kmeans_bs{}".format(block_size),
                       workload="kmeans", scale=scale, seed=seed,
                       block_size=int(block_size),
                       params=(("block_size", int(block_size)),))
        for block_size in block_sizes
    ]


def fault_sweep(workload="wavefront", scale="small", seed=0,
                straggler_core=2, throttle_core=1,
                throttle_window=(1_500_000, 4_500_000)):
    """The fault-injection scenario zoo: one clean run plus one spec
    per planted fault family (straggler core, frequency-throttle
    window), all over the same workload and seed so the clean trace
    is the controlled baseline the detector tests diff against."""
    start, end = throttle_window
    return [
        ExperimentSpec(name="{}_clean".format(workload),
                       workload=workload, scale=scale, seed=seed,
                       params=(("fault", "none"),)),
        ExperimentSpec(name="{}_straggler".format(workload),
                       workload=workload, scale=scale, seed=seed,
                       params=(("fault", "straggler"),),
                       faults=(("straggler_cores", (straggler_core,)),
                               ("straggler_factor", 4.0))),
        ExperimentSpec(name="{}_throttle".format(workload),
                       workload=workload, scale=scale, seed=seed,
                       params=(("fault", "throttle"),),
                       faults=(("throttle_cores", (throttle_core,)),
                               ("throttle_factor", 3.0),
                               ("throttle_start", int(start)),
                               ("throttle_end", int(end)))),
    ]


def synthetic_sweep(count, events=50_000, seed=0):
    """``count`` seed-varied synthetic trace specs (scale tests)."""
    return [
        ExperimentSpec(name="synthetic_{}".format(index),
                       workload="synthetic", seed=seed + index,
                       events=int(events),
                       params=(("seed", seed + index),))
        for index in range(count)
    ]


@dataclass
class TraceSummary:
    """The cross-trace comparison record of one analyzed trace.

    Everything the aggregation and table layers need, detached from
    the (possibly huge) store it was computed from: identification
    (``name``, ``path``, ``params``), scale (``records`` event rows,
    ``duration`` in cycles), the per-state cycle totals, per-type task
    counts and durations, and the headline scalar metrics.
    """

    name: str
    path: str
    params: Dict[str, object] = field(default_factory=dict)
    records: int = 0
    tasks: int = 0
    duration: int = 0
    average_parallelism: float = 0.0
    locality_fraction: float = 1.0
    state_cycles: Dict[int, int] = field(default_factory=dict)
    tasks_per_type: Dict[str, int] = field(default_factory=dict)
    duration_per_type: Dict[str, int] = field(default_factory=dict)
    anomaly_counts: Dict[str, int] = field(default_factory=dict)
    histogram_edges: Tuple[float, ...] = ()
    histogram_fractions: Tuple[float, ...] = ()
    counter_r2: Dict[str, float] = field(default_factory=dict)
    graph_edges: int = 0
    critical_path: int = 0
    peak_parallelism: int = 0

    def state_fraction(self, state):
        """Share of all state cycles spent in ``state`` (0.0 if none)."""
        total = sum(self.state_cycles.values())
        if total == 0:
            return 0.0
        return self.state_cycles.get(int(state), 0) / total


def summarize_trace(trace, name="", path="", params=None,
                    histogram_bins=16, graph=True):
    """Fold one loaded trace (either store) into a :class:`TraceSummary`.

    This is the per-worker map step of :func:`analyze_traces`: the
    vectorized statistics, the anomaly scan, the task-duration
    histogram (Fig. 16), the per-counter duration correlations
    (Figs. 17–19) and — unless ``graph=False`` — the reconstructed
    task-graph metrics (Fig. 5's available parallelism, the critical
    path).  Together they are the full comparative view of one sweep
    point, which is the per-trace work the suite bench pools across
    workers.
    """
    from ...core import anomalies, statistics
    from ...core.taskgraph import reconstruct_task_graph
    state_cycles = {int(state): int(cycles) for state, cycles in
                    statistics.state_time_summary(trace).items()}
    type_names = {info.type_id: info.name for info in trace.task_types}
    columns = trace.tasks.columns
    tasks_per_type: Dict[str, int] = {}
    duration_per_type: Dict[str, int] = {}
    type_ids = columns["type_id"]
    durations = columns["end"] - columns["start"]
    for type_id in np.unique(type_ids):
        selected = type_ids == type_id
        label = type_names.get(int(type_id), str(int(type_id)))
        tasks_per_type[label] = int(selected.sum())
        duration_per_type[label] = int(durations[selected].sum())
    counts: Dict[str, int] = {}
    for finding in anomalies.scan(trace):
        counts[finding.kind] = counts.get(finding.kind, 0) + 1
    edges, fractions = statistics.task_duration_histogram(
        trace, bins=histogram_bins)
    counter_r2: Dict[str, float] = {}
    for entry in anomalies.correlate_counters(
            trace, require_positive_slope=False):
        best = counter_r2.get(entry.counter, 0.0)
        counter_r2[entry.counter] = max(best, float(entry.r_squared))
    graph_edges = critical_path = peak_parallelism = 0
    if graph:
        task_graph = reconstruct_task_graph(trace)
        __, depth_counts = task_graph.parallelism_profile()
        graph_edges = int(task_graph.num_edges)
        critical_path = int(task_graph.critical_path_length())
        peak_parallelism = (int(depth_counts.max())
                            if len(depth_counts) else 0)
    records = (len(trace.states) + len(trace.tasks)
               + len(trace.discrete))
    return TraceSummary(
        name=name, path=str(path),
        params=dict(params) if params else {},
        records=int(records),
        tasks=int(len(trace.tasks)),
        duration=int(trace.duration),
        average_parallelism=float(
            statistics.average_parallelism(trace)),
        locality_fraction=float(statistics.locality_fraction(trace)),
        state_cycles=state_cycles,
        tasks_per_type=tasks_per_type,
        duration_per_type=duration_per_type,
        anomaly_counts=counts,
        histogram_edges=tuple(float(edge) for edge in edges),
        histogram_fractions=tuple(float(fraction)
                                  for fraction in fractions),
        counter_r2=counter_r2,
        graph_edges=graph_edges,
        critical_path=critical_path,
        peak_parallelism=peak_parallelism)


def generate_trace(spec, path):
    """Simulate (or synthesize) one spec's trace into ``path``.

    The pure generation step of a sweep point — deterministic in the
    spec, no sidecar, no journal.  The durable engine
    (:mod:`repro.analysis.experiments.engine`) calls this into a temp
    file and publishes the result to the content-addressed store.
    """
    faults = spec.fault_config()
    if spec.workload == "synthetic":
        from ...trace_format.synthesize import write_synthetic_trace
        write_synthetic_trace(path, events=spec.events, seed=spec.seed,
                              faults=faults)
        return path
    from ...trace_format import write_trace
    if spec.workload == "seidel":
        __, trace = harness.seidel_trace(
            optimized=spec.optimized, scale=spec.scale,
            seed=spec.seed, faults=faults)
    elif spec.workload == "kmeans":
        kwargs = {}
        if spec.block_size is not None:
            kwargs["block_size"] = spec.block_size
        __, trace = harness.kmeans_trace(
            optimized=spec.optimized, scale=spec.scale,
            seed=spec.seed, faults=faults, **kwargs)
    elif spec.workload == "wavefront":
        __, trace = harness.wavefront_trace(
            optimized=spec.optimized, scale=spec.scale,
            seed=spec.seed, faults=faults)
    elif spec.workload == "pipeline":
        __, trace = harness.pipeline_trace(
            optimized=spec.optimized, scale=spec.scale,
            seed=spec.seed, faults=faults)
    else:
        raise ValueError("unknown workload {!r}".format(spec.workload))
    write_trace(trace, path, index=True)
    return path


def _run_spec(job):
    """Simulate one spec straight into a suite directory (trace plus
    ``.ostc`` sidecar) — the journal-free single-point path, kept for
    callers that want one trace without engine machinery."""
    spec, directory = job
    path = generate_trace(
        spec, os.path.join(directory, spec.trace_filename()))
    from ...trace_format import read_trace
    read_trace(path, cache=True)        # write the sidecar through
    return path


def _summarize_path(job):
    """Worker body of :func:`analyze_traces`: open one trace through
    the mapped cache and summarize it.  Failures come back as data —
    ``("error", diagnostic)`` — instead of tearing down the pool, so
    one unreadable trace cannot lose the other workers' results."""
    path, name, params, cache = job
    try:
        from ...trace_format import read_trace
        if cache:
            trace = read_trace(path, cache=True)
        else:
            trace = read_trace(path, columnar=True)
        return ("ok", summarize_trace(trace, name=name, path=path,
                                      params=params))
    except Exception as error:
        message = str(error).strip().splitlines()
        return ("error", "{}: {}: {}".format(
            path, type(error).__name__,
            message[0] if message else "failed"))


def _pooled_map(function, jobs, workers):
    """``pool.map`` with the repo's serial fallback semantics: one
    worker, one job, or an unusable platform all run the plain loop.
    Only pool *creation* errors trigger the fallback — an exception
    raised inside a worker body (a failed simulation, a full disk)
    propagates instead of silently re-running every job serially."""
    workers = max(1, min(workers, len(jobs)))
    if workers == 1 or len(jobs) <= 1:
        return [function(job) for job in jobs]
    try:
        pool = multiprocessing.get_context().Pool(workers)
    except (OSError, ImportError, PermissionError):
        # Platforms without working process support (restricted
        # sandboxes, missing semaphores) still get correct results.
        return [function(job) for job in jobs]
    with pool:
        return pool.map(function, jobs)


def resolve_suite_workers(workers, num_jobs):
    """Worker-process count for ``num_jobs`` independent traces (the
    chunk-sharding policy of :func:`repro.analysis.parallel.
    resolve_workers`, reused so the two pools cannot diverge)."""
    from ..parallel import resolve_workers
    return resolve_workers(workers, num_jobs)


def run_suite(specs, directory, workers=None, strict=True, retry=None,
              max_jobs=None):
    """Execute every spec of a sweep; returns the trace paths in order.

    Each spec becomes one indexed trace file (plus its ``.ostc``
    mapped-cache sidecar) under ``directory``, produced by worker
    processes draining the directory's durable job journal
    (:mod:`repro.analysis.experiments.engine`).  The call is
    idempotent and crash-resumable: re-running it over the same
    directory simulates only the points that never completed, and
    sweep points whose content hash matches an artifact already in
    the suite store are materialized for free instead of re-simulated.

    A failing spec retries with backoff per ``retry`` (a
    :class:`~repro.analysis.experiments.queue.RetryPolicy`; default 3
    attempts) and is then quarantined with its traceback — the rest of
    the sweep always completes.  With ``strict=True`` (default) any
    quarantined spec then raises a one-line-per-spec
    :class:`~repro.analysis.experiments.queue.ExperimentError`;
    ``strict=False`` returns ``None`` in that spec's slot instead.
    ``max_jobs`` stops the (then serial) drain after that many job
    executions — the crash-window test seam.
    """
    from .engine import run_suite_engine
    specs = list(specs)
    report = run_suite_engine(specs, directory, workers=workers,
                              retry=retry, max_jobs=max_jobs)
    if strict and max_jobs is None:
        _raise_for_quarantine(report, directory)
    return report.paths


def resume_suite(directory, workers=None, strict=True, retry=None,
                 max_jobs=None):
    """Resume a sweep from its journal alone; no spec list needed.

    Returns the :class:`~repro.analysis.experiments.engine.
    EngineReport` (its ``resimulated`` field is the crash-resume
    property: zero completed points re-simulated).  Raises
    :class:`~repro.analysis.experiments.queue.QueueError` when
    ``directory`` has no journal.
    """
    from .engine import resume_suite_engine
    report = resume_suite_engine(directory, workers=workers,
                                 retry=retry, max_jobs=max_jobs)
    if strict and max_jobs is None:
        _raise_for_quarantine(report, directory)
    return report


def _raise_for_quarantine(report, directory):
    from .queue import ExperimentError
    if not report.quarantined:
        return
    lines = ["{} spec(s) quarantined after exhausting retries:".format(
        len(report.quarantined))]
    for record in report.quarantined:
        last = (record.error or "").strip().splitlines()
        lines.append("  {}: {}".format(
            record.name, last[-1] if last else "unknown failure"))
    lines.append("full tracebacks: queue-status {}".format(directory))
    raise ExperimentError("\n".join(lines))


def analyze_traces(paths, workers=None, cache=True, names=None,
                   params=None, strict=True):
    """Summarize N trace files through a worker pool.

    Each worker opens its trace via the memory-mapped columnar cache
    (``cache=True``; the fast path that makes re-sweeps touch pages,
    not parsers) and folds it into a :class:`TraceSummary`.  Results
    keep the order of ``paths``.  ``names``/``params`` optionally label
    each summary (defaults: the file stem, no parameters).

    One unreadable or corrupt trace no longer aborts the pool: every
    other trace is still summarized, and the failures surface together
    afterwards — as a one-line-per-trace
    :class:`~repro.analysis.experiments.queue.ExperimentError` when
    ``strict=True`` (default), or as ``None`` placeholders when
    ``strict=False``.
    """
    paths = [str(path) for path in paths]
    if names is None:
        names = [os.path.splitext(os.path.basename(path))[0]
                 for path in paths]
    if params is None:
        params = [{} for __ in paths]
    if len(names) != len(paths) or len(params) != len(paths):
        raise ValueError("need one name and one params dict per trace "
                         "({} paths, {} names, {} params)".format(
                             len(paths), len(names), len(params)))
    workers = resolve_suite_workers(workers, len(paths))
    jobs = [(path, name, spec_params, cache)
            for path, name, spec_params in zip(paths, names, params)]
    outcomes = _pooled_map(_summarize_path, jobs, workers)
    failures = [detail for status, detail in outcomes
                if status == "error"]
    if failures and strict:
        from .queue import ExperimentError
        raise ExperimentError(
            "{} of {} trace(s) failed to analyze:\n  {}".format(
                len(failures), len(paths), "\n  ".join(failures)))
    return [detail if status == "ok" else None
            for status, detail in outcomes]


def run_and_analyze(specs, directory, workers=None, cache=True,
                    strict=True):
    """:func:`run_suite` then :func:`analyze_traces`, labeled by spec.

    With ``strict=False`` a quarantined spec yields ``None`` in both
    the path and summary slots instead of raising.
    """
    specs = list(specs)
    paths = run_suite(specs, directory, workers=workers, strict=strict)
    produced = [(path, spec) for path, spec in zip(paths, specs)
                if path is not None]
    summaries = analyze_traces(
        [path for path, __ in produced], workers=workers, cache=cache,
        names=[spec.name for __, spec in produced],
        params=[spec.param_dict() for __, spec in produced],
        strict=strict)
    by_path = {path: summary
               for (path, __), summary in zip(produced, summaries)}
    return [by_path.get(path) if path is not None else None
            for path in paths]
