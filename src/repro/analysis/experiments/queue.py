"""Durable work-queue journal for the experiment engine.

The PR 5 suite runner was fire-and-forget: one crashed worker, one
OOM-killed simulation or one poison spec lost the whole sweep.  This
module is the crash-resilient core that replaces it — a SQLite job
journal (stdlib ``sqlite3`` guarded by a shared lock around write
transactions, the colrev idiom named in ROADMAP item 4) that survives
the process:

* **States.**  Every job is exactly one of ``pending`` (runnable),
  ``leased`` (claimed by a worker under a heartbeat lease), ``done``
  (artifact published), ``failed`` (errored, awaiting its backoff
  retry) or ``quarantined`` (retries exhausted — parked with the
  captured traceback instead of poisoning the pool).
* **Leases.**  :meth:`JobQueue.claim` hands one eligible job to a
  worker and stamps a heartbeat; workers renew it while executing.  A
  lease whose heartbeat goes stale (dead or hung worker) is reclaimed
  by :meth:`JobQueue.reclaim_stale` and the job becomes runnable
  again — counting as a failed attempt, so a job that keeps killing
  its workers still ends up quarantined, not retried forever.
* **Retry with backoff.**  A failed attempt schedules the next one at
  ``base_delay * 2**(attempt-1)`` seconds (capped, plus deterministic
  jitter derived from the job key so stampedes decorrelate without
  nondeterministic tests) until ``max_attempts`` is exhausted.
* **Resume.**  The journal is the source of truth: re-running a sweep
  re-enqueues the same jobs idempotently (keyed by a content hash of
  the spec), finds the completed ones already ``done``, and never
  re-simulates them.  :func:`load_specs` rebuilds the full spec list
  from the journal alone, so a resume needs nothing but the suite
  directory.

Concurrency: every process opens its own connection (SQLite
connections must not cross ``fork``); cross-process serialization is
``BEGIN IMMEDIATE`` transactions plus a busy timeout, and an optional
``multiprocessing.Lock`` shared by the engine's workers keeps claim
contention off the busy-retry path.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shutil
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Journal file name inside a suite directory.
JOURNAL_NAME = "journal.sqlite"

#: Environment variable naming a directory where the engine mirrors
#: its journal and quarantine records for post-mortem debugging (CI
#: uploads it as an artifact when the test job fails).
DEBUG_DIR_ENV = "REPRO_ENGINE_DEBUG_DIR"

#: Seconds a lease may go without a heartbeat before any monitor may
#: reclaim it (dead or hung worker).
DEFAULT_LEASE_SECONDS = 300.0

_STATES = ("pending", "leased", "done", "failed", "quarantined")


class ExperimentError(RuntimeError):
    """A clean, one-line-per-cause failure of the experiment engine.

    Raised instead of letting raw worker tracebacks propagate through
    the pool; the full tracebacks stay queryable in the journal
    (:meth:`JobQueue.quarantined`)."""


class QueueError(ExperimentError):
    """The journal itself is unusable (missing, corrupt, conflicting)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How failed jobs are retried before quarantine.

    ``max_attempts`` counts executions *started* (the first run is
    attempt 1); ``base_delay`` doubles per attempt up to ``max_delay``;
    ``jitter`` adds up to that fraction of the delay, derived
    deterministically from the job key and attempt number.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    max_delay: float = 60.0
    jitter: float = 0.25

    def backoff(self, key, attempt):
        """Seconds to wait after failed attempt number ``attempt``."""
        delay = min(self.max_delay,
                    self.base_delay * (2.0 ** max(0, attempt - 1)))
        if self.jitter > 0:
            seed = int.from_bytes(hashlib.sha256(
                "{}:{}".format(key, attempt).encode()).digest()[:8],
                "big")
            delay *= 1.0 + self.jitter * random.Random(seed).random()
        return delay


@dataclass(frozen=True)
class Job:
    """One claimed unit of work, as handed to a worker."""

    key: str
    name: str
    spec_json: str
    attempts: int

    @property
    def spec(self):
        """The job's :class:`ExperimentSpec`, rebuilt from the
        journal's JSON."""
        from .store import spec_from_json
        return spec_from_json(self.spec_json)


def journal_path(directory):
    """The conventional journal location inside a suite directory."""
    return os.path.join(str(directory), JOURNAL_NAME)


def _default_owner():
    return "{}:{}".format(socket.gethostname(), os.getpid())


def _pid_alive(pid):
    """Whether ``pid`` is a live process on this host.

    A zombie counts as dead: a SIGKILLed worker can linger in ``Z``
    state until its reaper runs, and its lease must not outlive it."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True           # exists but not ours (EPERM)
    try:
        with open("/proc/{}/stat".format(pid), "rb") as stream:
            data = stream.read()
        # The state letter follows the parenthesized command name.
        if data[data.rindex(b")") + 2:data.rindex(b")") + 3] == b"Z":
            return False
    except (OSError, ValueError):
        pass                  # no procfs: the kill(0) answer stands
    return True


def _owner_is_dead(owner):
    """True when ``owner`` ("host:pid[:n]") is provably dead: a local
    pid that no longer exists.  Remote owners are never provably dead,
    so only their lease expiry reclaims them."""
    parts = str(owner or "").split(":")
    if len(parts) < 2 or parts[0] != socket.gethostname():
        return False
    try:
        pid = int(parts[1])
    except ValueError:
        return False
    return not _pid_alive(pid)


class JobQueue:
    """The durable job journal of one suite directory.

    Open one instance per process; methods are thread-safe within the
    instance (a worker's heartbeat thread shares it with the claim
    loop).  ``clock`` is injectable for deterministic tests.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS jobs (
        key        TEXT PRIMARY KEY,
        name       TEXT NOT NULL,
        spec       TEXT NOT NULL,
        store_key  TEXT NOT NULL,
        state      TEXT NOT NULL DEFAULT 'pending',
        attempts   INTEGER NOT NULL DEFAULT 0,
        executions INTEGER NOT NULL DEFAULT 0,
        owner      TEXT,
        heartbeat  REAL,
        not_before REAL NOT NULL DEFAULT 0,
        result     TEXT,
        error      TEXT,
        created    REAL NOT NULL,
        updated    REAL NOT NULL
    )
    """

    def __init__(self, path, retry=None, clock=time.time, lock=None,
                 lease_seconds=DEFAULT_LEASE_SECONDS):
        self.path = str(path)
        self.retry = retry if retry is not None else RetryPolicy()
        self.clock = clock
        self.lease_seconds = float(lease_seconds)
        self._lock = lock if lock is not None else threading.Lock()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        try:
            self._conn = sqlite3.connect(self.path, timeout=30.0,
                                         check_same_thread=False)
            self._conn.execute(self._SCHEMA)
            self._conn.commit()
        except sqlite3.Error as error:
            raise QueueError("cannot open journal {}: {}".format(
                self.path, error))

    def close(self):
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def _write(self, sql, parameters=()):
        with self._lock:
            try:
                with self._conn:      # one implicit transaction
                    return self._conn.execute(sql, parameters)
            except sqlite3.Error as error:
                raise QueueError("journal write failed: {}".format(
                    error))

    def _query(self, sql, parameters=()):
        with self._lock:
            try:
                return self._conn.execute(sql, parameters).fetchall()
            except sqlite3.Error as error:
                raise QueueError("journal read failed: {}".format(
                    error))

    # -- enqueue / resume ------------------------------------------------

    def enqueue(self, specs):
        """Idempotently add ``specs`` as jobs; returns how many were new.

        Jobs are keyed by a content hash of the full spec, so
        re-enqueueing the same sweep is a no-op and a resumed run
        never duplicates work.  A spec whose *name* collides with a
        differently-configured job already journaled is rejected —
        two jobs must not race for one output file.
        """
        from .store import job_key, spec_key, spec_to_json
        now = self.clock()
        added = 0
        for spec in specs:
            key = job_key(spec)
            existing = self._query(
                "SELECT key FROM jobs WHERE name = ?", (spec.name,))
            if existing and existing[0][0] != key:
                raise QueueError(
                    "spec {!r} conflicts with a differently-configured "
                    "job already in the journal (key {} vs {})".format(
                        spec.name, key[:12], existing[0][0][:12]))
            cursor = self._write(
                "INSERT OR IGNORE INTO jobs "
                "(key, name, spec, store_key, created, updated) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (key, spec.name, spec_to_json(spec), spec_key(spec),
                 now, now))
            added += cursor.rowcount
        return added

    def load_specs(self):
        """Every journaled spec, in enqueue order — a resume needs
        nothing but the journal."""
        rows = self._query(
            "SELECT spec FROM jobs ORDER BY rowid")
        from .store import spec_from_json
        return [spec_from_json(row[0]) for row in rows]

    # -- worker protocol -------------------------------------------------

    def claim(self, owner, now=None):
        """Atomically lease one runnable job to ``owner``.

        Runnable: ``pending`` or ``failed`` with its backoff expired.
        Returns a :class:`Job` or ``None`` when nothing is currently
        claimable.  Claiming counts as starting an attempt.
        """
        now = self.clock() if now is None else now
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                row = self._conn.execute(
                    "SELECT key, name, spec, attempts FROM jobs "
                    "WHERE state IN ('pending', 'failed') "
                    "AND not_before <= ? ORDER BY rowid LIMIT 1",
                    (now,)).fetchone()
                if row is None:
                    self._conn.execute("ROLLBACK")
                    return None
                key, name, spec_json, attempts = row
                self._conn.execute(
                    "UPDATE jobs SET state = 'leased', owner = ?, "
                    "heartbeat = ?, attempts = attempts + 1, "
                    "updated = ? WHERE key = ?",
                    (owner, now, now, key))
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise QueueError("claim failed: {}".format(error))
        return Job(key=key, name=name, spec_json=spec_json,
                   attempts=attempts + 1)

    def heartbeat(self, key, owner, now=None):
        """Renew the lease of a running job (worker liveness signal)."""
        now = self.clock() if now is None else now
        self._write(
            "UPDATE jobs SET heartbeat = ?, updated = ? "
            "WHERE key = ? AND owner = ? AND state = 'leased'",
            (now, now, key, owner))

    def complete(self, key, owner, result, simulated=False, now=None):
        """Mark a leased job done; ``simulated`` bumps the execution
        counter (a content-store hit completes without simulating)."""
        now = self.clock() if now is None else now
        cursor = self._write(
            "UPDATE jobs SET state = 'done', result = ?, error = NULL, "
            "executions = executions + ?, updated = ? "
            "WHERE key = ? AND owner = ? AND state = 'leased'",
            (str(result), 1 if simulated else 0, now, key, owner))
        if cursor.rowcount == 0:
            raise QueueError(
                "job {} is not leased by {} (lost lease?)".format(
                    key[:12], owner))

    def fail(self, key, owner, error, simulated=True, now=None):
        """Record a failed attempt: schedule the backoff retry, or
        quarantine the job with its traceback when attempts are
        exhausted.  Returns the new state."""
        now = self.clock() if now is None else now
        rows = self._query(
            "SELECT attempts FROM jobs WHERE key = ? AND owner = ? "
            "AND state = 'leased'", (key, owner))
        if not rows:
            raise QueueError(
                "job {} is not leased by {} (lost lease?)".format(
                    key[:12], owner))
        (attempts,) = rows[0]
        return self._fail_locked(key, attempts, str(error),
                                 simulated=simulated, now=now)

    def _fail_locked(self, key, attempts, error, simulated, now):
        if attempts >= self.retry.max_attempts:
            state, not_before = "quarantined", 0.0
        else:
            state = "failed"
            not_before = now + self.retry.backoff(key, attempts)
        self._write(
            "UPDATE jobs SET state = ?, not_before = ?, error = ?, "
            "owner = NULL, heartbeat = NULL, "
            "executions = executions + ?, updated = ? WHERE key = ?",
            (state, not_before, error, 1 if simulated else 0, now, key))
        if state == "quarantined":
            self.export_debug()
        return state

    def requeue(self, key, reason=None, now=None):
        """Force a job (any state) back to ``pending`` — used when a
        done job's artifact turns out corrupt and must regenerate."""
        now = self.clock() if now is None else now
        self._write(
            "UPDATE jobs SET state = 'pending', not_before = 0, "
            "owner = NULL, heartbeat = NULL, result = NULL, "
            "error = ?, updated = ? WHERE key = ?",
            (reason, now, key))

    def reclaim_stale(self, now=None, owners=None):
        """Return expired or orphaned leases to the runnable pool.

        A lease is stale when its heartbeat is older than the lease
        window, when its owner is a provably-dead local process, or
        when its owner is in ``owners`` (a monitor that watched the
        worker die passes it explicitly).  Each reclaim counts as a
        failed attempt — exhausted jobs land in quarantine.  Returns
        the number of reclaimed leases.
        """
        now = self.clock() if now is None else now
        rows = self._query(
            "SELECT key, attempts, owner, heartbeat FROM jobs "
            "WHERE state = 'leased'")
        reclaimed = 0
        for key, attempts, owner, heartbeat in rows:
            expired = (heartbeat is None
                       or heartbeat + self.lease_seconds <= now)
            orphaned = (owners is not None and owner in owners) \
                or _owner_is_dead(owner)
            if not (expired or orphaned):
                continue
            reason = ("worker {} died mid-job".format(owner)
                      if orphaned else
                      "lease expired (no heartbeat from {} for {:.0f}s)"
                      .format(owner, now - (heartbeat or 0)))
            # Not ``simulated``: the dead worker's execution never
            # reached complete/fail, so it is not in the counter — and
            # a reclaim must not inflate the resumed run's tally.
            self._fail_locked(key, attempts, reason, simulated=False,
                              now=now)
            reclaimed += 1
        return reclaimed

    # -- inspection ------------------------------------------------------

    def counts(self):
        """``{state: number of jobs}`` with every state present."""
        rows = self._query(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state")
        counts = {state: 0 for state in _STATES}
        counts.update({state: int(count) for state, count in rows})
        return counts

    def snapshot(self):
        """Every job's journal row, in enqueue order (for status
        displays and tests)."""
        rows = self._query(
            "SELECT key, name, state, attempts, executions, owner, "
            "not_before, result, error, spec, store_key "
            "FROM jobs ORDER BY rowid")
        return [JobRecord(key=key, name=name, state=state,
                          attempts=attempts, executions=executions,
                          owner=owner, not_before=not_before,
                          result=result, error=error,
                          spec_json=spec, store_key=store_key)
                for (key, name, state, attempts, executions, owner,
                     not_before, result, error, spec, store_key)
                in rows]

    def record(self, key):
        """One job's :class:`JobRecord` (None when absent)."""
        for entry in self.snapshot():
            if entry.key == key:
                return entry
        return None

    def quarantined(self):
        """The quarantined jobs with their captured tracebacks."""
        return [entry for entry in self.snapshot()
                if entry.state == "quarantined"]

    def runnable_in(self, now=None):
        """Seconds until a job becomes claimable: ``0.0`` when one is
        runnable now, a positive delay when every runnable job is
        backing off or leased, ``None`` when nothing can ever become
        runnable (all done/quarantined) — the worker-loop exit signal.
        """
        now = self.clock() if now is None else now
        rows = self._query(
            "SELECT state, not_before, heartbeat FROM jobs "
            "WHERE state IN ('pending', 'failed', 'leased')")
        delay = None
        for state, not_before, heartbeat in rows:
            if state in ("pending", "failed"):
                wait = max(0.0, float(not_before or 0) - now)
            else:
                wait = max(0.0, float(heartbeat or 0)
                           + self.lease_seconds - now)
            delay = wait if delay is None else min(delay, wait)
            if delay == 0.0:
                return 0.0
        return delay

    # -- debugging -------------------------------------------------------

    def export_debug(self, directory=None):
        """Mirror the journal and quarantine records for post-mortem.

        ``directory`` defaults to ``$REPRO_ENGINE_DEBUG_DIR`` (no-op
        when unset).  Writes a copy of the journal file, a JSON
        snapshot, and one traceback file per quarantined job — the
        artifact CI uploads when the test job fails.
        """
        directory = directory or os.environ.get(DEBUG_DIR_ENV)
        if not directory:
            return None
        try:
            os.makedirs(directory, exist_ok=True)
            stem = hashlib.sha256(
                os.path.abspath(self.path).encode()).hexdigest()[:12]
            shutil.copyfile(self.path, os.path.join(
                directory, "journal-{}.sqlite".format(stem)))
            snapshot = [record.__dict__ for record in self.snapshot()]
            with open(os.path.join(
                    directory, "journal-{}.json".format(stem)),
                    "w") as stream:
                json.dump(snapshot, stream, indent=2, sort_keys=True)
            quarantine_dir = os.path.join(directory, "quarantine")
            for entry in self.quarantined():
                os.makedirs(quarantine_dir, exist_ok=True)
                with open(os.path.join(
                        quarantine_dir,
                        "{}-{}.txt".format(entry.name, entry.key[:12])),
                        "w") as stream:
                    stream.write(entry.error or "(no traceback)")
        except OSError:
            return None           # debugging must never break the run
        return directory


@dataclass(frozen=True)
class JobRecord:
    """One row of the journal, as reported by
    :meth:`JobQueue.snapshot`."""

    key: str
    name: str
    state: str
    attempts: int
    executions: int
    owner: Optional[str] = None
    not_before: float = 0.0
    result: Optional[str] = None
    error: Optional[str] = None
    spec_json: Optional[str] = None
    store_key: Optional[str] = None


def queue_status(directory):
    """Machine-readable status of a suite directory's journal.

    Returns ``{"journal", "counts", "jobs"}``: the journal path,
    per-state job counts (every state present), and one dict per job
    (``name``/``state``/``attempts``/``executions`` plus ``error`` —
    the last line of the failure traceback, or ``None``).  This is the
    payload behind both the ``queue-status`` CLI report and the
    service's ``sweep-status`` endpoint.  Raises :class:`QueueError`
    when the directory has no journal.
    """
    path = journal_path(directory)
    if not os.path.exists(path):
        raise QueueError("{}: no journal (not a suite directory, or "
                         "the sweep never started)".format(path))
    queue = JobQueue(path)
    try:
        jobs = []
        for entry in queue.snapshot():
            error = None
            if entry.state in ("failed", "quarantined") and entry.error:
                error = entry.error.strip().splitlines()[-1]
            jobs.append({"name": entry.name, "state": entry.state,
                         "attempts": int(entry.attempts),
                         "executions": int(entry.executions),
                         "error": error})
        return {"journal": path, "counts": queue.counts(),
                "jobs": jobs}
    finally:
        queue.close()


def describe_queue(directory):
    """Human-readable status of a suite directory's journal.

    Returns the report string (the ``queue-status`` CLI body) —
    :func:`queue_status` formatted for a terminal.  Raises
    :class:`QueueError` when the directory has no journal.
    """
    status = queue_status(directory)
    counts = status["counts"]
    lines = ["journal: {}".format(status["journal"]),
             "jobs: " + "  ".join(
                 "{} {}".format(counts[state], state)
                 for state in _STATES)]
    for job in status["jobs"]:
        lines.append(
            "  {:24s} {:12s} attempts={} executions={}{}".format(
                job["name"], job["state"], job["attempts"],
                job["executions"],
                "  [{}]".format(job["error"]) if job["error"] else ""))
    return "\n".join(lines)
