"""Cross-trace aggregation: merge N traces' statistics into one view.

Two complementary aggregations over a suite of trace files:

* **merged accumulators** — :func:`merged_statistics`,
  :func:`merged_task_histogram` and :func:`merged_comm_matrix` fold
  every file through the existing out-of-core accumulators
  (:class:`~repro.trace_format.streaming.StreamingStatistics`,
  :class:`~repro.trace_format.streaming.TaskHistogramAccumulator`,
  :class:`~repro.analysis.parallel.CommMatrixAccumulator`) and reduce
  the per-trace partials with their exact ``merge``, so the result
  equals one pass over the concatenation of all files;
* **summary tables** — :class:`SweepTable` arranges per-trace
  :class:`~repro.analysis.experiments.suite.TraceSummary` rows by a
  swept parameter (block size, scheduler, ...), the textual form of
  the paper's cross-run comparisons (Figs. 12–16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ...core.events import WorkerState
from ...trace_format.streaming import (StreamingStatistics,
                                       TaskHistogramAccumulator,
                                       streaming_statistics)


def merged_statistics(paths, columnar=True):
    """One :class:`StreamingStatistics` over the union of N files.

    Each file is folded into its own accumulator and the partials are
    merged in order — every aggregate is a sum, min/max or union, so
    the result is exactly a single pass over all records.
    """
    merged = StreamingStatistics()
    for path in paths:
        merged.merge(streaming_statistics(str(path), columnar=columnar))
    return merged


def merged_task_histogram(paths, bins, value_range, columnar=True):
    """Task-duration histogram over the union of N files; returns
    ``(edges, counts)`` with the fixed edges shared by every file.
    Each file goes through :func:`repro.trace_format.streaming.
    streaming_task_histogram` — one definition of the binning — and
    the integer counts add exactly."""
    from ...trace_format.streaming import streaming_task_histogram
    merged = TaskHistogramAccumulator(bins, value_range)
    for path in paths:
        __, counts = streaming_task_histogram(str(path), bins,
                                              value_range,
                                              columnar=columnar)
        merged.counts += counts
    return merged.edges, merged.counts


def merged_comm_matrix(paths, columnar=True):
    """Summed core-to-core communication-byte matrix over N files.

    Every file must share one topology (the matrices are added
    entrywise); a core-count mismatch raises ``ValueError``.
    """
    from ..parallel import parallel_comm_matrix
    matrix = None
    for path in paths:
        partial = parallel_comm_matrix(str(path), workers=1,
                                       columnar=columnar)
        if matrix is None:
            matrix = partial.copy()
        elif partial.shape != matrix.shape:
            raise ValueError(
                "cannot merge comm matrices of different topologies: "
                "{} vs {}".format(matrix.shape, partial.shape))
        else:
            matrix += partial
    return matrix


@dataclass
class SweepRow:
    """One trace's line of a :class:`SweepTable`."""

    name: str
    param: object
    tasks: int
    duration: int
    average_parallelism: float
    locality_fraction: float
    idle_fraction: float


class SweepTable:
    """Per-parameter summary table over a suite's trace summaries.

    Rows keep the sweep order; :meth:`describe` renders the textual
    table the CLI prints, :meth:`to_dict` the machine-readable form.
    """

    def __init__(self, rows, param_name="param"):
        self.rows: List[SweepRow] = list(rows)
        self.param_name = param_name

    def __len__(self):
        return len(self.rows)

    def best(self, key=lambda row: row.duration):
        """The row minimizing ``key`` (default: wall-clock duration)."""
        if not self.rows:
            raise ValueError("empty sweep table")
        return min(self.rows, key=key)

    def describe(self):
        """Human-readable table, one line per trace."""
        header = ("{:>20} {:>12} {:>8} {:>14} {:>8} {:>8} {:>6}"
                  .format("name", self.param_name, "tasks", "duration",
                          "par", "local", "idle"))
        lines = [header]
        for row in self.rows:
            lines.append(
                "{:>20} {:>12} {:>8d} {:>14d} {:>8.2f} {:>7.1%} "
                "{:>5.1%}".format(
                    row.name, str(row.param), row.tasks, row.duration,
                    row.average_parallelism, row.locality_fraction,
                    row.idle_fraction))
        return "\n".join(lines)

    def to_dict(self):
        """JSON-friendly form of the table."""
        return {
            "param": self.param_name,
            "rows": [{
                "name": row.name, "param": row.param,
                "tasks": row.tasks, "duration": row.duration,
                "average_parallelism": row.average_parallelism,
                "locality_fraction": row.locality_fraction,
                "idle_fraction": row.idle_fraction,
            } for row in self.rows],
        }


def sweep_table(summaries, param=None):
    """Arrange per-trace summaries into a :class:`SweepTable`.

    ``param`` names the swept parameter to surface as the table's key
    column; when omitted, the first parameter present in any summary is
    used (falling back to the trace name).
    """
    summaries = list(summaries)
    if param is None:
        for summary in summaries:
            if summary.params:
                param = next(iter(summary.params))
                break
    rows = [SweepRow(
        name=summary.name,
        param=(summary.params.get(param) if param else summary.name),
        tasks=summary.tasks,
        duration=summary.duration,
        average_parallelism=summary.average_parallelism,
        locality_fraction=summary.locality_fraction,
        idle_fraction=summary.state_fraction(WorkerState.IDLE))
        for summary in summaries]
    return SweepTable(rows, param_name=param or "name")


def speedup_curve(summaries, baseline=None):
    """Durations normalized to a baseline summary (default: first).

    Returns a ``(names, speedups)`` pair where ``speedups[i]`` is
    ``baseline.duration / summaries[i].duration`` — the cross-run
    normalization behind the paper's block-size and scheduler
    comparisons.
    """
    summaries = list(summaries)
    if not summaries:
        return [], np.empty(0, dtype=np.float64)
    baseline = summaries[0] if baseline is None else baseline
    names = [summary.name for summary in summaries]
    durations = np.asarray([summary.duration for summary in summaries],
                           dtype=np.float64)
    reference = float(baseline.duration)
    with np.errstate(divide="ignore", invalid="ignore"):
        speedups = np.where(durations > 0, reference / durations, 0.0)
    return names, speedups
