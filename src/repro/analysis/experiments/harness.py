"""Single-run experiment harness shared by benches and examples.

Wires workloads, run-time configurations and tracing together:

* :func:`runtime_pair` builds the paper's two OpenStream configurations
  (Section IV): *non-optimized* (random work-stealing, NUMA-oblivious
  random data placement) and *optimized* (NUMA-aware scheduler and
  allocator with first-touch placement).
* :func:`seidel_trace` / :func:`kmeans_trace` run a workload under a
  configuration and return ``(SimResult, Trace)``.

Scaling: the paper's machines and inputs are too large to simulate in
seconds, so the default shapes here are scaled down while preserving
every qualitative property.  Set the environment variable
``REPRO_SCALE`` to ``small`` (CI), ``default`` or ``paper`` to change
the preset globally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ...runtime import (Machine, MemoryManager, NumaAwareScheduler,
                        RandomPlacement, RandomStealScheduler, SimConfig,
                        TraceCollector, run_program)
from ...workloads import (KmeansConfig, PipelineConfig, SeidelConfig,
                          WavefrontConfig, build_kmeans, build_pipeline,
                          build_seidel, build_wavefront)


@dataclass(frozen=True)
class ScalePreset:
    """Problem sizes for one scale level."""

    name: str
    seidel_machine_nodes: int
    seidel_blocks: int
    seidel_block_dim: int
    seidel_steps: int
    kmeans_machine_nodes: int
    kmeans_points: int
    kmeans_iterations: int


PRESETS = {
    "small": ScalePreset("small", seidel_machine_nodes=4,
                         seidel_blocks=16, seidel_block_dim=32,
                         seidel_steps=8, kmeans_machine_nodes=4,
                         kmeans_points=256_000, kmeans_iterations=3),
    "default": ScalePreset("default", seidel_machine_nodes=8,
                           seidel_blocks=24, seidel_block_dim=64,
                           seidel_steps=16, kmeans_machine_nodes=8,
                           kmeans_points=1_024_000, kmeans_iterations=5),
    # The paper's sizes: 24-node UV2000, 64x64 blocks of 256x256 doubles
    # over ~50 sweeps; 8-node Opteron, 40.96M points.  Slow in Python.
    "paper": ScalePreset("paper", seidel_machine_nodes=24,
                         seidel_blocks=64, seidel_block_dim=256,
                         seidel_steps=50, kmeans_machine_nodes=8,
                         kmeans_points=40_960_000, kmeans_iterations=6),
}


def preset(name=None):
    """The active scale preset (``REPRO_SCALE`` env var by default)."""
    name = name or os.environ.get("REPRO_SCALE", "default")
    if name not in PRESETS:
        raise KeyError("unknown scale preset {!r}; choose one of {}"
                       .format(name, sorted(PRESETS)))
    return PRESETS[name]


def runtime_pair(machine, optimized, seed=0):
    """(memory manager, scheduler) for one run-time configuration."""
    if optimized:
        memory = MemoryManager(machine)    # first-touch placement
        scheduler = NumaAwareScheduler(machine, seed=seed)
    else:
        memory = MemoryManager(
            machine, policy=RandomPlacement(machine.num_nodes, seed=seed))
        scheduler = RandomStealScheduler(machine, seed=seed)
    return memory, scheduler


def seidel_machine(scale=None):
    """The scaled-down SGI-UV2000-like machine seidel runs on."""
    return Machine(preset(scale).seidel_machine_nodes, 8,
                   name="SGI-UV2000-like")


def kmeans_machine(scale=None):
    """The scaled-down AMD-Opteron-like machine k-means runs on."""
    return Machine(preset(scale).kmeans_machine_nodes, 8,
                   name="AMD-Opteron-like")


def seidel_trace(optimized=True, scale=None, machine=None, config=None,
                 collect_rusage=True, collect_accesses=True, seed=0,
                 sim_config=None, faults=None):
    """Run seidel under one configuration; returns (result, trace)."""
    active = preset(scale)
    machine = machine if machine is not None else seidel_machine(scale)
    if config is None:
        config = SeidelConfig(blocks=active.seidel_blocks,
                              block_dim=active.seidel_block_dim,
                              steps=active.seidel_steps)
    memory, scheduler = runtime_pair(machine, optimized, seed=seed)
    program = build_seidel(machine, config, memory=memory)
    collector = TraceCollector(machine, collect_rusage=collect_rusage,
                               collect_accesses=collect_accesses)
    return run_program(program, scheduler, collector=collector,
                       config=sim_config, faults=faults)


#: The paper's k-means runs on a production OpenStream run-time whose
#: per-creation cost is small relative to the distance tasks; the
#: simulator's default creation cost is calibrated for seidel's
#: main-thread creation phase, so k-means runs override it.
KMEANS_SIM_CONFIG = SimConfig(create_cost=80)


def kmeans_trace(optimized=True, scale=None, machine=None, config=None,
                 block_size=10_000, optimize_branches=False,
                 collect_rusage=False, collect_accesses=True, seed=0,
                 sim_config=None, faults=None):
    """Run k-means under one configuration; returns (result, trace)."""
    active = preset(scale)
    machine = machine if machine is not None else kmeans_machine(scale)
    if config is None:
        config = KmeansConfig(num_points=active.kmeans_points,
                              block_size=block_size,
                              iterations=active.kmeans_iterations,
                              optimize_branches=optimize_branches)
    memory, scheduler = runtime_pair(machine, optimized, seed=seed)
    program = build_kmeans(machine, config, memory=memory)
    collector = TraceCollector(machine, collect_rusage=collect_rusage,
                               collect_accesses=collect_accesses)
    return run_program(program, scheduler, collector=collector,
                       config=sim_config or KMEANS_SIM_CONFIG,
                       faults=faults)


#: Wavefront grid order and pipeline frame count per scale preset.
WAVEFRONT_ORDERS = {"small": 12, "default": 20, "paper": 64}
PIPELINE_FRAMES = {"small": 48, "default": 96, "paper": 512}


def wavefront_trace(optimized=True, scale=None, machine=None,
                    config=None, seed=0, sim_config=None, faults=None,
                    collect_accesses=True):
    """Run the wavefront DAG under one configuration; returns
    ``(result, trace)``.  ``faults`` optionally plants a
    :class:`repro.runtime.faults.FaultInjectionConfig`."""
    active = preset(scale)
    # Wavefront parallelism is capped by the diagonal (= order), so a
    # narrower machine keeps cores meaningfully loaded.
    machine = machine if machine is not None else Machine(2, 4,
                                                          name="wavefront")
    if config is None:
        config = WavefrontConfig(order=WAVEFRONT_ORDERS[active.name],
                                 seed=seed)
    memory, scheduler = runtime_pair(machine, optimized, seed=seed)
    program = build_wavefront(machine, config, memory=memory)
    collector = TraceCollector(machine,
                               collect_accesses=collect_accesses)
    return run_program(program, scheduler, collector=collector,
                       config=sim_config, faults=faults)


def pipeline_trace(optimized=True, scale=None, machine=None,
                   config=None, seed=0, sim_config=None, faults=None,
                   straggler_stage=-1, collect_accesses=True):
    """Run the streaming pipeline under one configuration; returns
    ``(result, trace)``.  ``straggler_stage >= 0`` plants periodic
    application-level stragglers in that stage (the
    pipeline-with-stragglers scenario); ``faults`` additionally
    plants machine-level faults."""
    active = preset(scale)
    machine = machine if machine is not None else Machine(4, 4,
                                                          name="pipeline")
    if config is None:
        config = PipelineConfig(frames=PIPELINE_FRAMES[active.name],
                                straggler_stage=straggler_stage)
    memory, scheduler = runtime_pair(machine, optimized, seed=seed)
    program = build_pipeline(machine, config, memory=memory)
    collector = TraceCollector(machine,
                               collect_accesses=collect_accesses)
    return run_program(program, scheduler, collector=collector,
                       config=sim_config, faults=faults)


def kmeans_makespan(block_size, scale=None, machine=None, seed=0,
                    iterations=None, num_points=None):
    """Wall-clock (cycles) of one k-means run without tracing — the
    fast path behind the Fig. 12 block-size sweep."""
    active = preset(scale)
    machine = machine if machine is not None else kmeans_machine(scale)
    config = KmeansConfig(
        num_points=(active.kmeans_points if num_points is None
                    else num_points),
        block_size=block_size,
        iterations=(active.kmeans_iterations if iterations is None
                    else iterations))
    memory, scheduler = runtime_pair(machine, optimized=True, seed=seed)
    program = build_kmeans(machine, config, memory=memory)
    result, __ = run_program(program, scheduler,
                             config=KMEANS_SIM_CONFIG)
    return result.makespan
