"""Trace-diff engine: baseline-vs-candidate regression reports.

Comparative performance debugging needs a machine answer to "did this
run get worse, and where?".  :func:`diff_traces` compares two loaded
traces (either store) metric by metric and reports every deviation
that exceeds its tolerance:

* **state-time deltas** — per-state cycle totals (the Fig. 13 state
  breakdowns), plus wall-clock duration, average parallelism and the
  NUMA locality fraction;
* **counter-distribution shifts** — for every counter present in both
  traces, the L1 distance between the normalized sample-value
  histograms over the union range (0 = identical, 2 = disjoint);
* **task-duration distribution shift** — the same distance over task
  durations (the Fig. 16 histogram);
* **anomaly-count regressions** — per-kind finding counts from
  :func:`repro.core.anomalies.scan`.

Tolerances are configurable per family (:class:`DiffTolerances`); a
deviation is only reported when it *strictly* exceeds its tolerance,
so diffing a trace against itself yields an empty report at every
tolerance — including zero (the property test pins this).  The report
serializes to JSON (:meth:`TraceDiffReport.to_json`) for CI gates and
dashboards.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ...core import anomalies as anomaly_scan
from ...core import statistics
from ...core.events import WorkerState

#: Histogram bins used for the distribution-shift metrics.
DISTRIBUTION_BINS = 32


@dataclass(frozen=True)
class DiffTolerances:
    """Per-family thresholds; a delta must *exceed* its threshold to
    be reported, so zero tolerances still pass identical traces.

    ``relative`` bounds the scalar metrics (state times, duration,
    parallelism, locality) as a fraction of the baseline value —
    baseline-zero metrics compare absolutely against ``absolute``.
    ``distribution`` bounds the L1 histogram distances (range 0..2);
    ``anomalies`` is the allowed per-kind finding-count difference.
    """

    relative: float = 0.05
    absolute: float = 0.0
    distribution: float = 0.1
    anomalies: int = 0


#: The tightest gate: any deviation at all is a finding.
EXACT = DiffTolerances(relative=0.0, absolute=0.0, distribution=0.0,
                       anomalies=0)


@dataclass
class DiffEntry:
    """One metric whose deviation exceeded its tolerance."""

    metric: str
    baseline: float
    candidate: float
    delta: float
    relative: Optional[float]
    tolerance: float

    def describe(self):
        """One report line for this deviation."""
        relative = ("{:+.1%}".format(self.relative)
                    if self.relative is not None else "n/a")
        return ("{:<32} baseline {:>14.6g} candidate {:>14.6g} "
                "delta {:>+14.6g} ({})".format(
                    self.metric, self.baseline, self.candidate,
                    self.delta, relative))


@dataclass
class TraceDiffReport:
    """The machine-readable outcome of one baseline/candidate diff."""

    baseline: str
    candidate: str
    tolerances: DiffTolerances
    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def is_empty(self):
        """True when no metric deviated beyond its tolerance."""
        return not self.entries

    def __len__(self):
        return len(self.entries)

    def describe(self):
        """Human-readable multi-line report."""
        if self.is_empty:
            return ("no deviations beyond tolerance between {} and {}"
                    .format(self.baseline or "baseline",
                            self.candidate or "candidate"))
        lines = ["{} deviation(s) between {} and {}:".format(
            len(self.entries), self.baseline or "baseline",
            self.candidate or "candidate")]
        lines.extend("  " + entry.describe() for entry in self.entries)
        return "\n".join(lines)

    def to_dict(self):
        """JSON-pure dict (what :meth:`to_json` serializes)."""
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "tolerances": {
                "relative": self.tolerances.relative,
                "absolute": self.tolerances.absolute,
                "distribution": self.tolerances.distribution,
                "anomalies": self.tolerances.anomalies,
            },
            "empty": self.is_empty,
            "deviations": [{
                "metric": entry.metric,
                "baseline": entry.baseline,
                "candidate": entry.candidate,
                "delta": entry.delta,
                "relative": entry.relative,
                "tolerance": entry.tolerance,
            } for entry in self.entries],
        }

    def to_json(self, path=None, indent=2):
        """Serialize the report; writes ``path`` when given, returns
        the JSON text either way."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w") as stream:
                stream.write(text + "\n")
        return text


def _scalar_entries(pairs, tolerances):
    """Deviations among ``(metric, baseline, candidate)`` scalars.

    Relative comparison against a non-zero baseline; absolute
    comparison (``tolerances.absolute``) when the baseline is zero.
    Equal values can never be reported — the self-diff guarantee.
    """
    entries = []
    for metric, baseline, candidate in pairs:
        baseline = float(baseline)
        candidate = float(candidate)
        delta = candidate - baseline
        if delta == 0.0:
            continue
        if baseline != 0.0:
            relative = delta / abs(baseline)
            if abs(relative) > tolerances.relative:
                entries.append(DiffEntry(
                    metric=metric, baseline=baseline,
                    candidate=candidate, delta=delta,
                    relative=relative,
                    tolerance=tolerances.relative))
        elif abs(delta) > tolerances.absolute:
            entries.append(DiffEntry(
                metric=metric, baseline=baseline, candidate=candidate,
                delta=delta, relative=None,
                tolerance=tolerances.absolute))
    return entries


def distribution_shift(baseline_values, candidate_values,
                       bins=DISTRIBUTION_BINS):
    """L1 distance between two samples' normalized histograms.

    Both samples are binned over the union of their ranges, counts are
    normalized to fractions, and the distance is the sum of absolute
    per-bin differences — 0.0 for identical distributions, 2.0 for
    fully disjoint ones.  Two empty samples are identical; one empty
    sample against a non-empty one is maximally distant.
    """
    baseline_values = np.asarray(baseline_values, dtype=np.float64)
    candidate_values = np.asarray(candidate_values, dtype=np.float64)
    if len(baseline_values) == 0 and len(candidate_values) == 0:
        return 0.0
    if len(baseline_values) == 0 or len(candidate_values) == 0:
        return 2.0
    lo = min(baseline_values.min(), candidate_values.min())
    hi = max(baseline_values.max(), candidate_values.max())
    if hi == lo:
        hi = lo + 1.0
    base_counts, __ = np.histogram(baseline_values, bins=bins,
                                   range=(lo, hi))
    cand_counts, __ = np.histogram(candidate_values, bins=bins,
                                   range=(lo, hi))
    base_fractions = base_counts / base_counts.sum()
    cand_fractions = cand_counts / cand_counts.sum()
    return float(np.abs(base_fractions - cand_fractions).sum())


def _counter_values(trace, counter_id):
    """Every sample value of one counter, across all cores."""
    values = [trace.counter_samples(core, counter_id)[1]
              for core in range(trace.num_cores)]
    values = [array for array in values if len(array)]
    if not values:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(values)


def _distribution_entries(baseline, candidate, tolerances, bins):
    """Counter and task-duration distribution-shift deviations."""
    entries = []
    base_durations = (baseline.tasks.columns["end"]
                      - baseline.tasks.columns["start"])
    cand_durations = (candidate.tasks.columns["end"]
                      - candidate.tasks.columns["start"])
    shift = distribution_shift(base_durations, cand_durations, bins)
    if shift > tolerances.distribution:
        entries.append(DiffEntry(
            metric="distribution/task_duration", baseline=0.0,
            candidate=shift, delta=shift, relative=None,
            tolerance=tolerances.distribution))
    base_counters = {description.name: description.counter_id
                     for description in baseline.counter_descriptions}
    cand_counters = {description.name: description.counter_id
                     for description in candidate.counter_descriptions}
    for name in sorted(set(base_counters) & set(cand_counters)):
        shift = distribution_shift(
            _counter_values(baseline, base_counters[name]),
            _counter_values(candidate, cand_counters[name]), bins)
        if shift > tolerances.distribution:
            entries.append(DiffEntry(
                metric="distribution/counter/{}".format(name),
                baseline=0.0, candidate=shift, delta=shift,
                relative=None, tolerance=tolerances.distribution))
    return entries


def _anomaly_entries(baseline, candidate, tolerances):
    """Per-kind anomaly-count deviations beyond the allowed slack."""
    def counts(trace):
        tally = {}
        for finding in anomaly_scan.scan(trace):
            tally[finding.kind] = tally.get(finding.kind, 0) + 1
        return tally

    base_counts = counts(baseline)
    cand_counts = counts(candidate)
    entries = []
    for kind in sorted(set(base_counts) | set(cand_counts)):
        base = base_counts.get(kind, 0)
        cand = cand_counts.get(kind, 0)
        if abs(cand - base) > tolerances.anomalies:
            entries.append(DiffEntry(
                metric="anomalies/{}".format(kind),
                baseline=float(base), candidate=float(cand),
                delta=float(cand - base),
                relative=((cand - base) / base if base else None),
                tolerance=float(tolerances.anomalies)))
    return entries


def diff_traces(baseline, candidate, tolerances=None,
                baseline_name="baseline", candidate_name="candidate",
                bins=DISTRIBUTION_BINS):
    """Compare two loaded traces; returns a :class:`TraceDiffReport`.

    Both arguments accept either store (:class:`~repro.core.trace.
    Trace` or :class:`~repro.core.columnar.ColumnarTrace`, including
    memory-mapped ones).  Every reported deviation *strictly* exceeds
    its tolerance, so identical traces produce an empty report at any
    tolerance setting.
    """
    tolerances = DiffTolerances() if tolerances is None else tolerances
    scalars = [
        ("duration", baseline.duration, candidate.duration),
        ("tasks", len(baseline.tasks), len(candidate.tasks)),
        ("average_parallelism",
         statistics.average_parallelism(baseline),
         statistics.average_parallelism(candidate)),
        ("locality_fraction",
         statistics.locality_fraction(baseline),
         statistics.locality_fraction(candidate)),
    ]
    base_states = statistics.state_time_summary(baseline)
    cand_states = statistics.state_time_summary(candidate)
    for state in sorted(set(base_states) | set(cand_states)):
        scalars.append((
            "state_time/{}".format(WorkerState(state).name),
            base_states.get(state, 0), cand_states.get(state, 0)))
    entries = _scalar_entries(scalars, tolerances)
    entries.extend(_distribution_entries(baseline, candidate,
                                         tolerances, bins))
    entries.extend(_anomaly_entries(baseline, candidate, tolerances))
    return TraceDiffReport(baseline=baseline_name,
                           candidate=candidate_name,
                           tolerances=tolerances, entries=entries)


def diff_trace_files(baseline_path, candidate_path, tolerances=None,
                     cache=True, bins=DISTRIBUTION_BINS):
    """:func:`diff_traces` over two trace *files*, opened through the
    mapped columnar cache (``cache=True``) so repeated gate runs map
    pages instead of re-parsing."""
    from ...trace_format import read_trace

    def load(path):
        if cache:
            return read_trace(str(path), cache=True)
        return read_trace(str(path), columnar=True)

    return diff_traces(
        load(baseline_path), load(candidate_path),
        tolerances=tolerances,
        baseline_name=os.path.basename(str(baseline_path)),
        candidate_name=os.path.basename(str(candidate_path)),
        bins=bins)
