"""Comparative rendering: side-by-side and overlay panels.

The paper's figures contrast runs visually — Fig. 13's stacked state
timelines across block sizes, Fig. 14's paired NUMA maps, Fig. 15's
matrices.  This module composes the existing single-trace renderers
(:mod:`repro.render`) into multi-trace panels on one
:class:`~repro.render.framebuffer.Framebuffer`:

* :func:`render_timelines_side_by_side` — one timeline strip per
  trace, stacked vertically with separator rows (every strip rendered
  at a common time axis so phases align);
* :func:`render_matrices_side_by_side` — N matrices in one row, each
  normalized to the shared peak so shades are comparable;
* :func:`render_state_overlay` — N traces' workers-in-state curves
  overlaid in one plot, one color per trace (the Fig. 3 view across
  runs).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ...core.events import WorkerState
from ...core.metrics import state_count_series
from ...render import (Framebuffer, StateMode, TimelineView,
                       render_matrix, render_timeline)

#: Distinct overlay colors, one per trace (cycled when exceeded).
OVERLAY_COLORS = ((220, 60, 60), (60, 110, 220), (50, 170, 90),
                  (230, 160, 40), (160, 70, 200), (90, 200, 210))

#: Separator color between stacked panels.
SEPARATOR = (40, 40, 40)


def _common_bounds(traces):
    """The union time range of N traces (shared comparison axis)."""
    begin = min(int(trace.begin) for trace in traces)
    end = max(int(trace.end) for trace in traces)
    return begin, max(end, begin + 1)


def render_timelines_side_by_side(traces, mode=None, width=1024,
                                  lane_height=4, gap=2, start=None,
                                  end=None):
    """Stack one timeline strip per trace into a single framebuffer.

    Every strip is rendered with the same mode over one shared time
    axis — the *union* time range of all traces by default,
    ``[start, end)`` when given — so a phase at pixel ``x`` in one
    strip is simultaneous with pixel ``x`` in every other — the
    property that makes Fig. 13-style comparisons readable.  Returns
    the composite :class:`Framebuffer`.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace to render")
    begin, finish = _common_bounds(traces)
    begin = begin if start is None else int(start)
    end = finish if end is None else int(end)
    heights = [lane_height * trace.num_cores for trace in traces]
    total = sum(heights) + gap * (len(traces) - 1)
    composite = Framebuffer(width, total, background=SEPARATOR)
    offset = 0
    for trace, height in zip(traces, heights):
        view = replace(TimelineView.fit(trace, width, height),
                       start=begin, end=end)
        strip = render_timeline(trace, mode or StateMode(), view)
        composite.pixels[offset:offset + height] = strip.pixels
        composite.rect_calls += strip.rect_calls
        composite.line_calls += strip.line_calls
        composite.pixels_drawn += strip.pixels_drawn
        offset += height + gap
    return composite


def render_matrices_side_by_side(matrices, cell_size=16, gap=8):
    """Render N equally-sized matrices in one row, sharing one shade
    scale (every matrix normalized to the global peak) so a darker
    cell always means more traffic, across panels."""
    matrices = [np.asarray(matrix, dtype=np.float64)
                for matrix in matrices]
    if not matrices:
        raise ValueError("need at least one matrix to render")
    shape = matrices[0].shape
    for matrix in matrices[1:]:
        if matrix.shape != shape:
            raise ValueError("matrix panels must share one shape")
    peak = max(float(matrix.max()) for matrix in matrices)
    peak = peak if peak > 0 else 1.0
    panels = [render_matrix(matrix, cell_size=cell_size, peak=peak)
              for matrix in matrices]
    height = max(panel.height for panel in panels)
    width = (sum(panel.width for panel in panels)
             + gap * (len(panels) - 1))
    composite = Framebuffer(width, height, background=(255, 255, 255))
    offset = 0
    for panel in panels:
        composite.pixels[:panel.height,
                         offset:offset + panel.width] = panel.pixels
        composite.rect_calls += panel.rect_calls
        composite.pixels_drawn += panel.pixels_drawn
        offset += panel.width + gap
    return composite


def render_state_overlay(traces, state=WorkerState.IDLE, width=512,
                         height=128, colors=OVERLAY_COLORS):
    """Overlay N traces' workers-in-``state`` curves in one plot.

    Each trace's :func:`~repro.core.metrics.state_count_series` over
    the union time range becomes one polyline, colored per trace — the
    across-runs form of the Fig. 3 idle-workers view.  Returns
    ``(framebuffer, legend)`` where ``legend`` maps each trace index
    to its color.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace to render")
    begin, end = _common_bounds(traces)
    peak = max(max(trace.num_cores for trace in traces), 1)
    framebuffer = Framebuffer(width, height, background=(250, 250, 250))
    legend = {}
    for index, trace in enumerate(traces):
        color = colors[index % len(colors)]
        legend[index] = color
        __, counts = state_count_series(trace, state, width,
                                        start=begin, end=end)
        scaled = np.clip(counts / peak, 0.0, 1.0)
        ys = (height - 1 - np.round(scaled * (height - 1))).astype(int)
        for x in range(1, width):
            framebuffer.draw_line(x - 1, ys[x - 1], x, ys[x], color)
    return framebuffer, legend
