"""Parallel multi-trace experiment engine.

The comparative layer the paper's evaluation implies: run or ingest N
traces (parameter sweeps over workloads, schedulers and block sizes —
Figs. 12–19), analyze them through a worker pool that opens each file
via the memory-mapped columnar cache, aggregate statistics across
traces, diff a candidate against a baseline with configurable
tolerances, and render side-by-side/overlay comparison panels.

Modules:

* :mod:`~repro.analysis.experiments.harness` — the single-run
  harness (scale presets, run-time pairs, per-workload trace
  builders); also importable as ``repro.experiments`` for
  compatibility;
* :mod:`~repro.analysis.experiments.suite` — sweep specs, the
  durable suite runner and per-trace summaries;
* :mod:`~repro.analysis.experiments.queue` — the SQLite job journal
  (states, leases, retry/backoff, quarantine) behind
  :func:`run_suite`;
* :mod:`~repro.analysis.experiments.store` — the content-addressed
  trace store (dedup across overlapping sweeps, atomic publication);
* :mod:`~repro.analysis.experiments.engine` — the crash-resilient
  drive loop tying journal, store and worker processes together;
* :mod:`~repro.analysis.experiments.aggregate` — exact cross-trace
  accumulator merges and per-parameter summary tables;
* :mod:`~repro.analysis.experiments.diff` — the baseline/candidate
  regression reports (JSON-serializable);
* :mod:`~repro.analysis.experiments.render` — comparison panels on
  the shared framebuffer.
"""

from .aggregate import (SweepRow, SweepTable, merged_comm_matrix,
                        merged_statistics, merged_task_histogram,
                        speedup_curve, sweep_table)
from .diff import (DiffEntry, DiffTolerances, EXACT, TraceDiffReport,
                   diff_trace_files, diff_traces, distribution_shift)
from .harness import (KMEANS_SIM_CONFIG, PIPELINE_FRAMES, PRESETS,
                      ScalePreset, WAVEFRONT_ORDERS, kmeans_machine,
                      kmeans_makespan, kmeans_trace, pipeline_trace,
                      preset, runtime_pair, seidel_machine, seidel_trace,
                      wavefront_trace)
from .engine import EngineReport, resume_suite_engine, run_suite_engine
from .queue import (ExperimentError, JobQueue, JobRecord, QueueError,
                    RetryPolicy, describe_queue, journal_path,
                    queue_status)
from .render import (render_matrices_side_by_side, render_state_overlay,
                     render_timelines_side_by_side)
from .store import StoreError, TraceStore, job_key, spec_key
from .suite import (ExperimentSpec, TraceSummary, analyze_traces,
                    block_size_sweep, fault_sweep, generate_trace,
                    resume_suite, run_and_analyze, run_suite,
                    scheduler_sweep, summarize_trace, synthetic_sweep)

__all__ = [
    "SweepRow", "SweepTable", "merged_comm_matrix", "merged_statistics",
    "merged_task_histogram", "speedup_curve", "sweep_table",
    "DiffEntry", "DiffTolerances", "EXACT", "TraceDiffReport",
    "diff_trace_files", "diff_traces", "distribution_shift",
    "KMEANS_SIM_CONFIG", "PIPELINE_FRAMES", "PRESETS", "ScalePreset",
    "WAVEFRONT_ORDERS", "kmeans_machine",
    "kmeans_makespan", "kmeans_trace", "pipeline_trace", "preset",
    "runtime_pair", "seidel_machine", "seidel_trace", "wavefront_trace",
    "render_matrices_side_by_side", "render_state_overlay",
    "render_timelines_side_by_side",
    "EngineReport", "resume_suite_engine", "run_suite_engine",
    "ExperimentError", "JobQueue", "JobRecord", "QueueError",
    "RetryPolicy", "describe_queue", "journal_path", "queue_status",
    "StoreError", "TraceStore", "job_key", "spec_key",
    "ExperimentSpec", "TraceSummary", "analyze_traces",
    "block_size_sweep", "fault_sweep", "generate_trace",
    "resume_suite", "run_and_analyze", "run_suite",
    "scheduler_sweep", "summarize_trace", "synthetic_sweep",
]
