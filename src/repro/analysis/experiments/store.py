"""Content-addressed trace store for the experiment engine.

Sweeps overlap: the scheduler sweep's ``seidel_opt`` point and a later
combined sweep's optimized Seidel point are the *same simulation*, and
the PR 5 engine happily ran it twice.  The store deduplicates them by
keying every generated trace on a stable content hash of the
generation-relevant spec fields — workload, run-time flavor, scale,
seed, block size, event budget and planted faults, but *not* the
display name or swept-parameter labels, which do not change a single
trace byte.  Two specs with equal :func:`spec_key` share one stored
artifact; a sweep that needs it again gets a free cache hit.

Publication is crash-safe: artifacts are finalized with an atomic
``os.replace`` from a temp file inside the store, so a SIGKILL at any
instant leaves either the complete artifact or nothing — never a
half-written trace under the final name.  Materializing into a suite
directory prefers a hardlink (zero-copy) and falls back to
``copy2``, which preserves ``mtime_ns`` so the ``.ostc`` sidecar's
source stamp stays valid across store round-trips.

The store also owns artifact health: :meth:`TraceStore.verify` runs
the CRC pass of :func:`repro.trace_format.verify_trace` and
:meth:`TraceStore.quarantine_artifact` moves a corrupt file aside
(keeping it for post-mortem) so the engine can regenerate it.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile

from ...trace_format import verify_trace
from ...trace_format.format import VERSION as FORMAT_VERSION
from .queue import ExperimentError
from .suite import ExperimentSpec

#: Bump when the meaning of stored artifacts changes (trace format
#: bumps are covered separately by ``FORMAT_VERSION`` in the key).
STORE_VERSION = 1

#: Spec fields that determine the generated trace bytes.  ``name`` and
#: ``params`` are labels — excluded so renamed sweep points still hit.
_GENERATION_FIELDS = ("workload", "optimized", "scale", "seed",
                      "block_size", "events", "faults")


class StoreError(ExperimentError):
    """A content-store operation failed."""


def _canonical(value):
    """JSON-stable view of a spec field value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_canonical(item) for item in value]
    return value


def _tupled(value):
    """Inverse of :func:`_canonical`: lists back to nested tuples, so
    round-tripped specs stay hashable and equal to the originals."""
    if isinstance(value, list):
        return tuple(_tupled(item) for item in value)
    return value


def spec_to_json(spec):
    """Canonical JSON encoding of a spec (journal storage format)."""
    payload = {
        "name": spec.name, "workload": spec.workload,
        "optimized": spec.optimized, "scale": spec.scale,
        "seed": spec.seed, "block_size": spec.block_size,
        "events": spec.events,
        "params": _canonical(spec.params),
        "faults": _canonical(spec.faults),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_from_json(text):
    """Rebuild an :class:`ExperimentSpec` from :func:`spec_to_json`."""
    try:
        payload = json.loads(text)
        return ExperimentSpec(
            name=payload["name"], workload=payload["workload"],
            optimized=payload["optimized"], scale=payload["scale"],
            seed=payload["seed"], block_size=payload["block_size"],
            events=payload["events"],
            params=_tupled(payload["params"]),
            faults=_tupled(payload["faults"]))
    except (ValueError, KeyError, TypeError) as error:
        raise StoreError("malformed spec in journal: {}".format(error))


def spec_key(spec):
    """Content address of the trace a spec generates.

    Stable across runs and processes; includes the trace-format and
    store versions so format bumps key to fresh artifacts instead of
    serving stale bytes.
    """
    payload = {name: _canonical(getattr(spec, name))
               for name in _GENERATION_FIELDS}
    payload["__format__"] = FORMAT_VERSION
    payload["__store__"] = STORE_VERSION
    blob = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def job_key(spec):
    """Journal identity of a job: the full spec, labels included (two
    differently-named points of one sweep are two jobs, even when they
    share a :func:`spec_key` and therefore one stored artifact)."""
    return hashlib.sha256(spec_to_json(spec).encode()).hexdigest()


class TraceStore:
    """A directory of content-addressed ``.ost`` artifacts."""

    def __init__(self, root):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key):
        """Where artifact ``key`` lives (whether or not it exists)."""
        return os.path.join(self.root, "{}.ost".format(key))

    def contains(self, key):
        """Whether artifact ``key`` has been published."""
        return os.path.exists(self.path_for(key))

    def publish(self, key, source_path):
        """Atomically adopt ``source_path`` as artifact ``key``.

        The source is copied to a temp file inside the store and
        finalized with ``os.replace`` — a crash mid-publish leaves no
        partial artifact.  Publishing an already-present key is a
        no-op (first writer wins; contents are equal by construction).
        Returns the stored path.
        """
        final = self.path_for(key)
        if os.path.exists(final):
            return final
        descriptor, temp = tempfile.mkstemp(
            dir=self.root, prefix=".publish-", suffix=".tmp")
        try:
            os.close(descriptor)
            shutil.copy2(source_path, temp)
            os.replace(temp, final)
        except OSError as error:
            raise StoreError("cannot publish {}: {}".format(
                key[:12], error))
        finally:
            if os.path.exists(temp):
                os.unlink(temp)
        return final

    def materialize(self, key, destination):
        """Place artifact ``key`` at ``destination``.

        Prefers a hardlink (zero-copy, shares bytes with the store);
        falls back to ``copy2``, which preserves ``mtime_ns`` so any
        ``.ostc`` sidecar stamped against the stored file stays fresh.
        """
        stored = self.path_for(key)
        if not os.path.exists(stored):
            raise StoreError("artifact {} is not in the store".format(
                key[:12]))
        if os.path.exists(destination):
            os.unlink(destination)
        try:
            os.link(stored, destination)
        except OSError:
            shutil.copy2(stored, destination)
        return destination

    def verify(self, key):
        """CRC-verify artifact ``key``; returns a
        :class:`~repro.trace_format.chunked.TraceVerification` (never
        raises on corruption — missing artifacts are ``ok=False``)."""
        stored = self.path_for(key)
        if not os.path.exists(stored):
            from ...trace_format.chunked import TraceVerification
            return TraceVerification(
                ok=False, indexed=False, crc_checked=False,
                chunks_ok=0, chunks_bad=0,
                reason="artifact missing from store")
        return verify_trace(stored)

    def quarantine_artifact(self, key, reason=""):
        """Move a corrupt artifact aside (kept for post-mortem) so the
        key reads as absent and the engine regenerates it.  Returns
        the quarantine path, or None when the artifact was absent."""
        stored = self.path_for(key)
        if not os.path.exists(stored):
            return None
        quarantine_dir = os.path.join(self.root, "quarantine")
        os.makedirs(quarantine_dir, exist_ok=True)
        target = os.path.join(quarantine_dir, "{}.ost".format(key))
        os.replace(stored, target)
        if reason:
            with open(target + ".reason", "w") as stream:
                stream.write(str(reason) + "\n")
        return target
