"""NUMA memory model: regions, page placement and allocation policies.

OpenStream exchanges data between dependent tasks through explicit memory
regions (stream buffers).  Aftermath derives all of its NUMA analyses from
two pieces of trace information: the address ranges accessed by each task
and the NUMA placement of each memory region (stored once per region, not
per access — Section VI-A).

The simulator mirrors that: a :class:`MemoryManager` hands out address
ranges, places their pages on NUMA nodes according to a policy, and
reports placement for any address so the tracer can record it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

PAGE_SIZE = 4096


@dataclass
class MemoryRegion:
    """A contiguous virtual address range used for inter-task data exchange.

    ``pages[i]`` holds the NUMA node of the i-th page, or ``None`` while
    the page has not been physically allocated yet (first-touch policy).
    """

    region_id: int
    address: int
    size: int
    name: str = ""
    pages: List[Optional[int]] = field(default_factory=list)

    def __post_init__(self):
        if not self.pages:
            self.pages = [None] * self.num_pages
        self._allocated = sum(1 for node in self.pages if node is not None)
        self._node_set = set(node for node in self.pages if node is not None)

    @property
    def num_pages(self):
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE

    @property
    def end(self):
        return self.address + self.size

    def contains(self, address):
        return self.address <= address < self.end

    def page_index(self, address):
        if not self.contains(address):
            raise ValueError("address 0x{:x} outside region {}"
                             .format(address, self.region_id))
        return (address - self.address) // PAGE_SIZE

    def node_of(self, address):
        """NUMA node holding ``address``, or ``None`` if not yet allocated."""
        return self.pages[self.page_index(address)]

    def place_page(self, index, node):
        """Physically allocate page ``index`` on ``node`` (internal)."""
        if self.pages[index] is None:
            self._allocated += 1
        self.pages[index] = node
        self._node_set.add(node)

    @property
    def uniform_node(self):
        """The single node holding *all* pages, or ``None`` if mixed or
        not fully allocated.  Used as a fast path by access accounting."""
        if self._allocated == self.num_pages and len(self._node_set) == 1:
            return next(iter(self._node_set))
        return None

    def predominant_node(self):
        """The node holding the largest share of allocated pages."""
        counts: Dict[int, int] = {}
        for node in self.pages:
            if node is not None:
                counts[node] = counts.get(node, 0) + 1
        if not counts:
            return None
        return max(counts, key=lambda n: (counts[n], -n))


class AllocationPolicy:
    """Decides the placement of a page at physical-allocation time."""

    def place(self, toucher_node, page_index):
        raise NotImplementedError


class FirstTouch(AllocationPolicy):
    """Pages land on the node of the first core that touches them.

    This is the Linux default and the root cause of the seidel anomaly in
    Section III-B: initialization tasks trigger all the physical
    allocation (and the associated OS time).
    """

    def place(self, toucher_node, page_index):
        return toucher_node


class Interleaved(AllocationPolicy):
    """Round-robin placement across nodes (``numactl --interleave``)."""

    def __init__(self, num_nodes):
        self.num_nodes = num_nodes

    def place(self, toucher_node, page_index):
        return page_index % self.num_nodes


class RandomPlacement(AllocationPolicy):
    """Uniform random placement; models the paper's *non-optimized*
    configuration in which data placement ignores NUMA entirely."""

    def __init__(self, num_nodes, seed=0):
        self.num_nodes = num_nodes
        self._rng = random.Random(seed)

    def place(self, toucher_node, page_index):
        return self._rng.randrange(self.num_nodes)


class HostilePlacement(AllocationPolicy):
    """Adversarial placement: every page lands on the node *farthest*
    from its first toucher (by the machine's distance matrix).

    This is the NUMA-hostile fault of the scenario zoo — the
    worst-case mirror image of :class:`FirstTouch`, turning every
    access into maximally remote traffic so the locality analyses
    have a known-bad ground truth to flag."""

    def __init__(self, machine):
        self.machine = machine

    def place(self, toucher_node, page_index):
        nodes = range(self.machine.num_nodes)
        return max(nodes, key=lambda node: (
            self.machine.access_factor(toucher_node, node), node))


class MemoryManager:
    """Allocates regions and resolves addresses to regions and NUMA nodes."""

    def __init__(self, machine, policy=None, base_address=0x10000000):
        self.machine = machine
        self.policy = policy if policy is not None else FirstTouch()
        self._next_address = base_address
        self._next_region_id = 0
        self.regions: List[MemoryRegion] = []

    def allocate(self, size, name=""):
        """Reserve a virtual region; physical pages appear on first touch."""
        if size <= 0:
            raise ValueError("region size must be positive")
        region = MemoryRegion(region_id=self._next_region_id,
                              address=self._next_address, size=size,
                              name=name)
        self._next_region_id += 1
        # Keep regions page-aligned and non-adjacent so lookups
        # are unambiguous.
        self._next_address += (region.num_pages + 1) * PAGE_SIZE
        self.regions.append(region)
        return region

    def region_of(self, address):
        """Region containing ``address`` (binary search over sorted
        regions)."""
        lo, hi = 0, len(self.regions)
        while lo < hi:
            mid = (lo + hi) // 2
            region = self.regions[mid]
            if address < region.address:
                hi = mid
            elif address >= region.end:
                lo = mid + 1
            else:
                return region
        return None

    def touch(self, region, offset, size, toucher_node):
        """Record an access; physically allocate untouched pages.

        Returns the number of pages that were faulted in by this access,
        which the OS model converts into system time and resident size.
        """
        if offset < 0 or offset + size > region.size:
            raise ValueError("access outside region bounds")
        first = offset // PAGE_SIZE
        last = (offset + max(size, 1) - 1) // PAGE_SIZE
        faults = 0
        for index in range(first, last + 1):
            if region.pages[index] is None:
                region.place_page(
                    index, self.policy.place(toucher_node, index))
                faults += 1
        return faults

    def access_nodes(self, region, offset, size):
        """Bytes of the access served by each NUMA node.

        Unallocated pages are ignored (the simulator always touches before
        asking, so this only happens for zero-fault reads of fresh pages).
        """
        node = region.uniform_node
        if node is not None:
            return {node: size}
        first = offset // PAGE_SIZE
        last = (offset + max(size, 1) - 1) // PAGE_SIZE
        per_node: Dict[int, int] = {}
        remaining = size
        cursor = offset
        for index in range(first, last + 1):
            page_end = (index + 1) * PAGE_SIZE
            chunk = min(remaining, page_end - cursor)
            node = region.pages[index]
            if node is not None:
                per_node[node] = per_node.get(node, 0) + chunk
            cursor += chunk
            remaining -= chunk
        return per_node
