"""Machine description files.

Aftermath traces embed the machine's topology, and the tool "relates
this information to the machine's topology" (Section I).  For
experiments it is convenient to describe machines externally — the way
``numactl --hardware`` reports them — including a custom distance
matrix.  This module loads/saves machine descriptions as JSON and
offers the common interconnect shapes as generators.
"""

from __future__ import annotations

import json

from .topology import Machine


def machine_to_dict(machine):
    """Serializable description including the full distance matrix."""
    return {
        "name": machine.name,
        "num_nodes": machine.num_nodes,
        "cores_per_node": machine.cores_per_node,
        "distances": [[machine.distance(a, b)
                       for b in range(machine.num_nodes)]
                      for a in range(machine.num_nodes)],
    }


def machine_from_dict(data):
    """Rebuild a :class:`Machine`, trusting the stored distances."""
    machine = Machine(num_nodes=data["num_nodes"],
                      cores_per_node=data["cores_per_node"],
                      name=data.get("name", "machine"))
    distances = data.get("distances")
    if distances is not None:
        validate_distances(distances, data["num_nodes"])
        machine._distance = [list(row) for row in distances]
    return machine


def validate_distances(distances, num_nodes):
    """numactl invariants: square, 10 on the diagonal, symmetric,
    remote distances strictly above local."""
    if len(distances) != num_nodes:
        raise ValueError("distance matrix must be {0}x{0}"
                         .format(num_nodes))
    for a, row in enumerate(distances):
        if len(row) != num_nodes:
            raise ValueError("distance matrix must be square")
        if row[a] != 10:
            raise ValueError("local distance must be 10")
        for b, value in enumerate(row):
            if a != b and value <= 10:
                raise ValueError("remote distance must exceed 10")
            if distances[b][a] != value:
                raise ValueError("distance matrix must be symmetric")
    return True


def save_machine(machine, path):
    with open(path, "w") as handle:
        json.dump(machine_to_dict(machine), handle, indent=2)


def load_machine(path):
    with open(path) as handle:
        return machine_from_dict(json.load(handle))


def mesh_machine(rows, cols, cores_per_node=8, base=20, per_hop=5,
                 name=None):
    """A 2-D mesh interconnect: distance grows with Manhattan hops."""
    num_nodes = rows * cols
    machine = Machine(num_nodes, cores_per_node,
                      name=name or "mesh-{}x{}".format(rows, cols))
    distances = []
    for a in range(num_nodes):
        row = []
        ax, ay = a % cols, a // cols
        for b in range(num_nodes):
            bx, by = b % cols, b // cols
            hops = abs(ax - bx) + abs(ay - by)
            row.append(10 if hops == 0 else base + per_hop * (hops - 1))
        distances.append(row)
    machine._distance = distances
    return machine


def fully_connected_machine(num_nodes, cores_per_node=8, remote=22,
                            name=None):
    """A crossbar: every remote node is equally far (small SMPs)."""
    machine = Machine(num_nodes, cores_per_node,
                      name=name or "crossbar-{}".format(num_nodes))
    machine._distance = [[10 if a == b else remote
                          for b in range(num_nodes)]
                         for a in range(num_nodes)]
    return machine
