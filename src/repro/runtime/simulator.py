"""Discrete-event simulation of a task-parallel run-time on a NUMA machine.

One worker thread is pinned to each core of the :class:`Machine`.
Workers traverse the states Aftermath visualizes (Section II-B): they
execute tasks (RUNNING), create child tasks (CREATE), broadcast data to
consumers (BROADCAST), steal work (STEAL), spin in the work-stealing
loop when out of work (IDLE) and wait on the final barrier (SYNC).

Task execution cost combines the task's computational ``work`` with a
NUMA-aware memory model: every byte accessed is charged a per-byte cost
scaled by the NUMA distance between the executing core's node and the
node holding the page, and first-touch page faults stall the task and
consume OS system time.  These mechanisms produce every cross-layer
anomaly studied in the paper: slow first-touch initialization tasks
(Section III-B), granularity/overhead trade-offs (Section III-C), the
locality gap between the NUMA-oblivious and NUMA-aware configurations
(Section IV) and counter/duration correlations (Section V).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.events import DiscreteEventKind, WorkerState
from .counters import (CounterModelConfig, HardwareCounters,
                       OS_RESIDENT_KB, OS_SYSTEM_TIME_US)
from .os_model import OsModel, OsModelConfig
from .tracing import TraceCollector


@dataclass
class SimConfig:
    """Cost model of the simulated run-time (all times in cycles)."""

    cycles_per_byte_read: float = 0.8
    cycles_per_byte_write: float = 0.8
    task_overhead: int = 600          # per-task dispatch/management cost
    create_cost: int = 250            # per created task, on the creator
    steal_cost: int = 1200            # transferring a stolen task
    wake_latency: int = 800           # enqueue -> idle worker reaction
    broadcast_threshold: int = 4      # dependents that trigger a broadcast
    broadcast_cost: int = 400         # per consumer of a broadcast
    final_barrier_cost: int = 2000    # SYNC at the end of the execution
    seed: int = 0


class _NullCollector:
    """Tracing disabled: every hook is a no-op."""

    def state(self, *args):
        pass

    def task_execution(self, *args):
        pass

    def memory_access(self, *args):
        pass

    def counter_sample(self, *args):
        pass

    def discrete_event(self, *args, **kwargs):
        pass

    def comm_event(self, *args, **kwargs):
        pass

    def record_static(self, *args):
        pass


@dataclass
class _Worker:
    core: int
    current_task: Optional[object] = None
    idle_since: Optional[int] = None
    waking: bool = False
    last_active: int = 0


@dataclass
class SimResult:
    """Outcome of a simulation run."""

    makespan: int
    state_cycles: Dict[int, int]
    steals: int
    page_faults: int
    tasks_executed: int

    @property
    def idle_cycles(self):
        return self.state_cycles.get(int(WorkerState.IDLE), 0)

    @property
    def running_cycles(self):
        return self.state_cycles.get(int(WorkerState.RUNNING), 0)


# Event kinds ordered so that same-timestamp events process sensibly.
_EV_CREATED = 0     # a task finished being created
_EV_FINISH = 1      # a worker finishes its current task
_EV_WAKE = 2        # a worker looks for work

#: Sentinel occupying worker 0 while the control program creates the
#: root tasks (the worker joins the pool only afterwards).
_MAIN_CREATION = object()


class Simulator:
    """Executes a finalized :class:`Program` on a :class:`Machine`."""

    def __init__(self, program, scheduler, collector=None, config=None,
                 os_config=None, counter_config=None, faults=None):
        if not program.finalized:
            program.finalize()
        self.program = program
        self.machine = program.machine
        self.scheduler = scheduler
        self.config = config if config is not None else SimConfig()
        self.faults = faults
        self.collector = (collector if collector is not None
                          else _NullCollector())
        self.os_model = OsModel(self.machine.num_cores,
                                os_config if os_config is not None
                                else OsModelConfig())
        self.hw_counters = HardwareCounters(
            self.machine.num_cores,
            counter_config if counter_config is not None
            else CounterModelConfig())
        self._rng = random.Random(self.config.seed)
        self._heap = []
        self._seq = 0
        self._workers = [_Worker(core=core)
                         for core in range(self.machine.num_cores)]
        self._remaining = {}
        self._children = {}
        self._tasks_left = 0
        self._last_completion = 0
        self._state_cycles = {int(state): 0 for state in WorkerState}
        self._steals = 0
        self._page_faults = 0
        self._collect_rusage = getattr(self.collector, "collect_rusage",
                                       False)

    # -- event plumbing -----------------------------------------------
    def _push(self, time, kind, arg):
        self._seq += 1
        heapq.heappush(self._heap, (time, kind, self._seq, arg))

    def _emit_state(self, core, state, start, end):
        if end > start:
            self._state_cycles[int(state)] += end - start
            self.collector.state(core, state, start, end)

    # -- setup ----------------------------------------------------------
    def _setup(self):
        self._tasks_left = len(self.program.tasks)
        roots = []
        for task in self.program.tasks:
            self._remaining[task.task_id] = len(task.dependencies) + 1
            if task.creator is None:
                roots.append(task)
            else:
                self._children.setdefault(task.creator.task_id,
                                          []).append(task)
        # The control program ("main", on core 0) creates all root tasks
        # sequentially before joining the worker pool.
        create_end = 0
        for index, task in enumerate(roots):
            created_at = (index + 1) * self.config.create_cost
            create_end = created_at
            self._push(created_at, _EV_CREATED, (task, 0))
        if create_end:
            self._emit_state(0, WorkerState.CREATE, 0, create_end)
            self._workers[0].last_active = create_end
            self._workers[0].current_task = _MAIN_CREATION
        self._push(create_end, _EV_WAKE, 0)
        for worker in self._workers[1:]:
            worker.idle_since = 0

    # -- main loop ------------------------------------------------------
    def run(self):
        """Run to completion and return a :class:`SimResult`."""
        self._setup()
        heap = self._heap
        while heap:
            time, kind, __, arg = heapq.heappop(heap)
            if kind == _EV_CREATED:
                task, origin = arg
                self.collector.discrete_event(
                    origin, DiscreteEventKind.TASK_CREATED, time,
                    task.task_id)
                self._resolve(task, origin, time)
            elif kind == _EV_FINISH:
                self._finish(arg, time)
            else:
                self._wake(arg, time)
        makespan = self._last_completion
        for worker in self._workers:
            if worker.idle_since is not None and worker.idle_since < makespan:
                self._emit_state(worker.core, WorkerState.IDLE,
                                 worker.idle_since, makespan)
                worker.idle_since = None
        if makespan:
            for worker in self._workers:
                self._emit_state(worker.core, WorkerState.SYNC, makespan,
                                 makespan + self.config.final_barrier_cost)
        self.collector.record_static(self.program)
        return SimResult(makespan=makespan,
                         state_cycles=dict(self._state_cycles),
                         steals=self._steals,
                         page_faults=self._page_faults,
                         tasks_executed=len(self.program.tasks))

    # -- readiness ------------------------------------------------------
    def _resolve(self, task, origin_core, time):
        """One readiness token of ``task`` resolved (creation or a dep)."""
        self._remaining[task.task_id] -= 1
        if self._remaining[task.task_id] == 0:
            self._enqueue(task, origin_core, time)

    def _enqueue(self, task, origin_core, time):
        core = self.scheduler.enqueue(task, origin_core)
        target = self._workers[core]
        if target.current_task is None and not target.waking:
            target.waking = True
            self._push(time + self.config.wake_latency, _EV_WAKE, core)
            return
        # The target is busy: wake an idle worker to steal the task.
        idle = [worker for worker in self._workers
                if worker.current_task is None and not worker.waking
                and worker.idle_since is not None]
        if idle:
            thief = self._pick_thief(idle, core)
            thief.waking = True
            self._push(time + self.config.wake_latency, _EV_WAKE,
                       thief.core)

    def _pick_thief(self, idle_workers, target_core):
        """Prefer thieves close (NUMA-wise) to the queue holding work."""
        node = self.machine.node_of_core(target_core)
        best = min(idle_workers,
                   key=lambda worker: (self.machine.distance(
                       node, self.machine.node_of_core(worker.core)),
                       worker.core))
        return best

    # -- worker behaviour -----------------------------------------------
    def _wake(self, core, time):
        worker = self._workers[core]
        worker.waking = False
        if worker.current_task is _MAIN_CREATION:
            # The control program finished creating the root tasks;
            # worker 0 now joins the worker pool.
            worker.current_task = None
        elif worker.current_task is not None:
            return
        self._seek(core, time)

    def _seek(self, core, time):
        worker = self._workers[core]
        # A wake scheduled while the worker was still paying its
        # post-task CREATE/BROADCAST time may fire in the worker's past;
        # looking for work cannot start before the worker is free, or
        # the new state interval would overlap the ones already emitted.
        time = max(time, worker.last_active)
        task = self.scheduler.pop_local(core)
        victim = None
        if task is None:
            stolen = self.scheduler.steal(core)
            if stolen is not None:
                task, victim = stolen
        if task is None:
            if worker.idle_since is None:
                worker.idle_since = time
            return
        if worker.idle_since is not None:
            self._emit_state(core, WorkerState.IDLE, worker.idle_since,
                             time)
            worker.idle_since = None
        if victim is not None:
            self._steals += 1
            end = time + self.config.steal_cost
            self._emit_state(core, WorkerState.STEAL, time, end)
            self.collector.comm_event(victim, core, time,
                                      task_id=task.task_id)
            self.collector.discrete_event(
                core, DiscreteEventKind.TASK_STOLEN, time, task.task_id)
            time = end
        self._start_task(core, task, time)

    def _start_task(self, core, task, start):
        config = self.config
        machine = self.machine
        memory = self.program.memory
        node = machine.node_of_core(core)
        faults = 0
        mem_cycles = 0.0
        local_bytes = 0
        remote_bytes = 0
        for access in task.accesses:
            faults += memory.touch(access.region, access.offset,
                                   access.size, node)
            cpb = (config.cycles_per_byte_write if access.is_write
                   else config.cycles_per_byte_read)
            for src_node, nbytes in memory.access_nodes(
                    access.region, access.offset, access.size).items():
                mem_cycles += nbytes * cpb * machine.access_factor(
                    node, src_node)
                if src_node == node:
                    local_bytes += nbytes
                else:
                    remote_bytes += nbytes
            self.collector.memory_access(task, core, access, start)
        self._page_faults += faults
        fault_stall = self.os_model.charge_faults(core, faults)
        self.os_model.charge_background(core, start)
        duration = (config.task_overhead + task.work + int(mem_cycles)
                    + fault_stall)
        if self.faults is not None:
            duration = self.faults.scaled_duration(core, start,
                                                   duration)
        end = start + duration
        self._sample_counters(core, start)
        self.hw_counters.charge_task(core, task, local_bytes, remote_bytes)
        self._sample_counters(core, end)
        self.collector.task_execution(task, core, start, end)
        self._emit_state(core, WorkerState.RUNNING, start, end)
        worker = self._workers[core]
        worker.current_task = task
        worker.last_active = end
        self._push(end, _EV_FINISH, core)

    def _sample_counters(self, core, time):
        collector = self.collector
        for name, value in self.hw_counters.snapshot(core).items():
            collector.counter_sample(core, name, time, value)
        if self._collect_rusage:
            collector.counter_sample(core, OS_SYSTEM_TIME_US, time,
                                     self.os_model.system_time_us(core))
            collector.counter_sample(core, OS_RESIDENT_KB, time,
                                     self.os_model.resident_kb(core))

    def _finish(self, core, time):
        worker = self._workers[core]
        task = worker.current_task
        worker.current_task = None
        self._tasks_left -= 1
        self._last_completion = max(self._last_completion, time)
        cursor = time
        children = self._children.get(task.task_id)
        if children:
            total = len(children) * self.config.create_cost
            self._emit_state(core, WorkerState.CREATE, cursor,
                             cursor + total)
            for index, child in enumerate(children):
                created_at = cursor + (index + 1) * self.config.create_cost
                self._push(created_at, _EV_CREATED, (child, core))
            cursor += total
        if len(task.dependents) >= self.config.broadcast_threshold:
            cost = len(task.dependents) * self.config.broadcast_cost
            self._emit_state(core, WorkerState.BROADCAST, cursor,
                             cursor + cost)
            cursor += cost
        for dependent in task.dependents:
            self._resolve(dependent, core, time)
        worker.last_active = cursor
        self._seek(core, cursor)


def run_program(program, scheduler, collector=None, config=None,
                os_config=None, counter_config=None, faults=None):
    """Convenience wrapper: simulate and return ``(result, trace)``.

    ``trace`` is ``None`` when no collector was given; ``faults``
    optionally plants a
    :class:`repro.runtime.faults.FaultInjectionConfig`.
    """
    simulator = Simulator(program, scheduler, collector=collector,
                          config=config, os_config=os_config,
                          counter_config=counter_config, faults=faults)
    result = simulator.run()
    trace = None
    if isinstance(collector, TraceCollector):
        trace = collector.build()
    return result, trace
