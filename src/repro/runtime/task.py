"""Dependent-task model: task types, memory accesses and tasks.

OpenStream programs consist of dynamically created tasks whose
dependences are expressed through reads and writes of explicit memory
regions (streams).  The simulator keeps that structure: a task declares
the byte ranges it reads and writes, and dependences are *derived* from
overlapping writer/reader ranges — exactly the information Aftermath
later uses to reconstruct the task graph from the trace (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .memory import MemoryRegion


@dataclass(frozen=True)
class TaskType:
    """A work function: what the paper's *typemap* mode colors by.

    ``address`` stands in for the work function's code address, which
    Aftermath resolves to a name through the symbol table (Section VI-C).
    """

    type_id: int
    name: str
    address: int = 0
    source_file: str = ""
    source_line: int = 0


@dataclass(frozen=True)
class Access:
    """One byte range read or written by a task."""

    region: MemoryRegion
    offset: int
    size: int
    is_write: bool

    def __post_init__(self):
        if self.offset < 0 or self.size <= 0:
            raise ValueError("access must have offset >= 0 and size > 0")
        if self.offset + self.size > self.region.size:
            raise ValueError("access overruns region {}"
                             .format(self.region.region_id))

    @property
    def start(self):
        return self.offset

    @property
    def end(self):
        return self.offset + self.size

    def overlaps(self, other):
        return (self.region is other.region
                and self.start < other.end and other.start < self.end)


@dataclass
class Task:
    """One dynamically created task instance.

    ``work`` is the task's computational cost in cycles assuming all
    memory accesses are node-local; the simulator adds NUMA penalties,
    page-fault time and per-task management overhead on top.

    ``counters`` maps hardware-counter names to the increment the task
    contributes (e.g. branch mispredictions); the counter model turns
    these into per-core monotone counters sampled at task boundaries.
    """

    task_id: int
    task_type: TaskType
    work: int
    reads: List[Access] = field(default_factory=list)
    writes: List[Access] = field(default_factory=list)
    creator: Optional["Task"] = None
    counters: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    # Filled in by Program.finalize() / the simulator.
    dependencies: List["Task"] = field(default_factory=list)
    dependents: List["Task"] = field(default_factory=list)

    def __post_init__(self):
        if self.work < 0:
            raise ValueError("task work must be non-negative")

    @property
    def accesses(self):
        return self.reads + self.writes

    def bytes_read(self):
        return sum(access.size for access in self.reads)

    def bytes_written(self):
        return sum(access.size for access in self.writes)

    def __hash__(self):
        return self.task_id

    def __eq__(self, other):
        return isinstance(other, Task) and other.task_id == self.task_id

    def __repr__(self):
        return "Task(id={}, type={})".format(self.task_id,
                                             self.task_type.name)
