"""Program builder: declares task types, regions and tasks, derives deps.

A :class:`Program` is the static description of a dynamic task graph.
Workloads build one by allocating memory regions and declaring tasks with
their read/write accesses; :meth:`Program.finalize` derives the
dependence edges (writer before overlapping reader, in declaration
order), which is the same derivation Aftermath performs post-mortem from
the trace's memory-access records.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from .memory import MemoryManager
from .task import Access, Task, TaskType

# Synthetic code addresses for work functions, spaced like a real text
# segment so symbol lookup (Section VI-C) has something to resolve.
_TYPE_ADDRESS_BASE = 0x400000
_TYPE_ADDRESS_STRIDE = 0x100


class Program:
    """A dependent-task program plus the memory it operates on."""

    def __init__(self, machine, memory=None, name="program"):
        self.name = name
        self.machine = machine
        self.memory = memory if memory is not None else MemoryManager(machine)
        self.tasks: List[Task] = []
        self.task_types: List[TaskType] = []
        self._types_by_name: Dict[str, TaskType] = {}
        self._finalized = False

    def task_type(self, name, source_file="", source_line=0):
        """Get or create the :class:`TaskType` for a work function name."""
        existing = self._types_by_name.get(name)
        if existing is not None:
            return existing
        type_id = len(self.task_types)
        task_type = TaskType(
            type_id=type_id, name=name,
            address=_TYPE_ADDRESS_BASE + type_id * _TYPE_ADDRESS_STRIDE,
            source_file=source_file or "{}.c".format(self.name),
            source_line=source_line or 10 * (type_id + 1))
        self.task_types.append(task_type)
        self._types_by_name[name] = task_type
        return task_type

    def allocate(self, size, name=""):
        """Allocate a memory region for inter-task data exchange."""
        return self.memory.allocate(size, name=name)

    def spawn(self, type_name, work, reads=(), writes=(), creator=None,
              counters=None, metadata=None):
        """Declare a task.

        ``reads``/``writes`` are ``(region, offset, size)`` triples.
        ``creator`` is the task that dynamically creates this one; root
        tasks (``creator=None``) are created by the control program.
        """
        if self._finalized:
            raise RuntimeError("cannot spawn after finalize()")
        task = Task(
            task_id=len(self.tasks),
            task_type=self.task_type(type_name),
            work=int(work),
            reads=[Access(region, offset, size, is_write=False)
                   for region, offset, size in reads],
            writes=[Access(region, offset, size, is_write=True)
                    for region, offset, size in writes],
            creator=creator,
            counters=dict(counters) if counters else {},
            metadata=dict(metadata) if metadata else {})
        self.tasks.append(task)
        return task

    def finalize(self):
        """Derive dependence edges: each read depends on its last writers.

        For every read access, the reader depends on the most recent
        earlier-declared writers that produced the bytes it reads (the
        *visible last writers*, scanning writes newest-first until the
        read range is covered).  This matches OpenStream flow-dependence
        semantics and is the same derivation Aftermath performs
        post-mortem from the trace's memory-access records.

        Anti- and output dependences are not modeled; workloads must use
        access patterns where flow dependences imply a correct ordering
        (true for the paper's seidel and k-means graphs).  Creator edges
        are handled by the simulator (a task cannot start before being
        created), not here.
        """
        if self._finalized:
            return self
        writes_by_region = defaultdict(list)
        for task in self.tasks:
            for access in task.reads:
                self._link_last_writers(
                    task, access,
                    writes_by_region[access.region.region_id])
            for access in task.writes:
                writes_by_region[access.region.region_id].append(
                    (access, task))
        self._finalized = True
        return self

    @staticmethod
    def _link_last_writers(task, read, writes):
        """Add edges from ``task`` to the visible last writers of ``read``.

        Scans the region's writes newest-first, adding an edge for every
        write overlapping a not-yet-covered part of the read range, and
        stops once the range is fully covered.
        """
        uncovered = [(read.start, read.end)]
        deps = set(dep.task_id for dep in task.dependencies)
        for write, writer in reversed(writes):
            if writer is task or not uncovered:
                continue
            remaining = []
            hit = False
            for start, end in uncovered:
                if write.start < end and start < write.end:
                    hit = True
                    if start < write.start:
                        remaining.append((start, write.start))
                    if write.end < end:
                        remaining.append((write.end, end))
                else:
                    remaining.append((start, end))
            if hit and writer.task_id not in deps:
                deps.add(writer.task_id)
                task.dependencies.append(writer)
                writer.dependents.append(task)
            uncovered = remaining
            if not uncovered:
                break

    @property
    def finalized(self):
        return self._finalized

    def roots(self):
        """Tasks with no data dependences (ready upon creation)."""
        return [task for task in self.tasks if not task.dependencies]

    def validate_acyclic(self):
        """Raise ``ValueError`` if the dependence graph has a cycle."""
        state: Dict[int, int] = {}
        for start in self.tasks:
            if state.get(start.task_id):
                continue
            stack = [(start, iter(start.dependents))]
            state[start.task_id] = 1
            while stack:
                task, children = stack[-1]
                advanced = False
                for child in children:
                    mark = state.get(child.task_id, 0)
                    if mark == 1:
                        raise ValueError("dependence cycle through task {}"
                                         .format(child.task_id))
                    if mark == 0:
                        state[child.task_id] = 1
                        stack.append((child, iter(child.dependents)))
                        advanced = True
                        break
                if not advanced:
                    state[task.task_id] = 2
                    stack.pop()
        return True

    def __repr__(self):
        return ("Program(name={!r}, tasks={}, types={}, regions={})"
                .format(self.name, len(self.tasks), len(self.task_types),
                        len(self.memory.regions)))
