"""Hardware performance counter models.

The paper samples per-core hardware counters (e.g. cache misses, branch
mispredictions) immediately before and immediately after each task
execution, so the per-task increase can be attributed to the task
(Sections IV and V).  This module maintains per-core *monotone* counter
values; the simulator asks it to advance counters across a task
execution and samples the cumulative value at both task boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Canonical counter names used throughout the reproduction.
CACHE_MISSES = "cache_misses"
BRANCH_MISPREDICTIONS = "branch_mispredictions"
OS_SYSTEM_TIME_US = "os_system_time_us"
OS_RESIDENT_KB = "os_resident_kb"

CACHE_LINE = 64


@dataclass
class CounterModelConfig:
    """Rates used to synthesize counter increments.

    ``local_miss_rate`` / ``remote_miss_rate`` are misses per byte
    accessed; remote traffic misses more because it cannot be served by
    the local cache hierarchy.  ``idle_branch_rate`` is the (tiny) rate
    of mispredictions per cycle while a worker spins in the steal loop.
    """

    local_miss_rate: float = 0.25 / CACHE_LINE
    remote_miss_rate: float = 1.0 / CACHE_LINE
    default_branch_rate: float = 0.0002   # mispredictions per work cycle
    idle_branch_rate: float = 0.00001


class HardwareCounters:
    """Per-core monotone counters advanced by the simulator."""

    def __init__(self, num_cores, config=None):
        self.config = config if config is not None else CounterModelConfig()
        self.num_cores = num_cores
        self._values: List[Dict[str, float]] = [
            {CACHE_MISSES: 0.0, BRANCH_MISPREDICTIONS: 0.0}
            for _ in range(num_cores)
        ]

    @property
    def names(self):
        return (CACHE_MISSES, BRANCH_MISPREDICTIONS)

    def value(self, core, name):
        return self._values[core][name]

    def charge_task(self, core, task, local_bytes, remote_bytes,
                    idle_cycles=0):
        """Advance ``core``'s counters across one task execution.

        ``task.counters`` may pin an exact increment for a counter (the
        workload's model, e.g. k-means branch mispredictions); otherwise
        a default rate proportional to the task's work applies.
        """
        cfg = self.config
        values = self._values[core]
        misses = (local_bytes * cfg.local_miss_rate
                  + remote_bytes * cfg.remote_miss_rate)
        values[CACHE_MISSES] += task.counters.get(CACHE_MISSES, misses)
        default_branch = (task.work * cfg.default_branch_rate
                          + idle_cycles * cfg.idle_branch_rate)
        values[BRANCH_MISPREDICTIONS] += task.counters.get(
            BRANCH_MISPREDICTIONS, default_branch)

    def snapshot(self, core):
        """Current cumulative values for sampling at a task boundary."""
        return dict(self._values[core])
