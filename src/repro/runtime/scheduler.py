"""Task schedulers: random work-stealing and NUMA-aware placement.

The paper contrasts two OpenStream configurations (Section IV):

* the *non-optimized* run-time uses random work-stealing and ignores
  NUMA both for scheduling and for data placement, and
* the *optimized* run-time exploits NUMA information in the scheduler
  (tasks run near their input data) and in the memory allocator.

Both are reproduced here.  A scheduler owns one double-ended queue per
core; ready tasks are pushed at dependence-resolution time and idle
workers steal according to the policy.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List


class Scheduler:
    """Base class: per-core deques plus a placement/steal policy."""

    name = "base"

    def __init__(self, machine, seed=0):
        self.machine = machine
        self._queues: List[deque] = [deque()
                                     for _ in range(machine.num_cores)]
        self._rng = random.Random(seed)

    def queued_tasks(self):
        return sum(len(queue) for queue in self._queues)

    def enqueue(self, task, origin_core):
        """Make ``task`` ready; returns the core whose queue received it."""
        core = self.place(task, origin_core)
        self._queues[core].append(task)
        return core

    def place(self, task, origin_core):
        raise NotImplementedError

    def pop_local(self, core):
        """LIFO pop of the worker's own queue (depth-first, cache-warm)."""
        queue = self._queues[core]
        if queue:
            return queue.pop()
        return None

    def steal(self, thief_core):
        """Try to steal one task; returns ``(task, victim_core)`` or None.

        Steals take the *oldest* task of the victim (FIFO end), the
        classic work-stealing rule.
        """
        for victim in self._victim_order(thief_core):
            queue = self._queues[victim]
            if queue:
                return queue.popleft(), victim
        return None

    def _victim_order(self, thief_core):
        raise NotImplementedError


class RandomStealScheduler(Scheduler):
    """The non-optimized configuration: NUMA-oblivious placement and
    uniformly random steal victims."""

    name = "random-steal"

    def place(self, task, origin_core):
        # Ready tasks stay on the core that resolved the last dependence
        # (or created the task); locality is accidental.
        return origin_core

    def _victim_order(self, thief_core):
        victims = [core for core in range(self.machine.num_cores)
                   if core != thief_core]
        self._rng.shuffle(victims)
        return victims


class NumaAwareScheduler(Scheduler):
    """The optimized configuration: place tasks on the NUMA node holding
    most of their input data and steal node-locally first."""

    name = "numa-aware"

    def __init__(self, machine, seed=0, remote_steal=False):
        """``remote_steal=False`` keeps steals node-local: a task only
        ever executes on the node holding its input data.  This trades
        global load balance for locality — measurably the right trade
        on the memory-bound workloads of the paper (and there is no
        deadlock risk: a queued task is always eventually popped by its
        own node's workers)."""
        super().__init__(machine, seed)
        self._spread = 0
        self.remote_steal = remote_steal

    def place(self, task, origin_core):
        node = self._input_node(task)
        if node is None:
            # No input data yet (e.g. initialization tasks): spread
            # round-robin across nodes, modeling the optimized
            # run-time's NUMA-aware allocator — first touch then
            # distributes the data over the whole machine.
            node = self._spread % self.machine.num_nodes
            self._spread += 1
        # Pick the least-loaded core of the preferred node.
        core_ids = self.machine.nodes[node].core_ids
        return min(core_ids, key=lambda core: len(self._queues[core]))

    def _input_node(self, task):
        """NUMA node holding the largest share of the task's input bytes."""
        per_node = {}
        for access in task.reads:
            first = access.offset // 4096
            last = (access.end - 1) // 4096
            for index in range(first, last + 1):
                node = access.region.pages[index]
                if node is not None:
                    per_node[node] = per_node.get(node, 0) + 1
        if not per_node:
            return None
        return max(per_node, key=lambda n: (per_node[n], -n))

    def _victim_order(self, thief_core):
        my_node = self.machine.node_of_core(thief_core)
        local = [core for core in self.machine.nodes[my_node].core_ids
                 if core != thief_core]
        self._rng.shuffle(local)
        if not self.remote_steal:
            return local
        remote = [core for core in range(self.machine.num_cores)
                  if self.machine.node_of_core(core) != my_node]
        # Remote victims ordered by NUMA distance, ties broken randomly.
        self._rng.shuffle(remote)
        remote.sort(key=lambda core: self.machine.distance(
            my_node, self.machine.node_of_core(core)))
        return local + remote
