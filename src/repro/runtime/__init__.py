"""Simulated task-parallel run-time and NUMA machine (the substrate)."""

from .counters import (BRANCH_MISPREDICTIONS, CACHE_MISSES,
                       CounterModelConfig, HardwareCounters,
                       OS_RESIDENT_KB, OS_SYSTEM_TIME_US)
from .faults import (FaultInjectionConfig, FaultScenario,
                     straggler_scenario, throttle_scenario)
from .memory import (AllocationPolicy, FirstTouch, HostilePlacement,
                     Interleaved, MemoryManager, MemoryRegion,
                     PAGE_SIZE, RandomPlacement)
from .machinefile import (fully_connected_machine, load_machine,
                          machine_from_dict, machine_to_dict,
                          mesh_machine, save_machine, validate_distances)
from .os_model import OsModel, OsModelConfig
from .program import Program
from .scheduler import NumaAwareScheduler, RandomStealScheduler, Scheduler
from .simulator import SimConfig, SimResult, Simulator, run_program
from .task import Access, Task, TaskType
from .topology import Core, Machine, NumaNode, opteron_6282, uv2000
from .tracing import TraceCollector

__all__ = [
    "BRANCH_MISPREDICTIONS", "CACHE_MISSES", "CounterModelConfig",
    "HardwareCounters", "OS_RESIDENT_KB", "OS_SYSTEM_TIME_US",
    "AllocationPolicy", "FaultInjectionConfig", "FaultScenario",
    "FirstTouch", "HostilePlacement", "Interleaved", "MemoryManager",
    "MemoryRegion", "PAGE_SIZE", "RandomPlacement",
    "straggler_scenario", "throttle_scenario",
    "fully_connected_machine", "load_machine", "machine_from_dict",
    "machine_to_dict", "mesh_machine", "save_machine",
    "validate_distances", "OsModel",
    "OsModelConfig", "Program", "NumaAwareScheduler",
    "RandomStealScheduler", "Scheduler", "SimConfig", "SimResult",
    "Simulator", "run_program", "Access", "Task", "TaskType", "Core",
    "Machine", "NumaNode", "opteron_6282", "uv2000", "TraceCollector",
]
