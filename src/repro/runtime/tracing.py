"""Run-time tracing hooks: simulator events -> trace records.

The OpenStream run-time instruments worker threads and writes per-worker
event streams with very low overhead (Section VI-A).  This module plays
that role for the simulator: it forwards state changes, task executions,
counter samples, memory accesses and discrete events to a
:class:`repro.core.trace.TraceBuilder`, registers counter descriptions,
and — once the simulation finished — records the static tables (machine
topology, task types, final NUMA placement of every memory region).
"""

from __future__ import annotations

from ..core.events import RegionInfo, TaskTypeInfo, TopologyInfo
from ..core.trace import TraceBuilder
from .counters import (BRANCH_MISPREDICTIONS, CACHE_MISSES,
                       OS_RESIDENT_KB, OS_SYSTEM_TIME_US)


class TraceCollector:
    """Collects simulator events and produces a :class:`Trace`.

    ``collect_rusage`` adds the getrusage-like counters (system time and
    resident size); the paper records those in a separate trace because
    of their collection overhead, which a caller can mirror by running
    the simulation twice with different collector settings.
    """

    def __init__(self, machine, collect_rusage=True, collect_accesses=True):
        self.machine = machine
        self.collect_rusage = collect_rusage
        self.collect_accesses = collect_accesses
        topology = TopologyInfo(num_nodes=machine.num_nodes,
                                cores_per_node=machine.cores_per_node,
                                name=machine.name)
        self.builder = TraceBuilder(topology)
        self.counter_ids = {
            CACHE_MISSES: self.builder.describe_counter(CACHE_MISSES),
            BRANCH_MISPREDICTIONS: self.builder.describe_counter(
                BRANCH_MISPREDICTIONS),
        }
        if collect_rusage:
            self.counter_ids[OS_SYSTEM_TIME_US] = (
                self.builder.describe_counter(OS_SYSTEM_TIME_US))
            self.counter_ids[OS_RESIDENT_KB] = (
                self.builder.describe_counter(OS_RESIDENT_KB))

    # -- events forwarded by the simulator ---------------------------------
    def state(self, core, state, start, end):
        self.builder.state_interval(core, int(state), start, end)

    def task_execution(self, task, core, start, end):
        self.builder.task_execution(task.task_id, task.task_type.type_id,
                                    core, start, end)

    def memory_access(self, task, core, access, timestamp):
        if not self.collect_accesses:
            return
        self.builder.memory_access(
            task.task_id, core, access.region.address + access.offset,
            access.size, access.is_write, timestamp)

    def counter_sample(self, core, name, timestamp, value):
        counter_id = self.counter_ids.get(name)
        if counter_id is not None:
            self.builder.counter_sample(core, counter_id, timestamp, value)

    def discrete_event(self, core, kind, timestamp, payload=0):
        self.builder.discrete_event(core, int(kind), timestamp, payload)

    def comm_event(self, src_core, dst_core, timestamp, size=0, task_id=-1):
        self.builder.comm_event(src_core, dst_core, timestamp, size, task_id)

    # -- static tables ------------------------------------------------
    def record_static(self, program):
        """Record task types and final region placement.

        Placement is stored once per region regardless of the number of
        accesses (the redundancy-avoidance scheme of Section VI-A);
        pages never physically allocated are stored as node -1.
        """
        for task_type in program.task_types:
            self.builder.describe_task_type(TaskTypeInfo(
                type_id=task_type.type_id, name=task_type.name,
                address=task_type.address,
                source_file=task_type.source_file,
                source_line=task_type.source_line))
        for region in program.memory.regions:
            pages = tuple(-1 if node is None else node
                          for node in region.pages)
            self.builder.describe_region(RegionInfo(
                region_id=region.region_id, address=region.address,
                size=region.size, page_nodes=pages, name=region.name))

    def build(self):
        return self.builder.build()
