"""Machine topology model: cores, NUMA nodes and inter-node distances.

The paper evaluates Aftermath on two machines:

* an SGI UV2000 with 192 cores and 24 NUMA nodes (Numalink 6), used for
  the ``seidel`` analyses, and
* a quad-socket AMD Opteron 6282 SE with 64 cores and 8 NUMA nodes
  (HyperTransport 3.0), used for the ``k-means`` analyses.

Aftermath relates trace information to this topology (timeline rows are
cores grouped by node, NUMA maps color by node, the communication matrix
is node x node).  The simulator uses the same description plus a distance
matrix to charge remote memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class Core:
    """A single hardware thread (the paper pins one worker per core)."""

    core_id: int
    numa_node: int


@dataclass(frozen=True)
class NumaNode:
    """A NUMA node: a memory controller plus the cores attached to it."""

    node_id: int
    core_ids: List[int] = field(default_factory=list)


class Machine:
    """A NUMA machine: ``num_nodes`` nodes with ``cores_per_node`` cores each.

    The distance matrix follows the convention of the Linux ``numactl``
    tool: local distance is 10 and remote distances grow with hop count.
    The simulator scales memory-access costs by ``distance / 10``.
    """

    def __init__(self, num_nodes, cores_per_node, name="machine",
                 remote_distance=30):
        if num_nodes < 1:
            raise ValueError("a machine needs at least one NUMA node")
        if cores_per_node < 1:
            raise ValueError("a NUMA node needs at least one core")
        self.name = name
        self.num_nodes = num_nodes
        self.cores_per_node = cores_per_node
        self.cores = []
        self.nodes = []
        for node_id in range(num_nodes):
            core_ids = []
            for local in range(cores_per_node):
                core_id = node_id * cores_per_node + local
                self.cores.append(Core(core_id=core_id, numa_node=node_id))
                core_ids.append(core_id)
            self.nodes.append(NumaNode(node_id=node_id, core_ids=core_ids))
        self._distance = self._build_distances(num_nodes, remote_distance)

    @staticmethod
    def _build_distances(num_nodes, remote_distance):
        """Ring-like distance matrix: 10 local, growing with ring hops.

        Both paper machines have point-to-point interconnects (Numalink,
        HyperTransport) where distance grows with hop count; a ring is the
        simplest topology with that property.
        """
        rows = []
        for a in range(num_nodes):
            row = []
            for b in range(num_nodes):
                if a == b:
                    row.append(10)
                else:
                    hops = min((a - b) % num_nodes, (b - a) % num_nodes)
                    row.append(remote_distance + 4 * (hops - 1))
            rows.append(row)
        return rows

    @property
    def num_cores(self):
        return len(self.cores)

    def core(self, core_id):
        return self.cores[core_id]

    def node_of_core(self, core_id):
        """NUMA node id that ``core_id`` belongs to."""
        return self.cores[core_id].numa_node

    def distance(self, node_a, node_b):
        """NUMA distance between two nodes (10 = local)."""
        return self._distance[node_a][node_b]

    def access_factor(self, from_node, to_node):
        """Cost multiplier of an access from ``from_node`` to ``to_node``."""
        return self.distance(from_node, to_node) / 10.0

    def __repr__(self):
        return ("Machine(name={!r}, nodes={}, cores={})"
                .format(self.name, self.num_nodes, self.num_cores))


def uv2000(scale=1.0):
    """The seidel test system: SGI UV2000, 192 cores over 24 NUMA nodes.

    ``scale`` < 1 shrinks the machine proportionally (the node count is
    scaled, the 8-cores-per-node shape is kept) so that tests and benches
    run in reasonable time while preserving the topology shape.
    """
    nodes = max(2, round(24 * scale))
    return Machine(num_nodes=nodes, cores_per_node=8,
                   name="SGI-UV2000({}n)".format(nodes))


def opteron_6282(scale=1.0):
    """The k-means test system: AMD Opteron 6282 SE, 64 cores, 8 nodes."""
    nodes = max(2, round(8 * scale))
    return Machine(num_nodes=nodes, cores_per_node=8,
                   name="AMD-Opteron-6282({}n)".format(nodes))
