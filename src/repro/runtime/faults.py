"""Fault injection: planted performance anomalies with ground truth.

The anomaly detectors of :mod:`repro.core.anomalies` reproduce the
manual bottleneck hunts of the paper's case studies — stragglers,
frequency differences between cores, NUMA-hostile data placement.
Testing them honestly requires traces with *known-planted* faults, so
this module gives the simulator a small, declarative fault model:

* **straggler cores** — the named cores execute every task slower by
  a constant factor (a saturated sibling, a faulty DIMM, a core stuck
  behind a noisy neighbour);
* **frequency throttling** — the named cores run slower only inside
  a time window (thermal throttling, DVFS kicking in mid-run).

Both faults scale the *computation* of a task (the duration the
simulator derived); NUMA-hostile placement is a memory-system fault
and lives in :class:`repro.runtime.memory.HostilePlacement` instead.
The configuration is a frozen dataclass, so experiment specs can
carry it through process pools unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class FaultInjectionConfig:
    """Declarative description of the faults planted into one run.

    The default instance is the identity: no cores named, factors 1.0
    — simulations with and without a default config are bit-identical.
    """

    #: Cores slowed for the whole run, and by how much (>= 1.0).
    straggler_cores: Tuple[int, ...] = ()
    straggler_factor: float = 4.0
    #: Cores slowed only inside [throttle_start, throttle_end).
    throttle_cores: Tuple[int, ...] = ()
    throttle_factor: float = 3.0
    throttle_start: int = 0
    throttle_end: int = 0

    def __post_init__(self):
        if self.straggler_factor < 1.0 or self.throttle_factor < 1.0:
            raise ValueError("fault factors must be >= 1.0 (slowdowns)")

    @property
    def active(self):
        """Whether any fault is actually planted."""
        return bool(self.straggler_cores) or bool(self.throttle_cores)

    def scaled_duration(self, core, start, duration):
        """The faulted duration of a task on ``core`` starting at
        ``start`` whose fault-free duration is ``duration``.

        Straggler scaling applies to the whole task; throttling
        scales only the portion of the task overlapping the throttle
        window, so a task straddling the window edge is stretched
        proportionally (an integer, monotone transformation —
        ``duration`` cycles never shrink).
        """
        duration = int(duration)
        if core in self.straggler_cores:
            duration = int(duration * self.straggler_factor)
        if core in self.throttle_cores \
                and self.throttle_end > self.throttle_start:
            end = start + duration
            overlap = (min(end, self.throttle_end)
                       - max(start, self.throttle_start))
            if overlap > 0:
                duration += int(overlap * (self.throttle_factor - 1.0))
        return duration


@dataclass(frozen=True)
class FaultScenario:
    """A named fault configuration, as used by the scenario zoo of
    :func:`repro.analysis.experiments.suite.fault_sweep`."""

    name: str
    faults: FaultInjectionConfig = field(
        default_factory=FaultInjectionConfig)


def straggler_scenario(core=0, factor=4.0):
    """A whole-run straggler on one core."""
    return FaultScenario(
        name="straggler",
        faults=FaultInjectionConfig(straggler_cores=(core,),
                                    straggler_factor=factor))


def throttle_scenario(core=0, factor=3.0, start=0, end=0):
    """A mid-run frequency-throttle window on one core."""
    return FaultScenario(
        name="throttle",
        faults=FaultInjectionConfig(throttle_cores=(core,),
                                    throttle_factor=factor,
                                    throttle_start=start,
                                    throttle_end=end))
