"""Operating-system model: getrusage-like statistics.

Section III-B of the paper confirms the seidel initialization anomaly by
plotting the discrete derivative of the aggregated *system time* and of
the application's *resident size*, collected per worker through
``getrusage``.  Both quantities grow when tasks touch pages for the
first time: the kernel spends time in the page-fault handler and maps a
fresh physical page.

This model charges each first-touch page fault a fixed amount of system
time on the faulting worker and one page of resident size, and exposes
per-worker cumulative values the tracer samples at task boundaries —
Aftermath's aggregating derived counters then turn the per-worker series
into the global statistics of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .memory import PAGE_SIZE


@dataclass
class OsModelConfig:
    """Costs of kernel involvement.

    ``fault_system_us`` is the system time charged per minor page fault;
    ``fault_cycles`` is the stall observed by the faulting task (the
    quantity that makes seidel's initialization tasks slow).
    ``syscall_system_us_per_gcycle`` models the small background system
    time every worker accumulates regardless of faults.
    """

    fault_system_us: float = 1.5
    fault_cycles: int = 25000
    syscall_system_us_per_gcycle: float = 50.0


class OsModel:
    """Per-worker system time and resident-size accounting."""

    def __init__(self, num_cores, config=None):
        self.config = config if config is not None else OsModelConfig()
        self.num_cores = num_cores
        self._system_time_us: List[float] = [0.0] * num_cores
        self._resident_kb: List[float] = [0.0] * num_cores
        self._last_background: List[int] = [0] * num_cores

    def charge_faults(self, core, faults):
        """Account ``faults`` minor page faults taken by ``core``.

        Returns the cycles the faulting task stalls for.
        """
        if faults <= 0:
            return 0
        self._system_time_us[core] += faults * self.config.fault_system_us
        self._resident_kb[core] += faults * (PAGE_SIZE / 1024.0)
        return faults * self.config.fault_cycles

    def charge_background(self, core, now):
        """Accumulate background system time up to cycle ``now``."""
        elapsed = now - self._last_background[core]
        if elapsed > 0:
            self._system_time_us[core] += (
                elapsed * self.config.syscall_system_us_per_gcycle / 1e9)
            self._last_background[core] = now

    def system_time_us(self, core):
        return self._system_time_us[core]

    def resident_kb(self, core):
        """This worker's contribution to the application's resident size."""
        return self._resident_kb[core]

    def total_resident_kb(self):
        return sum(self._resident_kb)
