"""Headless rendering of Aftermath's timeline modes and views."""

from .colors import (heatmap_shades, numa_heat_color, numa_palette,
                     state_color, type_palette)
from .counter_overlay import (render_counter, render_counter_rate,
                              render_derived_series, value_bounds)
from .event_overlay import (EVENT_COLORS, render_annotations,
                            render_discrete_events)
from .framebuffer import Framebuffer
from .matrix import (histogram_to_text, matrix_to_text, render_histogram,
                     render_matrix)
from .timeline import (TIMELINE_MODES, HeatmapMode, NumaHeatmapMode,
                       NumaMode, StateMode, TimelineMode, TimelineView,
                       TypeMode, render_timeline, timeline_mode)

__all__ = [
    "heatmap_shades", "numa_heat_color", "numa_palette", "state_color",
    "type_palette", "render_counter", "render_counter_rate",
    "value_bounds", "render_derived_series", "EVENT_COLORS",
    "render_annotations",
    "render_discrete_events", "Framebuffer", "histogram_to_text",
    "matrix_to_text",
    "render_histogram", "render_matrix", "HeatmapMode", "NumaHeatmapMode",
    "NumaMode", "StateMode", "TimelineMode", "TimelineView", "TypeMode",
    "TIMELINE_MODES", "render_timeline", "timeline_mode",
]
