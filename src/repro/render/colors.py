"""Color palettes of the timeline modes (Section II-B).

* State mode: dark blue for task execution, light blue for idle, plus
  distinct colors for creation, synchronization, broadcasts and steals.
* Heatmap mode: shades of red, darker for longer tasks (configurable
  shade count).
* Typemap: one distinct color per task type.
* NUMA modes: one distinct color per NUMA node, automatically assigned;
  the NUMA heatmap grades from blue (mostly local accesses) to pink
  (mostly remote).
"""

from __future__ import annotations

import colorsys

import numpy as np

from ..core.events import WorkerState

#: Timeline background: alternating dark rows so empty lanes are visible
#: ("the black and gray colors of the timeline's background become
#: visible", Section III-B).
BACKGROUND_EVEN = (16, 16, 16)
BACKGROUND_ODD = (40, 40, 40)

STATE_COLORS = {
    int(WorkerState.RUNNING): (22, 58, 123),      # dark blue
    int(WorkerState.IDLE): (150, 195, 235),       # light blue
    int(WorkerState.CREATE): (70, 160, 70),       # green
    int(WorkerState.SYNC): (230, 160, 40),        # orange
    int(WorkerState.BROADCAST): (150, 80, 170),   # purple
    int(WorkerState.STEAL): (210, 210, 70),       # yellow
}


def state_color(state):
    """RGB color of one worker state (the paper's state palette)."""
    return STATE_COLORS.get(int(state), (200, 200, 200))


def heatmap_shades(count=10):
    """``count`` shades of red, light (short tasks) to dark (long)."""
    if count < 2:
        raise ValueError("need at least two shades")
    shades = []
    for index in range(count):
        fraction = index / (count - 1)
        red = int(255 - 60 * fraction)
        green_blue = int(235 * (1 - fraction))
        shades.append((red, green_blue, green_blue))
    return shades


def heatmap_color(fraction, shades):
    """Shade for a normalized duration in [0, 1]."""
    fraction = min(max(fraction, 0.0), 1.0)
    index = min(int(fraction * len(shades)), len(shades) - 1)
    return shades[index]


def distinct_colors(count, saturation=0.65, value=0.9):
    """``count`` visually distinct colors (golden-angle hue walk)."""
    colors = []
    hue = 0.15
    for __ in range(max(count, 0)):
        rgb = colorsys.hsv_to_rgb(hue % 1.0, saturation, value)
        colors.append(tuple(int(channel * 255) for channel in rgb))
        hue += 0.61803398875
    return colors


def type_palette(num_types):
    """One color per task type (typemap mode)."""
    return distinct_colors(num_types)


def numa_palette(num_nodes):
    """One color per NUMA node, automatically assigned (Section IV)."""
    return distinct_colors(num_nodes, saturation=0.8, value=0.95)


def numa_heat_color(remote_fraction):
    """Blue (all local) to pink (all remote) gradient (Fig. 14e/f)."""
    fraction = min(max(float(remote_fraction), 0.0), 1.0)
    blue = np.array((60, 90, 220), dtype=np.float64)
    pink = np.array((240, 105, 180), dtype=np.float64)
    mixed = blue + (pink - blue) * fraction
    return tuple(int(channel) for channel in mixed)


def matrix_red(fraction):
    """White-to-deep-red ramp of the communication matrix (Fig. 15)."""
    fraction = min(max(float(fraction), 0.0), 1.0)
    return (255 - int(75 * fraction), int(255 * (1 - fraction)),
            int(255 * (1 - fraction)))


def matrix_red_array(fractions):
    """Vectorized :func:`matrix_red`: an ``(..., 3)`` uint8 array with
    exactly the same clamping and truncation, cell for cell."""
    fractions = np.clip(np.asarray(fractions, dtype=np.float64),
                        0.0, 1.0)
    red = 255 - (75 * fractions).astype(np.int64)
    green_blue = (255 * (1 - fractions)).astype(np.int64)
    return np.stack((red, green_blue, green_blue),
                    axis=-1).astype(np.uint8)
