"""Software framebuffer: the render target of all timeline modes.

The paper's GUI draws through Cairo; the reproduction renders into a
numpy RGB buffer and exports portable pixmaps.  The framebuffer counts
drawing operations (rectangles, lines, pixels touched), which is how the
Section VI-B benchmarks quantify the rendering optimizations —
predominant-pixel rendering and rectangle aggregation reduce *calls to
rendering functions*, and that is exactly what we measure.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

#: Dark-to-bright luminance ramp used by :meth:`Framebuffer.to_ascii`.
ASCII_RAMP = " .:-=+*#%@"


class Framebuffer:
    """A width x height RGB image with operation accounting."""

    def __init__(self, width, height, background=(0, 0, 0)):
        if width < 1 or height < 1:
            raise ValueError("framebuffer must be at least 1x1")
        self.width = width
        self.height = height
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        # Fill one row, then broadcast it row-wise: row copies are
        # contiguous memcpys, ~20x faster than broadcasting the 3-byte
        # color over the whole image (this fill is on the per-frame
        # interactive path).
        row = np.empty((width, 3), dtype=np.uint8)
        row[:] = background
        self.pixels[:] = row
        self.rect_calls = 0
        self.line_calls = 0
        self.pixels_drawn = 0

    def reset_counters(self):
        """Zero the draw-operation accounting."""
        self.rect_calls = 0
        self.line_calls = 0
        self.pixels_drawn = 0

    @property
    def draw_calls(self):
        """Rectangles plus lines drawn so far."""
        return self.rect_calls + self.line_calls

    def fill_rect(self, x, y, width, height, color):
        """Fill a rectangle, clipped to the framebuffer."""
        x0 = max(0, int(x))
        y0 = max(0, int(y))
        x1 = min(self.width, int(x + width))
        y1 = min(self.height, int(y + height))
        if x1 <= x0 or y1 <= y0:
            return
        self.pixels[y0:y1, x0:x1] = color
        self.rect_calls += 1
        self.pixels_drawn += (x1 - x0) * (y1 - y0)

    def vertical_line(self, x, y0, y1, color):
        """Vertical line from ``y0`` to ``y1`` inclusive."""
        if x < 0 or x >= self.width:
            return
        lo, hi = (y0, y1) if y0 <= y1 else (y1, y0)
        lo = max(0, int(lo))
        hi = min(self.height - 1, int(hi))
        if hi < lo:
            return
        self.pixels[lo:hi + 1, int(x)] = color
        self.line_calls += 1
        self.pixels_drawn += hi - lo + 1

    def vertical_lines(self, xs, y_starts, y_ends, color):
        """Batch of vertical lines in one vectorized pass.

        Pixels, clipping and accounting are exactly those of one
        :meth:`vertical_line` call per entry (each kept line counts as
        one draw call); columns must be distinct — the batch writes
        every column once.  This is the drawing half of the vectorized
        overlay kernels: the per-column extremes arrive as arrays and
        leave as a single masked assignment.
        """
        xs = np.asarray(xs, dtype=np.int64)
        y_starts = np.asarray(y_starts, dtype=np.int64)
        y_ends = np.asarray(y_ends, dtype=np.int64)
        lo = np.maximum(np.minimum(y_starts, y_ends), 0)
        hi = np.minimum(np.maximum(y_starts, y_ends), self.height - 1)
        keep = (xs >= 0) & (xs < self.width) & (hi >= lo)
        if not keep.any():
            return 0
        xs, lo, hi = xs[keep], lo[keep], hi[keep]
        # One flat scatter over exactly the touched pixels: per line,
        # the row range lo..hi paired with its (repeated) column.
        lengths = hi - lo + 1
        first = np.cumsum(lengths) - lengths
        rows = (np.arange(int(lengths.sum()))
                - np.repeat(first - lo, lengths))
        self.pixels[rows, np.repeat(xs, lengths)] = color
        self.line_calls += len(xs)
        self.pixels_drawn += int(lengths.sum())
        return len(xs)

    def draw_line(self, x0, y0, x1, y1, color):
        """General line (Bresenham); used by the naive counter renderer."""
        x0, y0, x1, y1 = int(x0), int(y0), int(x1), int(y1)
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        step_x = 1 if x0 < x1 else -1
        step_y = 1 if y0 < y1 else -1
        error = dx + dy
        x, y = x0, y0
        drawn = 0
        while True:
            if 0 <= x < self.width and 0 <= y < self.height:
                self.pixels[y, x] = color
                drawn += 1
            if x == x1 and y == y1:
                break
            doubled = 2 * error
            if doubled >= dy:
                error += dy
                x += step_x
            if doubled <= dx:
                error += dx
                y += step_y
        self.line_calls += 1
        self.pixels_drawn += drawn

    def put_pixel(self, x, y, color):
        """Set one pixel (clipped)."""
        if 0 <= x < self.width and 0 <= y < self.height:
            self.pixels[int(y), int(x)] = color
            self.pixels_drawn += 1

    def save_ppm(self, path):
        """Write a binary PPM (P6) image file."""
        with open(path, "wb") as handle:
            header = "P6\n{} {}\n255\n".format(self.width, self.height)
            handle.write(header.encode("ascii"))
            handle.write(self.pixels.tobytes())

    def png_bytes(self, compress_level=6):
        """The image as a PNG byte string (stdlib zlib, no deps).

        Truecolor 8-bit, filter type 0 on every row — small and
        universally decodable, which is all the service's ``render``
        endpoint needs to ship frames over JSON.
        """
        raw = b"".join(b"\x00" + row.tobytes() for row in self.pixels)

        def chunk(tag, data):
            return (struct.pack(">I", len(data)) + tag + data
                    + struct.pack(">I", zlib.crc32(tag + data)))

        header = struct.pack(">IIBBBBB", self.width, self.height,
                             8, 2, 0, 0, 0)
        return (b"\x89PNG\r\n\x1a\n"
                + chunk(b"IHDR", header)
                + chunk(b"IDAT", zlib.compress(raw, compress_level))
                + chunk(b"IEND", b""))

    def save_png(self, path):
        """Write the image as a PNG file."""
        with open(path, "wb") as handle:
            handle.write(self.png_bytes())

    def to_ascii(self, ramp=ASCII_RAMP):
        """The image as ASCII art: one string per pixel row.

        Each pixel maps to a ramp character by Rec. 709 luminance, so
        a terminal (or a doctest) can eyeball a rendered timeline
        without decoding pixels.
        """
        weights = np.array([0.2126, 0.7152, 0.0722])
        luma = self.pixels.astype(np.float64) @ weights
        index = np.minimum((luma / 256.0 * len(ramp)).astype(np.int64),
                           len(ramp) - 1)
        table = np.array(list(ramp))
        return ["".join(row) for row in table[index]]

    def column(self, x):
        """One pixel column (for tests)."""
        return self.pixels[:, int(x)].copy()

    def unique_colors(self):
        """Set of distinct RGB triples present in the image."""
        flat = self.pixels.reshape(-1, 3)
        return set(map(tuple, np.unique(flat, axis=0)))
