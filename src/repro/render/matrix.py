"""Matrix and histogram views (Fig. 15 / Fig. 16).

The communication incidence matrix renders the node-to-node traffic
proportions as shades of red (deeper = more traffic); a near-uniform
deep-red matrix means every node talks to every node, while a sharp
diagonal indicates near-optimal locality.  The histogram view renders
the task-duration distribution of the selected interval.
"""

from __future__ import annotations

import numpy as np

from . import colors as palettes
from .framebuffer import Framebuffer


def render_matrix(matrix, cell_size=16, framebuffer=None, gap=1,
                  vectorized=True, peak=None):
    """Render a square matrix of fractions as a red-shaded grid.

    All cell shades come from one vectorized ramp evaluation
    (:func:`repro.render.colors.matrix_red_array`); the per-cell
    rectangle fills — the drawing operations the benchmarks count —
    are unchanged.  ``vectorized=False`` keeps the per-cell
    :func:`~repro.render.colors.matrix_red` calls as the parity
    reference; both paths paint identical pixels.  ``peak`` overrides
    the normalization reference (default: this matrix's own maximum)
    so several panels can share one shade scale.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    rows, cols = matrix.shape
    if peak is None:
        peak = matrix.max() if matrix.size and matrix.max() > 0 else 1.0
    elif peak <= 0:
        peak = 1.0
    side_y = rows * (cell_size + gap) + gap
    side_x = cols * (cell_size + gap) + gap
    if framebuffer is None:
        framebuffer = Framebuffer(side_x, side_y, background=(255, 255, 255))
    shades = (palettes.matrix_red_array(matrix / peak) if vectorized
              else None)
    for row in range(rows):
        for col in range(cols):
            color = (shades[row, col] if shades is not None
                     else palettes.matrix_red(matrix[row, col] / peak))
            framebuffer.fill_rect(gap + col * (cell_size + gap),
                                  gap + row * (cell_size + gap),
                                  cell_size, cell_size, color)
    return framebuffer


def matrix_to_text(matrix, labels=None, width=6):
    """ASCII rendering of a matrix — what the benches print."""
    matrix = np.asarray(matrix, dtype=np.float64)
    rows, cols = matrix.shape
    labels = [str(index) for index in range(rows)] \
        if labels is None else labels
    header = " " * 5 + "".join(str(col).rjust(width) for col in range(cols))
    lines = [header]
    for row in range(rows):
        cells = "".join("{:{w}.3f}".format(matrix[row, col], w=width)
                        for col in range(cols))
        lines.append(str(labels[row]).rjust(4) + " " + cells)
    return "\n".join(lines)


def render_histogram(edges, fractions, width=400, height=160,
                     framebuffer=None, color=(60, 100, 200)):
    """Render a histogram (fractions per bin) as vertical bars."""
    fractions = np.asarray(fractions, dtype=np.float64)
    bins = len(fractions)
    if framebuffer is None:
        framebuffer = Framebuffer(width, height,
                                  background=(250, 250, 250))
    if bins == 0:
        return framebuffer
    peak = fractions.max() if fractions.max() > 0 else 1.0
    bar_width = max(1, framebuffer.width // bins)
    for index in range(bins):
        bar_height = int((fractions[index] / peak)
                         * (framebuffer.height - 2))
        framebuffer.fill_rect(index * bar_width,
                              framebuffer.height - 1 - bar_height,
                              bar_width - 1 if bar_width > 1 else 1,
                              bar_height, color)
    return framebuffer


def histogram_to_text(edges, fractions, bar_width=50, label="duration"):
    """ASCII histogram — one row per bin with a proportional bar."""
    fractions = np.asarray(fractions, dtype=np.float64)
    peak = fractions.max() if len(fractions) and fractions.max() > 0 \
        else 1.0
    lines = []
    for index in range(len(fractions)):
        bar = "#" * int(round(bar_width * fractions[index] / peak))
        lines.append("{:>14.4g} .. {:<14.4g} {:6.2%} {}".format(
            edges[index], edges[index + 1], fractions[index], bar))
    return "\n".join(lines)
