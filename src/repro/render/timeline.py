"""The timeline component: view model, modes and optimized rendering.

The timeline shows the activity of each processor over time (Fig. 1).
Five main modes specialize it (Section II-B): worker *states*, the task
duration *heatmap*, the *typemap*, the *NUMA* read/write maps and the
*NUMA heatmap*.  Rendering follows Section VI-B:

(a) every pixel is drawn only once: each horizontal pixel covers a time
    sub-interval, and the color rendered is that of the *predominant*
    item within it (Fig. 20);
(b) adjacent pixels with identical colors are aggregated into a single
    rectangle-fill call;
(c) the per-core event slice for the visible window is obtained with a
    binary search over the sorted per-core arrays.

A ``optimized=False`` escape hatch renders naively (one rectangle per
event) so the benchmarks can quantify the optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core import numa as numa_analysis
from ..core.index import interval_slice
from ..core.metrics import overlap_per_bin
from . import colors as palettes
from .framebuffer import Framebuffer


@dataclass(frozen=True)
class TimelineView:
    """Zoom/scroll state: the visible time window and the pixel grid.

    Views are immutable; :meth:`zoom` and :meth:`scroll` return new
    views, which is what makes navigation history trivial.
    """

    start: int
    end: int
    width: int = 800
    height: int = 256

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("view must span a non-empty time range")
        if self.width < 1 or self.height < 1:
            raise ValueError("view must span at least one pixel")

    @classmethod
    def fit(cls, trace, width=800, height=256):
        """A view covering the whole trace."""
        end = trace.end if trace.end > trace.begin else trace.begin + 1
        return cls(start=trace.begin, end=end, width=width, height=height)

    @property
    def duration(self):
        """Cycles spanned by the view window."""
        return self.end - self.start

    @property
    def cycles_per_pixel(self):
        """Trace cycles covered by one pixel column."""
        return self.duration / self.width

    def pixel_interval(self, x):
        """Time interval [t0, t1) covered by pixel column ``x``."""
        t0 = self.start + self.duration * x // self.width
        t1 = self.start + self.duration * (x + 1) // self.width
        return int(t0), int(max(t1, t0 + 1))

    def time_to_pixel(self, time):
        """Pixel column of a timestamp (unclipped)."""
        return int((time - self.start) * self.width // self.duration)

    def zoom(self, factor, center=None):
        """Zoom by ``factor`` (> 1 zooms in) around ``center``."""
        if factor <= 0:
            raise ValueError("zoom factor must be positive")
        center = (self.start + self.end) // 2 if center is None else center
        span = max(1, int(self.duration / factor))
        start = int(center - span // 2)
        return replace(self, start=start, end=start + span)

    def scroll(self, fraction):
        """Scroll by a fraction of the visible span (negative = left)."""
        delta = int(self.duration * fraction)
        return replace(self, start=self.start + delta,
                       end=self.end + delta)

    def lane_geometry(self, num_cores):
        """(lane_height, list of lane top offsets), one lane per core."""
        lane = max(1, self.height // max(num_cores, 1))
        return lane, [core * lane for core in range(num_cores)]


class TimelineMode:
    """A timeline specialization: supplies per-core colored intervals.

    ``lane_events`` returns ``(starts, ends, keys)`` for one core, keys
    being small integers fed to ``color_of``; continuous modes (the NUMA
    heatmap) instead return float values fed to ``value_color``.
    """

    continuous = False

    def prepare(self, trace):
        """Hook: precompute per-trace tables before rendering."""

    def lane_events(self, trace, core):
        """``(starts, ends, keys)`` of one core's drawable events."""
        raise NotImplementedError

    def pixel_keys(self, trace, core, view):
        """Predominant key per pixel straight from a per-trace index,
        or ``None`` to derive them from :meth:`lane_events` (the
        default).  Modes backed by a persisted pyramid override this
        so a frame never touches the event lane."""
        return None

    def color_of(self, key):
        """RGB color of one event key."""
        raise NotImplementedError

    def value_color(self, value):
        """RGB color of one aggregated pixel value."""
        raise NotImplementedError


class StateMode(TimelineMode):
    """Default mode: the state of each worker over time (Fig. 2)."""

    name = "state"

    def lane_events(self, trace, core):
        """One core's state intervals keyed by state id."""
        return (trace.states.core_column(core, "start"),
                trace.states.core_column(core, "end"),
                trace.states.core_column(core, "state"))

    def pixel_keys(self, trace, core, view):
        """Per-pixel dominant states served by the state pyramid
        (persisted in the ``.ostc`` sidecar on mapped stores, memoized
        in memory otherwise): exact coverage via per-state prefix
        sums, O(width log n) per lane at any zoom, bit-identical to
        the :func:`_predominant_keys` reference.  ``None`` when the
        lane cannot be indexed."""
        indexed = getattr(trace, "state_index", None)
        if indexed is None:
            return None
        index = indexed(core)
        if index is None:
            return None
        return index.pixel_keys(view)

    def color_of(self, key):
        """The state palette color of one state id."""
        return palettes.state_color(key)


class _TaskMode(TimelineMode):
    """Common base of the modes that color task executions."""

    def lane_events(self, trace, core):
        starts = trace.tasks.core_column(core, "start")
        ends = trace.tasks.core_column(core, "end")
        keys = self.task_keys(trace, core)
        return starts, ends, keys

    def task_keys(self, trace, core):
        raise NotImplementedError


class HeatmapMode(_TaskMode):
    """Task durations as shades of red, darker = longer (Fig. 7/17).

    Durations are normalized either to a user-defined [minimum,
    maximum] interval or, by default, to the shortest and longest task
    in the trace (the paper normalizes to the currently displayed
    range; pass explicit bounds for that behaviour).
    """

    name = "heatmap"

    def __init__(self, shades=10, minimum=None, maximum=None,
                 task_filter=None):
        self.shades = palettes.heatmap_shades(shades)
        self.minimum = minimum
        self.maximum = maximum
        self.task_filter = task_filter
        self._mask = None

    def prepare(self, trace):
        """Compute the duration decile bounds over the whole trace."""
        columns = trace.tasks.columns
        durations = columns["end"] - columns["start"]
        if self.task_filter is not None:
            self._mask = self.task_filter.mask(trace)
            visible = durations[self._mask]
        else:
            visible = durations
        if len(visible) == 0:
            self._lo, self._hi = 0.0, 1.0
        else:
            self._lo = (float(visible.min()) if self.minimum is None
                        else float(self.minimum))
            self._hi = (float(visible.max()) if self.maximum is None
                        else float(self.maximum))
        if self._hi <= self._lo:
            self._hi = self._lo + 1.0

    def task_keys(self, trace, core):
        """One core's task intervals keyed by duration decile."""
        starts = trace.tasks.core_column(core, "start")
        ends = trace.tasks.core_column(core, "end")
        fractions = (ends - starts - self._lo) / (self._hi - self._lo)
        keys = np.clip((fractions * len(self.shades)).astype(np.int64),
                       0, len(self.shades) - 1)
        if self._mask is not None:
            lane = trace.tasks.core_slice(core)
            keys = np.where(self._mask[lane], keys, -1)
        return keys

    def color_of(self, key):
        """The red shade of one duration decile."""
        return self.shades[int(key)]


class TypeMode(_TaskMode):
    """One color per task type: which work function runs where (Fig. 9)."""

    name = "typemap"

    def prepare(self, trace):
        """Assign every task type a palette slot."""
        self._palette = palettes.type_palette(max(len(trace.task_types), 1))

    def task_keys(self, trace, core):
        """One core's task intervals keyed by type id."""
        return trace.tasks.core_column(core, "type_id")

    def color_of(self, key):
        """The palette color of one task type."""
        return self._palette[int(key) % len(self._palette)]


class NumaMode(_TaskMode):
    """NUMA node targeted by each task's reads or writes (Fig. 14a-d)."""

    def __init__(self, kind="read"):
        if kind not in ("read", "write"):
            raise ValueError("kind must be 'read' or 'write'")
        self.kind = kind
        self.name = "numa_{}".format(kind)

    def prepare(self, trace):
        """Precompute per-task NUMA byte tallies for the access kind."""
        self._palette = palettes.numa_palette(trace.topology.num_nodes)
        self._nodes = numa_analysis.task_predominant_nodes(trace,
                                                           self.kind)

    def task_keys(self, trace, core):
        """One core's task intervals keyed by dominant remote node."""
        return self._nodes[trace.tasks.core_slice(core)]

    def color_of(self, key):
        """The node palette color (gray for no data)."""
        return self._palette[int(key) % len(self._palette)]


class NumaHeatmapMode(_TaskMode):
    """Average fraction of remote accesses, blue to pink (Fig. 14e/f)."""

    name = "numa_heatmap"
    continuous = True

    def prepare(self, trace):
        """Precompute per-task remote-access fractions."""
        self._fractions = numa_analysis.task_remote_fractions(trace)

    def task_keys(self, trace, core):
        """One core's task intervals keyed by remote-fraction bucket."""
        return self._fractions[trace.tasks.core_slice(core)]

    def value_color(self, value):
        """Blue-to-red ramp over the remote fraction."""
        return palettes.numa_heat_color(value)


#: Public mode names -> zero-argument factories.  These are the
#: strings the CLI ``--mode`` flag and the service ``render`` endpoint
#: accept; :func:`timeline_mode` turns one into a ready mode object.
TIMELINE_MODES = {
    "state": StateMode,
    "heatmap": HeatmapMode,
    "typemap": TypeMode,
    "numa-read": lambda: NumaMode("read"),
    "numa-write": lambda: NumaMode("write"),
    "numa-heatmap": NumaHeatmapMode,
}


def timeline_mode(name):
    """Instantiate a timeline mode from its public name.

    Accepts any key of :data:`TIMELINE_MODES`; raises ``ValueError``
    (listing the valid names) otherwise, so callers that forward
    user-supplied strings get a clean diagnostic.
    """
    try:
        factory = TIMELINE_MODES[str(name)]
    except KeyError:
        raise ValueError("unknown timeline mode {!r}; valid: {}".format(
            name, ", ".join(sorted(TIMELINE_MODES)))) from None
    return factory()


def _pixel_edges(view):
    """The time stamps t0(x) of every pixel column, plus ``view.end``.

    Valid as bin edges only when ``duration >= width`` — otherwise
    :meth:`TimelineView.pixel_interval` widens zero-cycle pixels to one
    cycle and adjacent pixel intervals overlap.
    """
    x = np.arange(view.width + 1, dtype=np.int64)
    return view.start + view.duration * x // view.width


def _pixel_spans(starts, ends, edges):
    """First/last pixel column touched by each (clipped) event."""
    width = len(edges) - 1
    first = np.clip(np.searchsorted(edges, starts, side="right") - 1,
                    0, width - 1)
    last = np.clip(np.searchsorted(edges, ends, side="left") - 1,
                   0, width - 1)
    return first, last


def _predominant_keys(starts, ends, keys, view):
    """Predominant key per pixel column (-1 where nothing is visible).

    Per-key pixel coverage is accumulated vectorized — partial first
    and last pixels by scatter-add, fully covered interior pixels by a
    per-key difference array — and the key with the largest coverage
    wins the pixel: Section VI-B's "every pixel is drawn only once".
    Views zoomed below one cycle per pixel (overlapping pixel
    intervals) fall back to the scalar two-pointer walk.
    """
    result = np.full(view.width, -1, dtype=np.int64)
    if len(starts) == 0:
        return result
    if view.duration < view.width:
        return _predominant_keys_walk(starts, ends, keys, view)
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.int64)
    visible = (ends > view.start) & (starts < view.end) & (keys >= 0)
    if not visible.any():
        return result
    starts = np.clip(starts[visible], view.start, view.end)
    ends = np.clip(ends[visible], view.start, view.end)
    uniq, inverse = np.unique(keys[visible], return_inverse=True)
    width = view.width
    edges = _pixel_edges(view)
    first, last = _pixel_spans(starts, ends, edges)
    coverage = np.zeros((width, len(uniq)), dtype=np.int64)
    head = (np.minimum(ends, edges[first + 1])
            - np.maximum(starts, edges[first]))
    np.add.at(coverage, (first, inverse), np.clip(head, 0, None))
    multi = last > first
    if multi.any():
        tail = (np.minimum(ends[multi], edges[last[multi] + 1])
                - edges[last[multi]])
        np.add.at(coverage, (last[multi], inverse[multi]),
                  np.clip(tail, 0, None))
        covering = np.zeros((width + 1, len(uniq)), dtype=np.int64)
        np.add.at(covering, (first[multi] + 1, inverse[multi]), 1)
        np.add.at(covering, (last[multi], inverse[multi]), -1)
        coverage += (np.cumsum(covering[:width], axis=0)
                     * np.diff(edges)[:, None])
    # argmax picks the first (smallest) key on coverage ties, matching
    # the walk's max(coverage, key=(coverage, -key)) tie-break.
    best = np.argmax(coverage, axis=1)
    covered = coverage[np.arange(width), best] > 0
    result[covered] = uniq[best[covered]]
    return result


def _predominant_keys_walk(starts, ends, keys, view):
    """Scalar two-pointer reference walk (overlapping-pixel views)."""
    result = np.full(view.width, -1, dtype=np.int64)
    count = len(starts)
    event = 0
    for x in range(view.width):
        t0, t1 = view.pixel_interval(x)
        while event < count and ends[event] <= t0:
            event += 1
        if event >= count or starts[event] >= t1:
            continue
        coverage = {}
        cursor = event
        while cursor < count and starts[cursor] < t1:
            key = int(keys[cursor])
            overlap = (min(int(ends[cursor]), t1)
                       - max(int(starts[cursor]), t0))
            if overlap > 0 and key >= 0:
                coverage[key] = coverage.get(key, 0) + overlap
            if ends[cursor] > t1:
                break
            cursor += 1
        if coverage:
            result[x] = max(coverage, key=lambda k: (coverage[k], -k))
    return result


def _mean_values_per_pixel(starts, ends, values, view):
    """Coverage-weighted mean value per pixel (continuous modes).

    Two value-weighted/unweighted overlap-binning passes over the
    pixel grid (the same difference-array kernel the derived metrics
    use, :func:`repro.core.metrics.overlap_per_bin`) and a divide;
    sub-cycle-pixel views fall back to the scalar walk like
    :func:`_predominant_keys`.
    """
    result = np.full(view.width, np.nan, dtype=np.float64)
    if len(starts) == 0:
        return result
    if view.duration < view.width:
        return _mean_values_walk(starts, ends, values, view)
    edges = _pixel_edges(view).astype(np.float64)
    weighted = overlap_per_bin(starts, ends, edges,
                                weights=np.asarray(values,
                                                   dtype=np.float64))
    coverage = overlap_per_bin(starts, ends, edges)
    covered = coverage > 0
    result[covered] = weighted[covered] / coverage[covered]
    return result


def _mean_values_walk(starts, ends, values, view):
    """Scalar two-pointer reference walk (overlapping-pixel views)."""
    result = np.full(view.width, np.nan, dtype=np.float64)
    count = len(starts)
    event = 0
    for x in range(view.width):
        t0, t1 = view.pixel_interval(x)
        while event < count and ends[event] <= t0:
            event += 1
        if event >= count or starts[event] >= t1:
            continue
        weighted = 0.0
        total = 0
        cursor = event
        while cursor < count and starts[cursor] < t1:
            overlap = (min(int(ends[cursor]), t1)
                       - max(int(starts[cursor]), t0))
            if overlap > 0:
                weighted += float(values[cursor]) * overlap
                total += overlap
            if ends[cursor] > t1:
                break
            cursor += 1
        if total:
            result[x] = weighted / total
    return result


def _paint_background(framebuffer, lane_height, lane_tops):
    for index, top in enumerate(lane_tops):
        color = (palettes.BACKGROUND_EVEN if index % 2 == 0
                 else palettes.BACKGROUND_ODD)
        framebuffer.fill_rect(0, top, framebuffer.width, lane_height,
                              color)


def render_timeline(trace, mode, view=None, framebuffer=None,
                    optimized=True, indexed=True):
    """Render one timeline mode into a framebuffer.

    ``optimized=True`` uses predominant-pixel rendering with rectangle
    aggregation; ``optimized=False`` renders one rectangle per event
    (the naive approach of Fig. 20), useful only for benchmarking.
    With ``indexed=True`` (default) a mode backed by a per-trace
    pyramid (:meth:`TimelineMode.pixel_keys`) computes each lane's
    per-pixel keys without touching the event lane; ``indexed=False``
    keeps the lane-scanning path as the parity reference.  Both
    produce bit-identical framebuffers and draw-call counts.
    """
    view = TimelineView.fit(trace) if view is None else view
    if framebuffer is None:
        framebuffer = Framebuffer(view.width, view.height)
    mode.prepare(trace)
    lane_height, lane_tops = view.lane_geometry(trace.num_cores)
    _paint_background(framebuffer, lane_height, lane_tops)
    framebuffer.reset_counters()
    for core in range(trace.num_cores):
        top = lane_tops[core]
        if optimized and indexed and not mode.continuous:
            pixel_keys = mode.pixel_keys(trace, core, view)
            if pixel_keys is not None:
                _fill_key_runs(framebuffer, mode, pixel_keys, view, top,
                               lane_height)
                continue
        starts, ends, keys = mode.lane_events(trace, core)
        visible = interval_slice(starts, ends, view.start, view.end)
        starts = starts[visible]
        ends = ends[visible]
        keys = keys[visible]
        if mode.continuous:
            _render_lane_continuous(framebuffer, mode, view, starts, ends,
                                    keys, top, lane_height)
        elif optimized:
            _render_lane_optimized(framebuffer, mode, view, starts, ends,
                                   keys, top, lane_height)
        else:
            _render_lane_naive(framebuffer, mode, view, starts, ends,
                               keys, top, lane_height)
    return framebuffer


def _render_lane_optimized(framebuffer, mode, view, starts, ends, keys,
                           top, lane_height):
    pixel_keys = _predominant_keys(starts, ends, keys, view)
    _fill_key_runs(framebuffer, mode, pixel_keys, view, top, lane_height)


def _fill_key_runs(framebuffer, mode, pixel_keys, view, top, lane_height):
    """Aggregate equal-key pixel runs into single rectangle fills
    (Section VI-B's draw-call aggregation)."""
    x = 0
    width = view.width
    while x < width:
        key = pixel_keys[x]
        if key < 0:
            x += 1
            continue
        run_end = x + 1
        while run_end < width and pixel_keys[run_end] == key:
            run_end += 1
        framebuffer.fill_rect(x, top, run_end - x, lane_height,
                              mode.color_of(key))
        x = run_end


def _render_lane_continuous(framebuffer, mode, view, starts, ends, values,
                            top, lane_height):
    pixel_values = _mean_values_per_pixel(starts, ends, values, view)
    x = 0
    width = view.width
    while x < width:
        if np.isnan(pixel_values[x]):
            x += 1
            continue
        color = mode.value_color(pixel_values[x])
        run_end = x + 1
        while (run_end < width and not np.isnan(pixel_values[run_end])
               and mode.value_color(pixel_values[run_end]) == color):
            run_end += 1
        framebuffer.fill_rect(x, top, run_end - x, lane_height, color)
        x = run_end


def _render_lane_naive(framebuffer, mode, view, starts, ends, keys, top,
                       lane_height):
    """One rectangle per event, possibly overdrawing the same pixel."""
    for index in range(len(starts)):
        key = int(keys[index])
        if key < 0:
            continue
        x0 = view.time_to_pixel(int(starts[index]))
        x1 = view.time_to_pixel(int(ends[index]))
        framebuffer.fill_rect(max(x0, 0), top, max(x1 - x0, 1),
                              lane_height, mode.color_of(key))
