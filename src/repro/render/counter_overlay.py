"""Performance-counter overlays on the timeline (Section VI-B, Fig. 21).

A counter is rendered on top of the timeline as a curve.  The naive
approach draws one line per pair of adjacent samples; when many samples
fall within a single horizontal pixel that wastes drawing operations.
Aftermath instead determines, per pixel column, the minimum and maximum
counter values (``vmin``/``vmax``), maps them to pixels and draws one
vertical line — with the n-ary min/max search tree of Section VI-B-c
avoiding a scan of every sample in the column.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.interval_tree import CounterIndex
from ..core.metrics import discrete_derivative


def value_bounds(trace, counter_id, cores=None):
    """Global (min, max) of a counter across cores, for axis scaling."""
    cores = range(trace.num_cores) if cores is None else cores
    minimum, maximum = np.inf, -np.inf
    for core in cores:
        __, values = trace.counter_samples(core, counter_id)
        if len(values):
            minimum = min(minimum, float(values.min()))
            maximum = max(maximum, float(values.max()))
    if not np.isfinite(minimum):
        return 0.0, 1.0
    if maximum <= minimum:
        maximum = minimum + 1.0
    return minimum, maximum


def _value_to_y(value, bounds, top, height):
    lo, hi = bounds
    fraction = (value - lo) / (hi - lo)
    fraction = min(max(fraction, 0.0), 1.0)
    return int(top + (height - 1) * (1.0 - fraction))


def render_counter(trace, counter, view, framebuffer, core=0,
                   color=(255, 60, 60), top=None, height=None,
                   bounds=None, counter_index=None, optimized=True):
    """Render one core's counter curve into the framebuffer.

    With ``optimized=True`` each pixel column draws exactly one
    vertical line spanning [pmin, pmax] (Fig. 21b); the min/max query
    uses ``counter_index`` (a :class:`CounterIndex`) when provided.
    With ``optimized=False`` every adjacent sample pair becomes a line
    (Fig. 21a) — the baseline the rendering benchmark compares against.
    Returns the number of drawing operations issued.
    """
    counter_id = (trace.counter_id(counter) if isinstance(counter, str)
                  else counter)
    top = 0 if top is None else top
    height = framebuffer.height if height is None else height
    bounds = value_bounds(trace, counter_id, cores=(core,)) \
        if bounds is None else bounds
    timestamps, values = trace.counter_samples(core, counter_id)
    before = framebuffer.draw_calls
    if len(timestamps) == 0:
        return 0
    if not optimized:
        for index in range(len(timestamps) - 1):
            x0 = view.time_to_pixel(int(timestamps[index]))
            x1 = view.time_to_pixel(int(timestamps[index + 1]))
            if x1 < 0 or x0 >= view.width:
                continue
            y0 = _value_to_y(values[index], bounds, top, height)
            y1 = _value_to_y(values[index + 1], bounds, top, height)
            framebuffer.draw_line(max(x0, 0), y0,
                                  min(x1, view.width - 1), y1, color)
        return framebuffer.draw_calls - before
    for x in range(view.width):
        t0, t1 = view.pixel_interval(x)
        if counter_index is not None:
            extremes = counter_index.query_time_range(core, counter_id,
                                                      t0, t1)
        else:
            lo = int(np.searchsorted(timestamps, t0, side="left"))
            hi = int(np.searchsorted(timestamps, t1, side="left"))
            extremes = ((float(values[lo:hi].min()),
                         float(values[lo:hi].max()))
                        if hi > lo else None)
        if extremes is None:
            # No sample in this column: interpolate at the pixel center.
            center = (t0 + t1) // 2
            if center < timestamps[0] or center > timestamps[-1]:
                continue
            value = float(np.interp(center, timestamps, values))
            extremes = (value, value)
        y_max = _value_to_y(extremes[0], bounds, top, height)
        y_min = _value_to_y(extremes[1], bounds, top, height)
        framebuffer.vertical_line(x, y_min, y_max, color)
    return framebuffer.draw_calls - before


def render_derived_series(series, view, framebuffer, color=(90, 220, 90),
                          top=None, height=None):
    """Render a materialized :class:`DerivedSeries` over the timeline.

    Derived metrics are global (not per core), so the curve spans the
    full overlay height by default; drawing uses the same one-vertical-
    line-per-pixel scheme as hardware counters.
    """
    timestamps, values = series.sample_points()
    top = 0 if top is None else top
    height = framebuffer.height if height is None else height
    if len(timestamps) == 0:
        return 0
    lo = float(np.min(values))
    hi = float(np.max(values))
    bounds = (lo, hi if hi > lo else lo + 1.0)
    before = framebuffer.draw_calls
    for x in range(view.width):
        t0, t1 = view.pixel_interval(x)
        first = int(np.searchsorted(timestamps, t0, side="left"))
        last = int(np.searchsorted(timestamps, t1, side="left"))
        if first < last:
            window = values[first:last]
            extremes = (float(window.min()), float(window.max()))
        else:
            center = (t0 + t1) // 2
            if center < timestamps[0] or center > timestamps[-1]:
                continue
            value = float(np.interp(center, timestamps, values))
            extremes = (value, value)
        y_max = _value_to_y(extremes[0], bounds, top, height)
        y_min = _value_to_y(extremes[1], bounds, top, height)
        framebuffer.vertical_line(x, y_min, y_max, color)
    return framebuffer.draw_calls - before


def render_counter_rate(trace, counter, view, framebuffer, core=0,
                        color=(255, 160, 40), top=None, height=None):
    """Render the discrete derivative of a counter on one core — the
    per-task constant-rate look of Fig. 18 (counters are sampled at task
    boundaries, so the rate is constant across each task)."""
    counter_id = (trace.counter_id(counter) if isinstance(counter, str)
                  else counter)
    timestamps, values = trace.counter_samples(core, counter_id)
    top = 0 if top is None else top
    height = framebuffer.height if height is None else height
    if len(timestamps) < 2:
        return 0
    rates = discrete_derivative(timestamps, values)
    bounds = (float(rates.min()), float(max(rates.max(),
                                            rates.min() + 1e-12)))
    before = framebuffer.draw_calls
    previous_y = None
    for index in range(len(rates)):
        x0 = view.time_to_pixel(int(timestamps[index]))
        x1 = view.time_to_pixel(int(timestamps[index + 1]))
        if x1 < 0 or x0 >= view.width:
            continue
        y = _value_to_y(rates[index], bounds, top, height)
        for x in range(max(x0, 0), min(x1 + 1, view.width)):
            framebuffer.put_pixel(x, y, color)
        if previous_y is not None and x0 >= 0:
            framebuffer.vertical_line(max(x0, 0), previous_y, y, color)
        previous_y = y
    return framebuffer.draw_calls - before
