"""Performance-counter overlays on the timeline (Section VI-B, Fig. 21).

A counter is rendered on top of the timeline as a curve.  The naive
approach draws one line per pair of adjacent samples; when many samples
fall within a single horizontal pixel that wastes drawing operations.
Aftermath instead determines, per pixel column, the minimum and maximum
counter values (``vmin``/``vmax``), maps them to pixels and draws one
vertical line — with the n-ary min/max search tree of Section VI-B-c
avoiding a scan of every sample in the column.

Two implementations of the optimized mode coexist:

* the **vectorized kernel** (default) — one batched ``searchsorted``
  over the pixel edges and one ``segment_minmax``/
  :meth:`~repro.core.interval_tree.MinMaxTree.query_segments` pass
  computes every column's extremes at once, with the per-``(core,
  counter)`` trees memoized on the trace store
  (:meth:`~repro.core.trace.EventViewMixin.minmax_tree` — served from
  the ``.ostc`` sidecar's persisted pyramid levels on memory-mapped
  stores) so repeated zoom/pan frames rebuild nothing; views zoomed
  below one cycle per pixel (overlapping widened pixel intervals) use
  the gather-based :func:`_column_extremes_zoomed` variant instead of
  falling back to the per-pixel loop;
* the **scalar reference** (``vectorized=False``) — the original
  per-pixel loop, kept as the executable specification the parity
  tests and the interactive benchmark compare against.

Both produce bit-identical framebuffers and draw-call counts.
"""

from __future__ import annotations


import numpy as np

from ..core.interval_tree import CounterIndex, segment_minmax
from ..core.metrics import discrete_derivative


def value_bounds(trace, counter_id, cores=None):
    """Global (min, max) of a counter across cores, for axis scaling.

    Routed through the per-``(core, counter)`` min/max trees memoized
    on the trace store: the first call builds each tree once, every
    later frame reads the tree roots in O(1) instead of rescanning all
    samples (the per-frame waste this function used to pay).
    """
    cores = range(trace.num_cores) if cores is None else cores
    memoized = getattr(trace, "minmax_tree", None)
    minimum, maximum = np.inf, -np.inf
    for core in cores:
        if memoized is not None:
            extremes = memoized(core, counter_id).bounds()
        else:
            __, values = trace.counter_samples(core, counter_id)
            extremes = ((float(values.min()), float(values.max()))
                        if len(values) else None)
        if extremes is not None:
            minimum = min(minimum, extremes[0])
            maximum = max(maximum, extremes[1])
    if not np.isfinite(minimum):
        return 0.0, 1.0
    if maximum <= minimum:
        maximum = minimum + 1.0
    return minimum, maximum


def _value_to_y(value, bounds, top, height):
    lo, hi = bounds
    fraction = (value - lo) / (hi - lo)
    fraction = min(max(fraction, 0.0), 1.0)
    return int(top + (height - 1) * (1.0 - fraction))


def _values_to_y(values, bounds, top, height):
    """Vectorized :func:`_value_to_y` (identical floats, truncation)."""
    lo, hi = bounds
    fraction = (np.asarray(values, dtype=np.float64) - lo) / (hi - lo)
    fraction = np.clip(fraction, 0.0, 1.0)
    return (top + (height - 1) * (1.0 - fraction)).astype(np.int64)


def _pixel_edges(view):
    """t0(x) of every pixel column plus ``view.end``; a valid
    partition of the view only when ``duration >= width``."""
    x = np.arange(view.width + 1, dtype=np.int64)
    return view.start + view.duration * x // view.width


def _column_extremes(timestamps, values, view, tree=None):
    """Per-column (vmin, vmax) of every drawable pixel, batched.

    Covered columns take their extremes from one
    ``segment_minmax``/``query_segments`` pass (the pixel edges cut the
    sorted sample lane into one contiguous partition); empty columns
    interpolate at the pixel center exactly like the scalar reference.
    Returns ``(xs, vmins, vmaxs)`` for the columns to draw.
    """
    empty = np.empty(0, dtype=np.float64)
    if len(timestamps) == 0:
        # Nothing to draw, like the scalar reference (and unlike the
        # unguarded kernel, which indexed timestamps[0]/[-1]).
        return np.empty(0, dtype=np.int64), empty, empty
    edges = _pixel_edges(view)
    boundaries = np.searchsorted(timestamps, edges, side="left")
    if tree is not None:
        vmins, vmaxs = tree.query_segments(boundaries)
    else:
        vmins, vmaxs = segment_minmax(values, boundaries)
    covered = np.diff(boundaries) > 0
    centers = (edges[:-1] + edges[1:]) // 2
    inside = (~covered & (centers >= timestamps[0])
              & (centers <= timestamps[-1]))
    if inside.any():
        interpolated = np.interp(centers[inside], timestamps, values)
        vmins[inside] = interpolated
        vmaxs[inside] = interpolated
    draw = covered | inside
    xs = np.flatnonzero(draw)
    return xs, vmins[draw], vmaxs[draw]


def _column_extremes_zoomed(timestamps, values, view):
    """Per-column (vmin, vmax) for views zoomed below one cycle per
    pixel, batched.

    In this regime zero-cycle pixel intervals are widened to one cycle
    (``TimelineView.pixel_interval``), so adjacent columns *overlap*
    and no single partition of the lane exists; instead each column's
    (possibly shared) sample range is gathered and reduced in one
    ``reduceat`` pass — the ranges span at most a few samples at this
    zoom, so the cost stays O(width).  Empty columns interpolate at
    the pixel center.  Bit-identical to the scalar per-pixel loop.
    Returns ``(xs, vmins, vmaxs)`` for the columns to draw.
    """
    empty = np.empty(0, dtype=np.float64)
    if len(timestamps) == 0:
        return np.empty(0, dtype=np.int64), empty, empty
    edges = _pixel_edges(view)
    t0 = edges[:-1]
    t1 = np.maximum(edges[1:], t0 + 1)
    lo = np.searchsorted(timestamps, t0, side="left")
    hi = np.searchsorted(timestamps, t1, side="left")
    covered = hi > lo
    vmins = np.full(view.width, np.nan, dtype=np.float64)
    vmaxs = np.full(view.width, np.nan, dtype=np.float64)
    if covered.any():
        range_lo = lo[covered]
        range_len = (hi - lo)[covered]
        first = np.cumsum(range_len) - range_len
        flat = (np.arange(int(range_len.sum()))
                - np.repeat(first - range_lo, range_len))
        gathered = np.asarray(values, dtype=np.float64)[flat]
        vmins[covered] = np.minimum.reduceat(gathered, first)
        vmaxs[covered] = np.maximum.reduceat(gathered, first)
    centers = (t0 + t1) // 2
    inside = (~covered & (centers >= timestamps[0])
              & (centers <= timestamps[-1]))
    if inside.any():
        interpolated = np.interp(centers[inside], timestamps, values)
        vmins[inside] = interpolated
        vmaxs[inside] = interpolated
    draw = covered | inside
    xs = np.flatnonzero(draw)
    return xs, vmins[draw], vmaxs[draw]


def _draw_columns(framebuffer, xs, vmins, vmaxs, bounds, top, height,
                  color):
    """Emit the drawable columns as one batched vertical-line call —
    pixels and draw-call accounting identical to the scalar
    reference's per-column loop."""
    y_from_max = _values_to_y(vmaxs, bounds, top, height)
    y_from_min = _values_to_y(vmins, bounds, top, height)
    return framebuffer.vertical_lines(xs, y_from_max, y_from_min, color)


def render_counter(trace, counter, view, framebuffer, core=0,
                   color=(255, 60, 60), top=None, height=None,
                   bounds=None, counter_index=None, optimized=True,
                   vectorized=True):
    """Render one core's counter curve into the framebuffer.

    With ``optimized=True`` each pixel column draws exactly one
    vertical line spanning [pmin, pmax] (Fig. 21b); the column extremes
    come from the vectorized batched kernel (or, with
    ``vectorized=False``, the scalar per-pixel reference loop, which
    uses ``counter_index`` — a :class:`CounterIndex` — when provided).
    With ``optimized=False`` every adjacent sample pair becomes a line
    (Fig. 21a) — the baseline the rendering benchmark compares against.
    Returns the number of drawing operations issued.
    """
    counter_id = (trace.counter_id(counter) if isinstance(counter, str)
                  else counter)
    top = 0 if top is None else top
    height = framebuffer.height if height is None else height
    bounds = value_bounds(trace, counter_id, cores=(core,)) \
        if bounds is None else bounds
    timestamps, values = trace.counter_samples(core, counter_id)
    before = framebuffer.draw_calls
    if len(timestamps) == 0:
        return 0
    if not optimized:
        for index in range(len(timestamps) - 1):
            x0 = view.time_to_pixel(int(timestamps[index]))
            x1 = view.time_to_pixel(int(timestamps[index + 1]))
            if x1 < 0 or x0 >= view.width:
                continue
            y0 = _value_to_y(values[index], bounds, top, height)
            y1 = _value_to_y(values[index + 1], bounds, top, height)
            framebuffer.draw_line(max(x0, 0), y0,
                                  min(x1, view.width - 1), y1, color)
        return framebuffer.draw_calls - before
    if vectorized:
        served = getattr(trace, "counter_columns", None)
        columns = (served(core, counter_id, view)
                   if served is not None else None)
        if columns is not None:
            # A mapped store persisted this view's pixel columns at
            # cache-write time — computed by _column_extremes itself,
            # so drawing them is bit-identical to running the kernel.
            xs, vmins, vmaxs = columns
        elif view.duration >= view.width:
            tree = None
            if counter_index is not None:
                tree = counter_index.tree(core, counter_id)
            else:
                memoized = getattr(trace, "minmax_tree", None)
                if memoized is not None:
                    tree = memoized(core, counter_id)
            xs, vmins, vmaxs = _column_extremes(timestamps, values,
                                                view, tree=tree)
        else:
            xs, vmins, vmaxs = _column_extremes_zoomed(timestamps,
                                                       values, view)
        _draw_columns(framebuffer, xs, vmins, vmaxs, bounds, top,
                      height, color)
        return framebuffer.draw_calls - before
    for x in range(view.width):
        t0, t1 = view.pixel_interval(x)
        if counter_index is not None:
            extremes = counter_index.query_time_range(core, counter_id,
                                                      t0, t1)
        else:
            lo = int(np.searchsorted(timestamps, t0, side="left"))
            hi = int(np.searchsorted(timestamps, t1, side="left"))
            extremes = ((float(values[lo:hi].min()),
                         float(values[lo:hi].max()))
                        if hi > lo else None)
        if extremes is None:
            # No sample in this column: interpolate at the pixel center.
            center = (t0 + t1) // 2
            if center < timestamps[0] or center > timestamps[-1]:
                continue
            value = float(np.interp(center, timestamps, values))
            extremes = (value, value)
        y_max = _value_to_y(extremes[0], bounds, top, height)
        y_min = _value_to_y(extremes[1], bounds, top, height)
        framebuffer.vertical_line(x, y_min, y_max, color)
    return framebuffer.draw_calls - before


def render_derived_series(series, view, framebuffer, color=(90, 220, 90),
                          top=None, height=None, vectorized=True):
    """Render a materialized :class:`DerivedSeries` over the timeline.

    Derived metrics are global (not per core), so the curve spans the
    full overlay height by default; drawing uses the same one-vertical-
    line-per-pixel scheme as hardware counters, with the same batched
    kernel (``vectorized=False`` keeps the scalar reference loop).
    """
    timestamps, values = series.sample_points()
    top = 0 if top is None else top
    height = framebuffer.height if height is None else height
    if len(timestamps) == 0:
        return 0
    lo = float(np.min(values))
    hi = float(np.max(values))
    bounds = (lo, hi if hi > lo else lo + 1.0)
    before = framebuffer.draw_calls
    if vectorized:
        if view.duration >= view.width:
            xs, vmins, vmaxs = _column_extremes(timestamps, values,
                                                view)
        else:
            xs, vmins, vmaxs = _column_extremes_zoomed(timestamps,
                                                       values, view)
        _draw_columns(framebuffer, xs, vmins, vmaxs, bounds, top,
                      height, color)
        return framebuffer.draw_calls - before
    for x in range(view.width):
        t0, t1 = view.pixel_interval(x)
        first = int(np.searchsorted(timestamps, t0, side="left"))
        last = int(np.searchsorted(timestamps, t1, side="left"))
        if first < last:
            window = values[first:last]
            extremes = (float(window.min()), float(window.max()))
        else:
            center = (t0 + t1) // 2
            if center < timestamps[0] or center > timestamps[-1]:
                continue
            value = float(np.interp(center, timestamps, values))
            extremes = (value, value)
        y_max = _value_to_y(extremes[0], bounds, top, height)
        y_min = _value_to_y(extremes[1], bounds, top, height)
        framebuffer.vertical_line(x, y_min, y_max, color)
    return framebuffer.draw_calls - before


def render_counter_rate(trace, counter, view, framebuffer, core=0,
                        color=(255, 160, 40), top=None, height=None):
    """Render the discrete derivative of a counter on one core — the
    per-task constant-rate look of Fig. 18 (counters are sampled at task
    boundaries, so the rate is constant across each task)."""
    counter_id = (trace.counter_id(counter) if isinstance(counter, str)
                  else counter)
    timestamps, values = trace.counter_samples(core, counter_id)
    top = 0 if top is None else top
    height = framebuffer.height if height is None else height
    if len(timestamps) < 2:
        return 0
    rates = discrete_derivative(timestamps, values)
    bounds = (float(rates.min()), float(max(rates.max(),
                                            rates.min() + 1e-12)))
    before = framebuffer.draw_calls
    previous_y = None
    for index in range(len(rates)):
        x0 = view.time_to_pixel(int(timestamps[index]))
        x1 = view.time_to_pixel(int(timestamps[index + 1]))
        if x1 < 0 or x0 >= view.width:
            continue
        y = _value_to_y(rates[index], bounds, top, height)
        for x in range(max(x0, 0), min(x1 + 1, view.width)):
            framebuffer.put_pixel(x, y, color)
        if previous_y is not None and x0 >= 0:
            framebuffer.vertical_line(max(x0, 0), previous_y, y, color)
        previous_y = y
    return framebuffer.draw_calls - before
