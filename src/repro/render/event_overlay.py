"""Discrete-event overlays on the timeline (Section II-A.1).

The timeline "can be overlaid with supplemental information on ...
specific discrete events (e.g., task creation, communication between
workers)".  This renderer draws one marker per visible discrete event
in each core's lane, aggregating events that fall on the same pixel
column into a single marker (the every-pixel-drawn-once rule applies
to overlays too).
"""

from __future__ import annotations


import numpy as np

from ..core.events import DiscreteEventKind
from ..core.index import discrete_in_interval

#: Default marker colors per event kind.
EVENT_COLORS = {
    int(DiscreteEventKind.TASK_CREATED): (255, 255, 255),
    int(DiscreteEventKind.TASK_STOLEN): (255, 80, 80),
    int(DiscreteEventKind.REGION_ALLOCATED): (80, 255, 80),
    int(DiscreteEventKind.ANNOTATION): (255, 255, 0),
}


def render_discrete_events(trace, view, framebuffer, kind=None,
                           marker_height=3, vectorized=True):
    """Draw markers for discrete events on every core lane.

    ``kind`` restricts to one :class:`DiscreteEventKind`.  Returns the
    number of markers drawn (aggregated per pixel column and lane).

    Marker placement is vectorized: per core, the visible events'
    pixel columns are computed in one pass and deduplicated with a
    shifted-compare (timestamps are sorted per core, so equal columns
    are adjacent); the markers of *all* lanes are then painted with
    one batched draw per event kind.  Lanes are disjoint pixel rows
    and marker columns are distinct within a lane, so the batches
    touch exactly the pixels of the per-event loop —
    ``vectorized=False`` keeps that loop as the parity reference, with
    identical pixels and draw-call counts.
    """
    lane_height, lane_tops = view.lane_geometry(trace.num_cores)
    height = min(marker_height, lane_height)
    markers = 0
    batch_xs, batch_tops, batch_kinds = [], [], []
    for core in range(trace.num_cores):
        columns = discrete_in_interval(trace, core, view.start, view.end,
                                       kind=kind)
        timestamps = columns["timestamp"]
        kinds = columns["kind"]
        if len(timestamps) == 0:
            continue
        pixels = ((timestamps - view.start) * view.width
                  // view.duration)
        if vectorized:
            visible = (pixels >= 0) & (pixels < view.width)
            xs = pixels[visible]
            if len(xs) == 0:
                continue
            first = np.ones(len(xs), dtype=bool)
            first[1:] = xs[1:] != xs[:-1]
            batch_xs.append(xs[first])
            batch_kinds.append(kinds[visible][first])
            batch_tops.append(np.full(int(first.sum()), lane_tops[core],
                                      dtype=np.int64))
            continue
        seen = None
        for index in range(len(pixels)):
            x = int(pixels[index])
            if x == seen or x < 0 or x >= view.width:
                continue
            seen = x
            color = EVENT_COLORS.get(int(kinds[index]),
                                     (200, 200, 200))
            framebuffer.vertical_line(x, lane_tops[core],
                                      lane_tops[core] + height - 1,
                                      color)
            markers += 1
    if batch_xs:
        xs = np.concatenate(batch_xs)
        tops = np.concatenate(batch_tops)
        marker_kinds = np.concatenate(batch_kinds)
        for kind_value in np.unique(marker_kinds):
            group = marker_kinds == kind_value
            color = EVENT_COLORS.get(int(kind_value), (200, 200, 200))
            framebuffer.vertical_lines(xs[group], tops[group],
                                       tops[group] + height - 1, color)
        markers += len(xs)
    return markers


def render_annotations(store, view, framebuffer, trace,
                       color=(255, 255, 0)):
    """Draw user annotations as full-height markers at their timestamp
    (core-anchored annotations mark only that core's lane)."""
    lane_height, lane_tops = view.lane_geometry(trace.num_cores)
    drawn = 0
    for note in store.in_interval(view.start, view.end):
        x = view.time_to_pixel(note.timestamp)
        if not 0 <= x < view.width:
            continue
        if note.core is None:
            framebuffer.vertical_line(x, 0, framebuffer.height - 1,
                                      color)
        else:
            top = lane_tops[note.core]
            framebuffer.vertical_line(x, top, top + lane_height - 1,
                                      color)
        drawn += 1
    return drawn
