"""Transport-independent request handlers of the trace service.

:class:`TraceService` is the whole multi-tenant story minus the
socket: JSON-shaped parameter dicts in, JSON-serializable reply dicts
out, with every failure normalized to a :class:`ServiceError` carrying
a machine-readable ``code`` and an HTTP status.  The HTTP transport
(:mod:`~repro.service.server`) is a thin shell over
:meth:`TraceService.handle`; tests and the doctested API reference
(``docs/service-api.md``) drive the same handlers.

Each client ``open`` creates one server-side
:class:`~repro.session.AnalysisSession` — per-client view, history and
navigation — but every session of the same trace file shares **one**
mapped store through the :class:`~repro.service.pool.MappedCachePool`,
which is what makes the service multi-tenant instead of
multi-process-expensive.  Handlers hold the entry's per-trace lock
while touching the shared store (its memoized pyramids/indexes are
plain dicts), so concurrent clients are safe and still zero-copy.
"""

from __future__ import annotations

import base64
import itertools
import threading

from ..session import AnalysisSession
from ..trace_format.format import FormatError
from .pool import MappedCachePool

#: The service's public endpoints, in documentation order.
ENDPOINTS = ("open", "navigate", "render", "stats", "diff",
             "sweep-status", "close")


class ServiceError(Exception):
    """A request failure with a machine-readable code.

    ``code`` is one of the stable strings documented in
    ``docs/service-api.md`` (``bad_request``, ``unknown_session``,
    ``unknown_endpoint``, ``trace_error``, ``forbidden``,
    ``queue_error``, ``internal``); ``status`` is the HTTP status the
    transport should send.
    """

    def __init__(self, code, message, status=400):
        super().__init__(message)
        self.code = code
        self.status = int(status)

    def payload(self):
        """The JSON error body: ``{"error": {"code", "message"}}``."""
        return {"error": {"code": self.code, "message": str(self)}}


class _SessionRecord:
    """One client session: its path and server-side session object."""

    def __init__(self, sid, path, session):
        self.sid = sid
        self.path = path
        self.session = session


class TraceService:
    """The multi-tenant request handlers over one shared trace pool.

    ``pool_capacity`` bounds resident traces (LRU);  ``root``, when
    given, confines every trace/suite path to that directory
    (requests outside it fail with code ``forbidden``);  ``width`` /
    ``height`` are the default view geometry of new sessions.

    ``reopen_per_request=True`` disables the shared pool: every
    request re-opens its trace from scratch (a parse, ``cache=False``)
    — the naive one-open-per-request server the benchmark uses as its
    baseline.  Never use it in production.
    """

    def __init__(self, pool_capacity=8, root=None, width=1024,
                 height=256, cache=True, reopen_per_request=False):
        self.pool = MappedCachePool(capacity=pool_capacity, cache=cache)
        self.root = None
        if root is not None:
            import os
            self.root = os.path.realpath(str(root))
        self.width = int(width)
        self.height = int(height)
        self.reopen_per_request = bool(reopen_per_request)
        self._sessions = {}
        self._sessions_lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- plumbing ------------------------------------------------------

    def handle(self, endpoint, params):
        """Dispatch one request; the single entry point transports
        call.  Unknown endpoints, malformed parameters and trace
        failures all come back as :class:`ServiceError`."""
        handler = {
            "open": self.open, "navigate": self.navigate,
            "render": self.render, "stats": self.stats,
            "diff": self.diff, "sweep-status": self.sweep_status,
            "close": self.close,
        }.get(endpoint)
        if handler is None:
            raise ServiceError(
                "unknown_endpoint",
                "no endpoint {!r}; valid: {}".format(
                    endpoint, ", ".join(ENDPOINTS)), status=404)
        if not isinstance(params, dict):
            raise ServiceError("bad_request",
                               "request body must be a JSON object")
        try:
            return handler(params)
        except ServiceError:
            raise
        except FileNotFoundError as error:
            raise ServiceError("trace_error",
                               "no such file: {}".format(
                                   error.filename or error), status=404)
        except FormatError as error:
            raise ServiceError("trace_error", str(error), status=422)
        except OSError as error:
            raise ServiceError("trace_error", str(error), status=422)
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError("bad_request",
                               "malformed request: {}".format(error))

    def _check_path(self, path):
        """Normalize a client-supplied path, enforcing the root jail."""
        import os
        path = str(path)
        if self.root is not None:
            real = os.path.realpath(path)
            if not (real + os.sep).startswith(self.root + os.sep):
                raise ServiceError(
                    "forbidden",
                    "path {} is outside the served root".format(path),
                    status=403)
        return path

    def _record(self, params):
        sid = str(params.get("session", ""))
        with self._sessions_lock:
            record = self._sessions.get(sid)
        if record is None:
            raise ServiceError("unknown_session",
                               "no session {!r} (expired or never "
                               "opened)".format(sid), status=404)
        return record

    def _attach(self, record):
        """The (entry-or-None, trace) pair serving one request.

        Pooled mode refreshes the session's store from the shared
        pool — picking up stat-stamp invalidations — and returns the
        entry whose lock the caller must hold.  Reopen-per-request
        mode parses a private store for this request alone.
        """
        if self.reopen_per_request:
            from ..trace_format import read_trace
            trace = read_trace(record.path, columnar=True)
            record.session.trace = trace
            return None, trace
        entry = self.pool.entry(record.path)
        record.session.trace = entry.trace
        return entry, entry.trace

    @staticmethod
    def _view_payload(session):
        view = session.view
        return {"start": int(view.start), "end": int(view.end),
                "width": int(view.width), "height": int(view.height)}

    # -- endpoints -----------------------------------------------------

    def open(self, params):
        """``open``: start a session on a trace file.

        Parameters: ``path`` (required), ``width``/``height``
        (optional view geometry).  Returns the session id, whether the
        mapping was already resident (``shared``), topology facts and
        the initial whole-trace view.
        """
        path = self._check_path(params["path"])
        width = int(params.get("width", self.width))
        height = int(params.get("height", self.height))
        if self.reopen_per_request:
            from ..trace_format import read_trace
            trace = read_trace(path, columnar=True)
            shared = False
        else:
            before = self.pool.hits
            entry = self.pool.entry(path)
            trace = entry.trace
            shared = self.pool.hits > before
        session = AnalysisSession(trace, width=width, height=height)
        sid = "s{}".format(next(self._ids))
        with self._sessions_lock:
            self._sessions[sid] = _SessionRecord(sid, path, session)
        return {"session": sid, "path": path, "shared": shared,
                "cores": int(trace.num_cores),
                "duration": int(trace.duration),
                "view": self._view_payload(session)}

    def navigate(self, params):
        """``navigate``: move a session's view.

        Parameters: ``session``, ``action`` (``zoom`` / ``scroll`` /
        ``goto`` / ``back`` / ``forward`` / ``reset``) plus the
        action's arguments (``factor``/``center``, ``fraction``,
        ``start``/``end``).  Returns the new view.
        """
        record = self._record(params)
        action = params.get("action")
        arguments = {key: params[key]
                     for key in ("factor", "center", "fraction",
                                 "start", "end") if key in params}
        entry, __ = self._attach(record)
        lock = entry.lock if entry is not None else threading.RLock()
        with lock:
            record.session.navigate(action, **arguments)
        return {"session": record.sid,
                "view": self._view_payload(record.session)}

    def render(self, params):
        """``render``: rasterize a session's current view.

        Parameters: ``session``, ``mode`` (a timeline-mode name,
        default ``state``), ``format`` (``ascii`` or ``png``, default
        ``ascii``).  ASCII replies carry ``rows`` (one string per
        pixel row); PNG replies carry base64 bytes in ``png_base64``.
        """
        record = self._record(params)
        mode = params.get("mode", "state")
        encoding = params.get("format", "ascii")
        if encoding not in ("ascii", "png"):
            raise ServiceError("bad_request",
                               "format must be 'ascii' or 'png', got "
                               "{!r}".format(encoding))
        entry, __ = self._attach(record)
        lock = entry.lock if entry is not None else threading.RLock()
        with lock:
            framebuffer = record.session.render_frame(mode)
        reply = {"session": record.sid, "mode": mode,
                 "format": encoding,
                 "width": framebuffer.width,
                 "height": framebuffer.height,
                 "draw_calls": int(framebuffer.draw_calls),
                 "view": self._view_payload(record.session)}
        if encoding == "png":
            reply["png_base64"] = base64.b64encode(
                framebuffer.png_bytes()).decode("ascii")
        else:
            reply["rows"] = framebuffer.to_ascii()
        return reply

    def stats(self, params):
        """``stats``: the interval-statistics panel of a session.

        Parameters: ``session``, optional ``start``/``end`` (default:
        the session's current view window).  Returns the
        :func:`~repro.core.statistics.interval_report` fields with
        state names spelled out.
        """
        record = self._record(params)
        entry, __ = self._attach(record)
        lock = entry.lock if entry is not None else threading.RLock()
        with lock:
            reply = record.session.statistics(
                start=params.get("start"), end=params.get("end"))
        reply["session"] = record.sid
        return reply

    def diff(self, params):
        """``diff``: compare two trace files (experiment engine).

        Parameters: ``baseline`` and ``candidate`` paths, optional
        ``tolerances`` (``relative`` / ``absolute`` /
        ``distribution`` / ``anomalies``).  Returns the
        machine-readable
        :class:`~repro.analysis.experiments.diff.TraceDiffReport`
        dict plus ``empty``/``deviations`` summaries.
        """
        from ..analysis.experiments import DiffTolerances, diff_traces
        baseline = self._check_path(params["baseline"])
        candidate = self._check_path(params["candidate"])
        tolerances = None
        if "tolerances" in params:
            tolerances = DiffTolerances(**dict(params["tolerances"]))
        if self.reopen_per_request:
            from ..trace_format import read_trace
            report = diff_traces(read_trace(baseline, columnar=True),
                                 read_trace(candidate, columnar=True),
                                 tolerances=tolerances)
        else:
            first = self.pool.entry(baseline)
            second = self.pool.entry(candidate)
            # Two locks: take them in path order so two concurrent
            # diffs with swapped operands cannot deadlock.
            ordered = sorted({id(e): e for e in (first, second)}.values(),
                             key=lambda e: e.path)
            with _hold_all(ordered):
                report = diff_traces(first.trace, second.trace,
                                     tolerances=tolerances)
        payload = report.to_dict()
        payload.update({"empty": report.is_empty,
                        "deviations": len(report)})
        return payload

    def sweep_status(self, params):
        """``sweep-status``: poll a suite directory's durable journal.

        Parameters: ``directory`` (a suite directory with a
        ``journal.sqlite``).  Returns per-state job counts plus one
        entry per job — the machine-readable side of
        ``aftermath_cli queue-status``.
        """
        from ..analysis.experiments import QueueError, queue_status
        directory = self._check_path(params["directory"])
        try:
            return queue_status(directory)
        except QueueError as error:
            raise ServiceError("queue_error", str(error), status=404)

    def close(self, params):
        """``close``: drop a session (its trace stays pooled for
        other clients).  Returns the closed id."""
        record = self._record(params)
        with self._sessions_lock:
            self._sessions.pop(record.sid, None)
        return {"closed": record.sid}

    # -- monitoring ----------------------------------------------------

    def describe(self):
        """Pool and session counters (the ``/health`` body)."""
        with self._sessions_lock:
            sessions = len(self._sessions)
        return {"status": "ok", "sessions": sessions,
                "endpoints": list(ENDPOINTS),
                "pool": self.pool.stats()}


class _hold_all:
    """Context manager acquiring several entry locks in given order."""

    def __init__(self, entries):
        self.entries = list(entries)

    def __enter__(self):
        for entry in self.entries:
            entry.lock.acquire()

    def __exit__(self, *exc):
        for entry in reversed(self.entries):
            entry.lock.release()
