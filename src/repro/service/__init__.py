"""Multi-tenant trace-analysis service (ROADMAP item 1).

The session layer (:mod:`repro.session`) is process-local: one
analyst, one process, one trace.  A production deployment serves many
concurrent viewers over the same hot traces, so this package stands up
a long-lived JSON-over-HTTP server — stdlib only, no new hard deps —
in four layers:

* :mod:`~repro.service.pool` — :class:`MappedCachePool`, the shared
  heart: N clients get zero-copy views of **one** ``.ostc`` mapping
  per trace (LRU-evicted, per-trace ``RLock``, stat-stamp
  invalidation) instead of N parses;
* :mod:`~repro.service.api` — :class:`TraceService`, the
  transport-independent request handlers (``open`` / ``navigate`` /
  ``render`` / ``stats`` / ``diff`` / ``sweep-status``) over the same
  :class:`~repro.session.AnalysisSession` API the CLI drives;
* :mod:`~repro.service.server` — the ``ThreadingHTTPServer``
  transport (``POST /api/<endpoint>`` with JSON bodies);
* :mod:`~repro.service.client` — the thin stdlib client behind
  ``aftermath_cli --remote`` and the docs' examples.

Endpoint request/response shapes, pool semantics and error codes are
specified (and doctested) in ``docs/service-api.md``;
``benchmarks/bench_ext_service.py`` pins the shared pool at >= 5x the
throughput of per-request reopening under 16 concurrent clients.
"""

from .api import ServiceError, TraceService
from .client import ServiceClient
from .pool import MappedCachePool, PoolEntry
from .server import TraceServiceServer, create_server, start_server

__all__ = [
    "ServiceError", "TraceService", "ServiceClient",
    "MappedCachePool", "PoolEntry",
    "TraceServiceServer", "create_server", "start_server",
]
