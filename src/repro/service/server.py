"""HTTP transport of the trace service (stdlib ``http.server``).

One :class:`TraceServiceServer` (a ``ThreadingHTTPServer``: one
thread per connection, shared :class:`~repro.service.api.TraceService`
state) speaks a minimal JSON protocol:

* ``POST /api/<endpoint>`` with a JSON object body — the endpoints of
  :data:`~repro.service.api.ENDPOINTS`;
* ``GET /health`` — liveness plus pool/session counters.

Successful replies are ``200`` with the handler's JSON dict; failures
are the :class:`~repro.service.api.ServiceError` status with a
``{"error": {"code", "message"}}`` body.  The protocol is HTTP/1.1
with explicit ``Content-Length``, so clients keep connections alive —
the 16-client benchmark and the thin client both rely on that.

Use :func:`create_server` + ``serve_forever`` for a foreground server
(the CLI ``serve`` subcommand) or :func:`start_server` for a
background thread (tests, docs, notebooks).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

from .api import ServiceError, TraceService


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps the HTTP surface onto :meth:`TraceService.handle`."""

    server_version = "ReproTraceService/1.0"
    protocol_version = "HTTP/1.1"

    def _reply(self, status, payload):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        """``GET /health``: liveness + counters."""
        if urlparse(self.path).path.rstrip("/") in ("", "/health"):
            self._reply(200, self.server.service.describe())
        else:
            self._reply(404, ServiceError(
                "unknown_endpoint",
                "GET serves /health only; the API is POST "
                "/api/<endpoint>", status=404).payload())

    def do_POST(self):
        """``POST /api/<endpoint>`` with a JSON object body."""
        path = urlparse(self.path).path
        if not path.startswith("/api/"):
            self._reply(404, ServiceError(
                "unknown_endpoint",
                "POST endpoints live under /api/", status=404)
                .payload())
            return
        endpoint = path[len("/api/"):].strip("/")
        try:
            length = int(self.headers.get("Content-Length", 0))
            params = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError):
            self._reply(400, ServiceError(
                "bad_request", "request body is not valid JSON")
                .payload())
            return
        try:
            self._reply(200, self.server.service.handle(endpoint,
                                                        params))
        except ServiceError as error:
            self._reply(error.status, error.payload())
        except Exception as error:     # never kill the connection
            self._reply(500, ServiceError(
                "internal", "{}: {}".format(type(error).__name__,
                                            error),
                status=500).payload())

    def log_message(self, format, *args):
        """Quiet by default; ``verbose=True`` restores access logs."""
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)


class TraceServiceServer(ThreadingHTTPServer):
    """A threading HTTP server wrapping one shared ``TraceService``."""

    daemon_threads = True

    def __init__(self, address, service, verbose=False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _ServiceRequestHandler)

    @property
    def url(self):
        """The server's base URL (useful after binding port 0)."""
        host, port = self.server_address[:2]
        return "http://{}:{}".format(host, port)


def create_server(host="127.0.0.1", port=0, service=None, verbose=False,
                  **service_options):
    """Build a bound (not yet serving) :class:`TraceServiceServer`.

    ``port=0`` binds an ephemeral port (read it back from ``.url``).
    Extra keyword arguments construct the :class:`TraceService`
    (``pool_capacity``, ``root``, ``width``, ``height``, ...).
    """
    if service is None:
        service = TraceService(**service_options)
    return TraceServiceServer((host, port), service, verbose=verbose)


def start_server(host="127.0.0.1", port=0, service=None, verbose=False,
                 **service_options):
    """Start a server in a daemon thread and return it serving.

    The caller owns shutdown: ``server.shutdown()`` stops the serve
    loop (the thread is a daemon, so a forgotten server never blocks
    interpreter exit).
    """
    server = create_server(host=host, port=port, service=service,
                           verbose=verbose, **service_options)
    thread = threading.Thread(target=server.serve_forever,
                              name="trace-service", daemon=True)
    thread.start()
    server.thread = thread
    return server
