"""Thin stdlib client for the trace service.

One :class:`ServiceClient` holds a persistent HTTP/1.1 connection
(``http.client``) to a running service and exposes each endpoint as a
method returning the reply dict.  Error replies raise the same
:class:`~repro.service.api.ServiceError` the server-side handlers
produce, code and all, so remote and in-process callers handle
failures identically — this is what ``aftermath_cli --remote`` runs
on, and what the examples in ``docs/service-api.md`` drive.

The client is deliberately free of analysis imports: it speaks JSON
over a socket and nothing else, so a viewer machine needs no trace on
disk and no numpy arrays in memory.
"""

from __future__ import annotations

import base64
import json
from http.client import HTTPConnection, HTTPException
from urllib.parse import urlparse

from .api import ServiceError


class ServiceClient:
    """A persistent-connection JSON client for one service URL."""

    def __init__(self, base_url, timeout=60.0):
        parsed = urlparse(str(base_url))
        if parsed.scheme not in ("", "http"):
            raise ValueError("service URLs are plain http, got "
                             + str(base_url))
        netloc = parsed.netloc or parsed.path
        self.host = netloc.rsplit(":", 1)[0]
        self.port = (int(netloc.rsplit(":", 1)[1])
                     if ":" in netloc else 80)
        self.timeout = timeout
        self._connection = None

    def _connect(self):
        if self._connection is None:
            self._connection = HTTPConnection(self.host, self.port,
                                              timeout=self.timeout)
        return self._connection

    def _roundtrip(self, method, path, body):
        connection = self._connect()
        connection.request(method, path, body=body,
                           headers={"Content-Type":
                                    "application/json"})
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        if isinstance(payload, dict) and "error" in payload:
            error = payload["error"]
            raise ServiceError(error.get("code", "internal"),
                               error.get("message", "request failed"),
                               status=response.status)
        return payload

    def call(self, endpoint, **params):
        """POST one endpoint; returns the reply dict or raises
        :class:`ServiceError` (reconnecting once on a dropped
        keep-alive connection)."""
        body = json.dumps(params).encode("utf-8")
        try:
            return self._roundtrip("POST", "/api/" + endpoint, body)
        except (HTTPException, ConnectionError, BrokenPipeError):
            self.close_connection()
            return self._roundtrip("POST", "/api/" + endpoint, body)

    # -- endpoint conveniences ----------------------------------------

    def open(self, path, **params):
        """Open a trace; returns the ``open`` reply (``session`` id,
        ``shared`` flag, ``view``)."""
        return self.call("open", path=str(path), **params)

    def navigate(self, session, action, **params):
        """Apply one navigation verb to a session."""
        return self.call("navigate", session=session, action=action,
                         **params)

    def render(self, session, **params):
        """Render the session's current view (``format``: ``ascii``
        or ``png``)."""
        return self.call("render", session=session, **params)

    def render_png(self, session, **params):
        """Render to PNG and return the decoded image bytes."""
        params["format"] = "png"
        return base64.b64decode(self.render(session,
                                            **params)["png_base64"])

    def stats(self, session, **params):
        """The interval-statistics panel of a session."""
        return self.call("stats", session=session, **params)

    def diff(self, baseline, candidate, **params):
        """Diff two trace files through the experiment engine."""
        return self.call("diff", baseline=str(baseline),
                         candidate=str(candidate), **params)

    def sweep_status(self, directory):
        """Poll a suite directory's durable job journal."""
        return self.call("sweep-status", directory=str(directory))

    def close(self, session):
        """Close one session on the server."""
        return self.call("close", session=session)

    def health(self):
        """``GET /health``: liveness + pool/session counters."""
        return self._roundtrip("GET", "/health", None)

    def close_connection(self):
        """Drop the persistent connection (reopened on next call)."""
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None
