"""Shared mapped-trace pool: one ``.ostc`` mapping, many clients.

A naive multi-client server opens the trace file once per request —
N clients, N parses, N copies of every lane.  The pool replaces that
with *one* memory-mapped :class:`~repro.core.columnar.ColumnarTrace`
per distinct trace file, shared by every session that has the trace
open:

* **LRU eviction.**  At most ``capacity`` traces stay resident; the
  least-recently-used entry is dropped when a new trace would exceed
  it.  Dropping an entry only releases the pool's reference — sessions
  still holding the old store keep a valid mapping (the pages stay
  mapped until the last reference dies), they just stop sharing
  future invalidations.
* **Per-trace locks.**  Each entry carries a :class:`threading.RLock`.
  The trace stores memoize derived structures (min/max trees, state
  indexes) in plain dicts, so request handlers hold the entry lock
  while touching a shared store; two requests on *different* traces
  never contend.
* **Stat-stamp invalidation.**  Every :meth:`MappedCachePool.entry`
  call re-stats the source file (size + ``mtime_ns``, the same stamp
  the ``.ostc`` sidecar embeds).  A trace file that changed on disk —
  a sweep point regenerated, a trace overwritten — is transparently
  reopened; requests that started on the old mapping finish on it
  unharmed (an ``os.replace`` leaves the mapped inode alive).

The pool is transport-agnostic: the HTTP service is its only current
client, but anything long-lived that opens traces repeatedly (a
notebook kernel, a watcher) can sit on it directly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..trace_format.cache import source_stamp


@dataclass
class PoolEntry:
    """One resident trace: the shared store plus its coordination
    state.

    ``trace`` is the memory-mapped (or, with ``cache=False``, parsed)
    columnar store every session of this path shares; ``lock``
    serializes access to the store's memoized structures; ``stamp`` is
    the source file's identity (size + mtime) at open time, checked on
    every later acquisition.
    """

    path: str
    trace: object
    stamp: dict
    lock: threading.RLock = field(default_factory=threading.RLock)
    hits: int = 0


class MappedCachePool:
    """An LRU pool of shared, memory-mapped trace stores.

    ``capacity`` bounds the number of resident traces; ``cache``
    selects the open path (``True``: through the ``.ostc`` sidecar —
    the production configuration; ``False``: parse into a private
    columnar store, used only to baseline the benchmark).  All methods
    are thread-safe.
    """

    def __init__(self, capacity=8, cache=True):
        if capacity < 1:
            raise ValueError("pool capacity must be at least 1")
        self.capacity = int(capacity)
        self.cache = cache
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _open(self, path):
        from ..trace_format import read_trace
        if self.cache:
            return read_trace(path, cache=True)
        return read_trace(path, columnar=True)

    def entry(self, path) -> PoolEntry:
        """The shared :class:`PoolEntry` for ``path``, opening (or
        transparently reopening, when the source file changed on disk)
        as needed.

        Opening happens under the pool lock, so two clients racing to
        open the same cold trace parse it once, not twice.  Raises
        ``OSError`` when the source file is unreadable and
        :class:`~repro.trace_format.format.FormatError` when it is not
        a trace.
        """
        path = str(path)
        stamp = source_stamp(path)
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None:
                if entry.stamp == stamp:
                    self._entries.move_to_end(path)
                    entry.hits += 1
                    self.hits += 1
                    return entry
                # Source changed under the pool: drop the stale
                # mapping (in-flight holders keep theirs) and reopen.
                del self._entries[path]
                self.invalidations += 1
            self.misses += 1
            entry = PoolEntry(path=path, trace=self._open(path),
                              stamp=stamp)
            self._entries[path] = entry
            self._entries.move_to_end(path)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    def invalidate(self, path=None):
        """Forget one resident trace (or, with no argument, all of
        them); the next :meth:`entry` reopens from disk."""
        with self._lock:
            if path is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                dropped = int(str(path) in self._entries)
                self._entries.pop(str(path), None)
            self.invalidations += dropped
            return dropped

    def resident(self):
        """Paths currently resident, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def stats(self):
        """Counters for monitoring: hits, misses, evictions,
        invalidations and the resident-trace count."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "invalidations": self.invalidations,
                    "resident": len(self._entries),
                    "capacity": self.capacity}

    def __len__(self):
        with self._lock:
            return len(self._entries)
