"""Memory-mapped columnar trace cache (the ``.ostc`` sidecar).

Parsing a trace file rebuilds the Section VI-B-c arrays — one sorted
structured array per core and per record kind — from scratch on every
open, which dominates the time-to-first-pixel of an interactive
session.  This module persists a :class:`~repro.core.columnar.
ColumnarTrace` *in its final memory layout*: a small JSON header (the
static records plus an array manifest) followed by the raw bytes of
every lane, 64-byte aligned.  Reopening maps the file with
``np.memmap`` and wraps the manifest's byte ranges as structured-array
views — no parsing, no copying, and no page is read until a query
slices into it.  Combined with
:meth:`~repro.core.columnar.ColumnarTrace.slice_time_window`, a
windowed query on a cached million-event trace touches only the pages
of the binary-searched slices.

Entry points:

* :func:`write_cache` — serialize a trace (either store) to a sidecar;
* :func:`load_cache` — map a sidecar back as a ``ColumnarTrace``;
* :func:`default_cache_path` — the conventional sidecar location;
* ``read_trace(path, cache=True)`` — the convenience wrapper in
  :mod:`repro.trace_format.reader`: load the sidecar when fresh,
  otherwise parse once and write it through.

The sidecar remembers the source file's size and mtime; a cache that
no longer matches its trace file is reported as
:class:`StaleCacheError` and transparently rebuilt by the wrapper.
"""

from __future__ import annotations

import json
import os
import struct

import numpy as np

from ..core.columnar import (ACCESS_DTYPE, COMM_DTYPE, COUNTER_DTYPE,
                             ColumnarTrace, DISCRETE_DTYPE, STATE_DTYPE,
                             TASK_DTYPE)
from ..core.events import (CounterDescription, RegionInfo, TaskTypeInfo,
                           TopologyInfo)
from ..core.interval_tree import DEFAULT_ARITY, MinMaxTree
from ..core.pyramid import (StateIndex, StateTiles, build_state_tiles,
                            tile_level_counts)
from .format import FormatError

#: Sidecar file magic ("Ostc" = OST columnar) and format version.
CACHE_MAGIC = b"OSTC"
#: Version 2 added the persisted render pyramids (counter min/max
#: levels + per-core state index and tiles); version-1 sidecars raise
#: :class:`CacheError` and are transparently rebuilt by ``read_trace``.
CACHE_VERSION = 2

#: Fixed-size prefix before the JSON header: magic, version, header
#: length in bytes.
_PREFIX = struct.Struct("<4sIQ")

#: Every array blob starts on a 64-byte boundary (cache-line aligned,
#: and a multiple of every lane dtype's itemsize).
ALIGNMENT = 64

#: Per-core lane stacks in serialization order, with their dtypes.
_STACKS = (("states", STATE_DTYPE), ("tasks", TASK_DTYPE),
           ("discrete", DISCRETE_DTYPE), ("comm", COMM_DTYPE),
           ("accesses", ACCESS_DTYPE))


class CacheError(FormatError):
    """The sidecar exists but cannot be used (corrupt/incompatible)."""


class StaleCacheError(CacheError):
    """The sidecar does not match the current source trace file."""


def default_cache_path(trace_path):
    """The conventional sidecar location: ``trace.ost`` -> ``trace.ostc``
    (any other name just gains an ``.ostc`` suffix)."""
    trace_path = str(trace_path)
    if trace_path.endswith(".ost"):
        return trace_path + "c"
    return trace_path + ".ostc"


def _align(offset):
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _dtype_descr(dtype):
    """A JSON-stable dtype description (lists, not tuples)."""
    return json.loads(json.dumps(dtype.descr))


#: Header dtype table, precomputed once: reopen compares the whole
#: table on every open and must not re-serialize six dtypes to do it.
_DTYPE_TABLE = {name: _dtype_descr(dtype)
                for name, dtype in _STACKS + (("counter",
                                               COUNTER_DTYPE),)}


def source_stamp(source_path):
    """The identity stamp of a trace file: size + ``mtime_ns``.

    This is what the sidecar header embeds to detect staleness, and
    what the service's :class:`~repro.service.pool.MappedCachePool`
    re-checks on every acquisition to invalidate traces that changed
    on disk.
    """
    info = os.stat(source_path)
    return {"size": int(info.st_size), "mtime_ns": int(info.st_mtime_ns)}


#: Backwards-compatible private alias (pre-service callers).
_source_stamp = source_stamp


def write_cache(trace, cache_path, source_path=None, source_stamp=None):
    """Serialize ``trace`` (either store) to an ``.ostc`` sidecar.

    ``source_path``, when given, stamps the sidecar with the trace
    file's size and mtime so :func:`load_cache` can detect staleness.
    ``source_stamp`` overrides the stat with a stamp taken earlier —
    callers that parsed the trace first (``read_trace(cache=True)``)
    pass the *pre-parse* stamp, so a source file modified during the
    parse makes the sidecar stale instead of freshly mis-stamped.
    Returns the number of bytes written.
    """
    columnar = trace.to_columnar()
    blobs = []            # (offset-in-data-section, bytes)
    manifest = {}
    cursor = 0

    def add_blob(lane):
        nonlocal cursor
        data = np.ascontiguousarray(lane).tobytes()
        offset = cursor
        blobs.append((offset, data))
        cursor = _align(offset + len(data))
        # Compact ``[offset, count]`` pairs: a million-event trace
        # carries hundreds of blobs and the header is parsed on every
        # reopen, so each one must stay a few bytes of JSON.
        return [offset, int(len(lane))]

    manifest["states"] = [add_blob(lane)
                          for lane in columnar.states.lanes]
    manifest["tasks"] = [add_blob(lane) for lane in columnar.tasks.lanes]
    manifest["discrete"] = [add_blob(lane)
                            for lane in columnar.discrete.lanes]
    manifest["comm"] = [add_blob(lane)
                        for lane in columnar.comm_lanes.lanes]
    manifest["accesses"] = [add_blob(lane)
                            for lane in columnar.access_lanes.lanes]
    manifest["counters"] = [
        [int(key[0]), int(key[1])] + add_blob(columnar.counter_lanes[key])
        for key in sorted(columnar.counter_lanes)]

    # Persisted render pyramids (Section VI-B): the internal min/max
    # tree levels of every counter lane, and the state index + tiles
    # of every core's state lane — computed once here so reopening
    # never rebuilds them.  Entry layouts (documented in
    # docs/trace-format.md):
    #   counter pyramid: [core, counter_id, [leaves_offset, count],
    #                     [[mins_offset, maxs_offset, count], ...],
    #                     [[vmins_offset, vmaxs_offset, count], ...]]
    #   state pyramid:   [core, [state_ids, offsets, starts, ends, cum],
    #                     [[dominant_offset, events_offset, count], ...]]
    # The leaf level (the lane's values as one contiguous float64
    # array) is persisted too: leaf-path queries fold over all leaves,
    # and serving them mapped means the first frame after a reopen
    # never gathers the strided value column out of the lane.  The
    # final list holds pre-rendered pixel columns of the whole-trace
    # view at the standard tile widths: the exact (vmin, vmax) the
    # render kernel would compute per pixel (NaN = nothing to draw),
    # so the fit-view frame after a reopen reads ~width floats and
    # runs no kernel at all.
    from ..render.counter_overlay import _column_extremes
    from ..render.timeline import TimelineView
    manifest["counter_pyramids"] = []
    for key in sorted(columnar.counter_lanes):
        lane = columnar.counter_lanes[key]
        tree = MinMaxTree(lane["value"], arity=DEFAULT_ARITY)
        levels = []
        for level in range(1, tree.levels):
            mins = add_blob(tree._mins[level])
            maxs = add_blob(tree._maxs[level])
            levels.append([mins[0], maxs[0], mins[1]])
        tiles = []
        if len(lane):
            for count in tile_level_counts(columnar.end
                                           - columnar.begin):
                view = TimelineView(start=columnar.begin,
                                    end=columnar.end, width=count,
                                    height=1)
                xs, vmins, vmaxs = _column_extremes(
                    lane["timestamp"], lane["value"], view, tree=tree)
                full_mins = np.full(count, np.nan, dtype=np.float64)
                full_maxs = np.full(count, np.nan, dtype=np.float64)
                full_mins[xs] = vmins
                full_maxs[xs] = vmaxs
                tiles.append([add_blob(full_mins)[0],
                              add_blob(full_maxs)[0], count])
        manifest["counter_pyramids"].append(
            [int(key[0]), int(key[1]), add_blob(tree._mins[0]), levels,
             tiles])
    manifest["state_pyramids"] = []
    for core, lane in enumerate(columnar.states.lanes):
        index = StateIndex.build(lane["start"], lane["end"],
                                 lane["state"])
        if index is None:
            continue
        tiles = build_state_tiles(index, lane["start"],
                                  columnar.begin, columnar.end)
        tile_entries = []
        for dominant, events in tiles.levels:
            dom = add_blob(dominant)
            evs = add_blob(events)
            tile_entries.append([dom[0], evs[0], dom[1]])
        manifest["state_pyramids"].append(
            [int(core),
             [add_blob(index.state_ids), add_blob(index.offsets),
              add_blob(index.starts), add_blob(index.ends),
              add_blob(index.cum)],
             tile_entries])

    header = {
        "version": CACHE_VERSION,
        "topology": {"num_nodes": columnar.topology.num_nodes,
                     "cores_per_node": columnar.topology.cores_per_node,
                     "name": columnar.topology.name},
        "counter_descriptions": [
            {"counter_id": description.counter_id,
             "name": description.name,
             "monotone": bool(description.monotone)}
            for description in columnar.counter_descriptions],
        "task_types": [
            {"type_id": info.type_id, "name": info.name,
             "address": info.address, "source_file": info.source_file,
             "source_line": info.source_line}
            for info in columnar.task_types],
        "regions": [
            {"region_id": info.region_id, "address": info.address,
             "size": info.size, "page_nodes": list(info.page_nodes),
             "name": info.name}
            for info in columnar.regions],
        "time_bounds": [int(columnar.begin), int(columnar.end)],
        "pyramid": {"arity": DEFAULT_ARITY},
        "dtypes": _DTYPE_TABLE,
        "manifest": manifest,
    }
    if source_stamp is not None:
        header["source"] = dict(source_stamp)
    elif source_path is not None:
        # The parameter shadows the module-level function here.
        header["source"] = _source_stamp(source_path)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    # Write to a temp file in the same directory and atomically rename
    # it over the sidecar: a crash mid-write leaves any previous cache
    # intact, and a concurrent load_cache maps either the complete old
    # file or the complete new one — never a header whose lane bytes
    # are still padding.
    temp_path = "{}.tmp.{}".format(cache_path, os.getpid())
    try:
        with open(temp_path, "wb") as stream:
            position = _write_body(stream, header_bytes, blobs)
        os.replace(temp_path, cache_path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return position


def _write_body(stream, header_bytes, blobs):
    """Emit prefix, header and aligned blobs; returns bytes written."""
    data_start = _align(_PREFIX.size + len(header_bytes))
    stream.write(_PREFIX.pack(CACHE_MAGIC, CACHE_VERSION,
                              len(header_bytes)))
    stream.write(header_bytes)
    position = _PREFIX.size + len(header_bytes)
    for offset, data in blobs:
        absolute = data_start + offset
        stream.write(b"\0" * (absolute - position))
        stream.write(data)
        position = absolute + len(data)
    return position


#: Parsed headers keyed by path, guarded by the file's identity stamp
#: (inode + size + mtime): a sidecar is immutable once written — every
#: change goes through an atomic replace, which produces a new inode —
#: so reopening the same trace in one session (the interactive loop)
#: skips the open/read/JSON-parse entirely.
_HEADER_CACHE = {}


def _read_header(cache_path):
    """(header dict, data-section start offset) of a sidecar file."""
    cache_path = str(cache_path)
    try:
        info = os.stat(cache_path)
        stamp = (info.st_ino, info.st_size, info.st_mtime_ns)
    except OSError:
        stamp = None
    if stamp is not None:
        cached = _HEADER_CACHE.get(cache_path)
        if cached is not None and cached[0] == stamp:
            return cached[1], cached[2]
    header, data_start = _parse_header(cache_path)
    if stamp is not None:
        _HEADER_CACHE[cache_path] = (stamp, header, data_start)
    return header, data_start


def _parse_header(cache_path):
    with open(cache_path, "rb") as stream:
        prefix = stream.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise CacheError("cache file too small: " + str(cache_path))
        magic, version, header_length = _PREFIX.unpack(prefix)
        if magic != CACHE_MAGIC:
            raise CacheError("not a columnar trace cache (bad magic)")
        if version != CACHE_VERSION:
            raise CacheError(
                "unsupported cache version {}".format(version))
        header_bytes = stream.read(header_length)
        if len(header_bytes) != header_length:
            raise CacheError("truncated cache header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except ValueError as error:
        raise CacheError("corrupt cache header: {}".format(error))
    return header, _align(_PREFIX.size + header_length)


class MappedPyramids:
    """Render pyramids mapped lazily from an ``.ostc`` sidecar.

    Holds only the manifest entries and a blob-view factory; nothing
    is materialized at load time (keeping reopen O(header)), and each
    accessor wraps the persisted arrays as zero-copy views on demand:

    * :meth:`counter_tree` — a :class:`MinMaxTree` whose internal
      levels are the mapped blobs (leaves are the counter lane
      itself);
    * :meth:`counter_columns` — the pre-rendered whole-trace pixel
      columns of one (core, counter) at a standard tile width;
    * :meth:`state_index` / :meth:`state_tiles` — one core's
      :class:`~repro.core.pyramid.StateIndex` and
      :class:`~repro.core.pyramid.StateTiles`.

    Memoization lives on the trace store
    (:meth:`~repro.core.trace.EventViewMixin.minmax_tree`,
    ``state_index``, ``state_tiles``), not here.
    """

    def __init__(self, blob_view, header):
        manifest = header["manifest"]
        self._view = blob_view
        self.arity = int(header.get("pyramid", {})
                         .get("arity", DEFAULT_ARITY))
        self._counters = {
            (entry[0], entry[1]): (entry[2], entry[3], entry[4])
            for entry in manifest.get("counter_pyramids", ())}
        self._states = {entry[0]: entry
                        for entry in manifest.get("state_pyramids", ())}
        begin, end = header["time_bounds"]
        self._begin, self._end = int(begin), int(end)

    def counter_tree(self, core, counter_id, values, arity):
        """The persisted min/max tree of one (core, counter), or
        ``None`` when the sidecar has no pyramid for it (or a
        different arity was requested).

        The tree's leaves are the *persisted* contiguous float64 leaf
        blob, not the strided ``values`` column — same values, but the
        first query folds over mapped pages instead of gathering the
        lane.  ``values`` only cross-checks the lane length."""
        if arity != self.arity:
            return None
        entry = self._counters.get((core, counter_id))
        if entry is None:
            return None
        leaf_blob, levels, __ = entry
        if leaf_blob[1] != len(values):
            raise CacheError("pyramid leaves do not match their lane")
        float_dtype = np.dtype(np.float64)
        leaves = self._view(leaf_blob, float_dtype)
        mins = [self._view([mins_offset, count], float_dtype)
                for mins_offset, __, count in levels]
        maxs = [self._view([maxs_offset, count], float_dtype)
                for __, maxs_offset, count in levels]
        return MinMaxTree.from_levels(leaves, mins, maxs, arity=arity)

    def counter_columns(self, core, counter_id, width):
        """The persisted whole-trace pixel columns of one (core,
        counter) at exactly ``width`` columns, as a mapped
        ``(vmins, vmaxs)`` pair of float64 views (NaN marks a column
        with nothing to draw) — or ``None`` when no tile level of
        that width was persisted."""
        entry = self._counters.get((core, counter_id))
        if entry is None:
            return None
        float_dtype = np.dtype(np.float64)
        for vmins_offset, vmaxs_offset, count in entry[2]:
            if count == width:
                return (self._view([vmins_offset, count], float_dtype),
                        self._view([vmaxs_offset, count], float_dtype))
        return None

    def state_index(self, core):
        """One core's persisted :class:`StateIndex`, or ``None``."""
        entry = self._states.get(core)
        if entry is None:
            return None
        int_dtype = np.dtype(np.int64)
        state_ids, offsets, starts, ends, cum = entry[1]
        return StateIndex(self._view(state_ids, int_dtype),
                          self._view(offsets, int_dtype),
                          self._view(starts, int_dtype),
                          self._view(ends, int_dtype),
                          self._view(cum, int_dtype))

    def state_tiles(self, core):
        """One core's persisted :class:`StateTiles`, or ``None``."""
        entry = self._states.get(core)
        if entry is None:
            return None
        int_dtype = np.dtype(np.int64)
        levels = [(self._view([dominant_offset, count], int_dtype),
                   self._view([events_offset, count], int_dtype))
                  for dominant_offset, events_offset, count in entry[2]]
        return StateTiles(self._begin, self._end, levels)


def load_cache(cache_path, source_path=None):
    """Map an ``.ostc`` sidecar as a :class:`ColumnarTrace`.

    The returned store's lanes are read-only views into one
    ``np.memmap`` over the file; nothing is parsed or copied, and only
    the pages a later query slices are ever faulted in.  When
    ``source_path`` is given and the sidecar carries a source stamp, a
    size/mtime mismatch raises :class:`StaleCacheError`.
    """
    header, data_start = _read_header(cache_path)
    if source_path is not None and "source" in header:
        if header["source"] != source_stamp(source_path):
            raise StaleCacheError(
                "cache {} is stale for {}".format(cache_path, source_path))
    if header.get("dtypes") != _DTYPE_TABLE:
        raise CacheError("cache lane dtypes do not match this version")
    # A syntactically-valid JSON header can still describe garbage (a
    # bit flip inside a manifest number, a truncated file whose blobs
    # the header no longer covers).  Everything from here on converts
    # structural surprises into CacheError so callers rebuild the
    # sidecar instead of crashing at first render.
    try:
        topology = TopologyInfo(**header["topology"])
        manifest = header["manifest"]
        for name in ("states", "tasks", "discrete", "comm", "accesses"):
            if len(manifest[name]) != topology.num_cores:
                raise CacheError(
                    "cache manifest does not cover every core")

        mapped = np.memmap(cache_path, dtype=np.uint8, mode="r")
        # Slice through a base-class view: ``np.memmap.__getitem__``
        # and ``__array_finalize__`` cost ~7x a plain ndarray slice,
        # and a reopen cuts one view per lane plus one per pyramid
        # blob.  The flat view keeps the memmap alive through its
        # ``.base`` chain.
        flat = mapped.view(np.ndarray)

        def lane_view(entry, dtype):
            offset = data_start + int(entry[0])
            nbytes = int(entry[1]) * dtype.itemsize
            if entry[0] < 0 or entry[1] < 0 \
                    or offset + nbytes > len(mapped):
                raise CacheError(
                    "cache manifest points past end of file")
            return flat[offset:offset + nbytes].view(dtype)

        _validate_pyramids(manifest, data_start, len(mapped))
        lanes = {name: [lane_view(entry, dtype)
                        for entry in manifest[name]]
                 for name, dtype in _STACKS}
        counter_lanes = {
            (entry[0], entry[1]): lane_view(entry[2:], COUNTER_DTYPE)
            for entry in manifest["counters"]}
        return ColumnarTrace(
            pyramids=MappedPyramids(lane_view, header),
            topology=topology,
            states=lanes["states"], tasks=lanes["tasks"],
            discrete=lanes["discrete"], comm=lanes["comm"],
            accesses=lanes["accesses"], counter_lanes=counter_lanes,
            counter_descriptions=[CounterDescription(**entry)
                                  for entry in
                                  header["counter_descriptions"]],
            task_types=[TaskTypeInfo(**entry)
                        for entry in header["task_types"]],
            regions=[RegionInfo(region_id=entry["region_id"],
                                address=entry["address"],
                                size=entry["size"],
                                page_nodes=tuple(entry["page_nodes"]),
                                name=entry["name"])
                     for entry in header["regions"]],
            time_bounds=header["time_bounds"])
    except CacheError:
        raise
    except (TypeError, ValueError, KeyError, IndexError) as error:
        raise CacheError("malformed cache manifest: {}".format(error))


def _validate_pyramids(manifest, data_start, size):
    """Bounds-check every pyramid blob of a manifest at load time.

    Pyramid blobs are only *viewed* lazily by :class:`MappedPyramids`
    accessors; without this pass a truncated file or a corrupted
    manifest entry would surface mid-render (as an opaque numpy error)
    instead of as a rebuildable :class:`CacheError` at open."""

    def check(offset, count, itemsize=8):
        offset, count = int(offset), int(count)
        if offset < 0 or count < 0 \
                or data_start + offset + count * itemsize > size:
            raise CacheError("cache pyramid blob points past "
                             "end of file")

    for entry in manifest.get("counter_pyramids", ()):
        core, counter_id, leaf, levels, tiles = entry
        int(core), int(counter_id)
        check(leaf[0], leaf[1])
        for mins_offset, maxs_offset, count in levels:
            check(mins_offset, count)
            check(maxs_offset, count)
        for vmins_offset, vmaxs_offset, count in tiles:
            check(vmins_offset, count)
            check(vmaxs_offset, count)
    for entry in manifest.get("state_pyramids", ()):
        core, blobs, tile_entries = entry
        int(core)
        if len(blobs) != 5:
            raise CacheError("state pyramid manifest entry must "
                             "carry 5 index blobs")
        for blob in blobs:
            check(blob[0], blob[1])
        for dominant_offset, events_offset, count in tile_entries:
            check(dominant_offset, count)
            check(events_offset, count)
