"""Memory-mapped columnar trace cache (the ``.ostc`` sidecar).

Parsing a trace file rebuilds the Section VI-B-c arrays — one sorted
structured array per core and per record kind — from scratch on every
open, which dominates the time-to-first-pixel of an interactive
session.  This module persists a :class:`~repro.core.columnar.
ColumnarTrace` *in its final memory layout*: a small JSON header (the
static records plus an array manifest) followed by the raw bytes of
every lane, 64-byte aligned.  Reopening maps the file with
``np.memmap`` and wraps the manifest's byte ranges as structured-array
views — no parsing, no copying, and no page is read until a query
slices into it.  Combined with
:meth:`~repro.core.columnar.ColumnarTrace.slice_time_window`, a
windowed query on a cached million-event trace touches only the pages
of the binary-searched slices.

Entry points:

* :func:`write_cache` — serialize a trace (either store) to a sidecar;
* :func:`load_cache` — map a sidecar back as a ``ColumnarTrace``;
* :func:`default_cache_path` — the conventional sidecar location;
* ``read_trace(path, cache=True)`` — the convenience wrapper in
  :mod:`repro.trace_format.reader`: load the sidecar when fresh,
  otherwise parse once and write it through.

The sidecar remembers the source file's size and mtime; a cache that
no longer matches its trace file is reported as
:class:`StaleCacheError` and transparently rebuilt by the wrapper.
"""

from __future__ import annotations

import json
import os
import struct

import numpy as np

from ..core.columnar import (ACCESS_DTYPE, COMM_DTYPE, COUNTER_DTYPE,
                             ColumnarTrace, DISCRETE_DTYPE, STATE_DTYPE,
                             TASK_DTYPE)
from ..core.events import (CounterDescription, RegionInfo, TaskTypeInfo,
                           TopologyInfo)
from .format import FormatError

#: Sidecar file magic ("Ostc" = OST columnar) and format version.
CACHE_MAGIC = b"OSTC"
CACHE_VERSION = 1

#: Fixed-size prefix before the JSON header: magic, version, header
#: length in bytes.
_PREFIX = struct.Struct("<4sIQ")

#: Every array blob starts on a 64-byte boundary (cache-line aligned,
#: and a multiple of every lane dtype's itemsize).
ALIGNMENT = 64

#: Per-core lane stacks in serialization order, with their dtypes.
_STACKS = (("states", STATE_DTYPE), ("tasks", TASK_DTYPE),
           ("discrete", DISCRETE_DTYPE), ("comm", COMM_DTYPE),
           ("accesses", ACCESS_DTYPE))


class CacheError(FormatError):
    """The sidecar exists but cannot be used (corrupt/incompatible)."""


class StaleCacheError(CacheError):
    """The sidecar does not match the current source trace file."""


def default_cache_path(trace_path):
    """The conventional sidecar location: ``trace.ost`` -> ``trace.ostc``
    (any other name just gains an ``.ostc`` suffix)."""
    trace_path = str(trace_path)
    if trace_path.endswith(".ost"):
        return trace_path + "c"
    return trace_path + ".ostc"


def _align(offset):
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _dtype_descr(dtype):
    """A JSON-stable dtype description (lists, not tuples)."""
    return json.loads(json.dumps(dtype.descr))


def _source_stamp(source_path):
    info = os.stat(source_path)
    return {"size": int(info.st_size), "mtime_ns": int(info.st_mtime_ns)}


def write_cache(trace, cache_path, source_path=None, source_stamp=None):
    """Serialize ``trace`` (either store) to an ``.ostc`` sidecar.

    ``source_path``, when given, stamps the sidecar with the trace
    file's size and mtime so :func:`load_cache` can detect staleness.
    ``source_stamp`` overrides the stat with a stamp taken earlier —
    callers that parsed the trace first (``read_trace(cache=True)``)
    pass the *pre-parse* stamp, so a source file modified during the
    parse makes the sidecar stale instead of freshly mis-stamped.
    Returns the number of bytes written.
    """
    columnar = trace.to_columnar()
    blobs = []            # (offset-in-data-section, bytes)
    manifest = {}
    cursor = 0

    def add_blob(lane):
        nonlocal cursor
        data = np.ascontiguousarray(lane).tobytes()
        offset = cursor
        blobs.append((offset, data))
        cursor = _align(offset + len(data))
        return {"offset": offset, "count": int(len(lane))}

    manifest["states"] = [add_blob(lane)
                          for lane in columnar.states.lanes]
    manifest["tasks"] = [add_blob(lane) for lane in columnar.tasks.lanes]
    manifest["discrete"] = [add_blob(lane)
                            for lane in columnar.discrete.lanes]
    manifest["comm"] = [add_blob(lane)
                        for lane in columnar.comm_lanes.lanes]
    manifest["accesses"] = [add_blob(lane)
                            for lane in columnar.access_lanes.lanes]
    manifest["counters"] = [
        dict(add_blob(columnar.counter_lanes[key]), core=int(key[0]),
             counter_id=int(key[1]))
        for key in sorted(columnar.counter_lanes)]

    header = {
        "version": CACHE_VERSION,
        "topology": {"num_nodes": columnar.topology.num_nodes,
                     "cores_per_node": columnar.topology.cores_per_node,
                     "name": columnar.topology.name},
        "counter_descriptions": [
            {"counter_id": description.counter_id,
             "name": description.name,
             "monotone": bool(description.monotone)}
            for description in columnar.counter_descriptions],
        "task_types": [
            {"type_id": info.type_id, "name": info.name,
             "address": info.address, "source_file": info.source_file,
             "source_line": info.source_line}
            for info in columnar.task_types],
        "regions": [
            {"region_id": info.region_id, "address": info.address,
             "size": info.size, "page_nodes": list(info.page_nodes),
             "name": info.name}
            for info in columnar.regions],
        "time_bounds": [int(columnar.begin), int(columnar.end)],
        "dtypes": {name: _dtype_descr(dtype)
                   for name, dtype in _STACKS + (("counter",
                                                  COUNTER_DTYPE),)},
        "manifest": manifest,
    }
    if source_stamp is not None:
        header["source"] = dict(source_stamp)
    elif source_path is not None:
        header["source"] = _source_stamp(source_path)
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align(_PREFIX.size + len(header_bytes))
    with open(cache_path, "wb") as stream:
        stream.write(_PREFIX.pack(CACHE_MAGIC, CACHE_VERSION,
                                  len(header_bytes)))
        stream.write(header_bytes)
        position = _PREFIX.size + len(header_bytes)
        for offset, data in blobs:
            absolute = data_start + offset
            stream.write(b"\0" * (absolute - position))
            stream.write(data)
            position = absolute + len(data)
        return position


def _read_header(cache_path):
    """(header dict, data-section start offset) of a sidecar file."""
    with open(cache_path, "rb") as stream:
        prefix = stream.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise CacheError("cache file too small: " + str(cache_path))
        magic, version, header_length = _PREFIX.unpack(prefix)
        if magic != CACHE_MAGIC:
            raise CacheError("not a columnar trace cache (bad magic)")
        if version != CACHE_VERSION:
            raise CacheError(
                "unsupported cache version {}".format(version))
        header_bytes = stream.read(header_length)
        if len(header_bytes) != header_length:
            raise CacheError("truncated cache header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except ValueError as error:
        raise CacheError("corrupt cache header: {}".format(error))
    return header, _align(_PREFIX.size + header_length)


def load_cache(cache_path, source_path=None):
    """Map an ``.ostc`` sidecar as a :class:`ColumnarTrace`.

    The returned store's lanes are read-only views into one
    ``np.memmap`` over the file; nothing is parsed or copied, and only
    the pages a later query slices are ever faulted in.  When
    ``source_path`` is given and the sidecar carries a source stamp, a
    size/mtime mismatch raises :class:`StaleCacheError`.
    """
    header, data_start = _read_header(cache_path)
    if source_path is not None and "source" in header:
        if header["source"] != _source_stamp(source_path):
            raise StaleCacheError(
                "cache {} is stale for {}".format(cache_path, source_path))
    expected = {name: _dtype_descr(dtype)
                for name, dtype in _STACKS + (("counter", COUNTER_DTYPE),)}
    if header.get("dtypes") != expected:
        raise CacheError("cache lane dtypes do not match this version")
    topology = TopologyInfo(**header["topology"])
    manifest = header["manifest"]
    for name in ("states", "tasks", "discrete", "comm", "accesses"):
        if len(manifest[name]) != topology.num_cores:
            raise CacheError("cache manifest does not cover every core")

    mapped = np.memmap(cache_path, dtype=np.uint8, mode="r")

    def lane_view(entry, dtype):
        offset = data_start + entry["offset"]
        nbytes = entry["count"] * dtype.itemsize
        if offset + nbytes > len(mapped):
            raise CacheError("cache manifest points past end of file")
        return mapped[offset:offset + nbytes].view(dtype)

    lanes = {name: [lane_view(entry, dtype)
                    for entry in manifest[name]]
             for name, dtype in _STACKS}
    counter_lanes = {
        (entry["core"], entry["counter_id"]):
            lane_view(entry, COUNTER_DTYPE)
        for entry in manifest["counters"]}
    return ColumnarTrace(
        topology=topology,
        states=lanes["states"], tasks=lanes["tasks"],
        discrete=lanes["discrete"], comm=lanes["comm"],
        accesses=lanes["accesses"], counter_lanes=counter_lanes,
        counter_descriptions=[CounterDescription(**entry)
                              for entry in
                              header["counter_descriptions"]],
        task_types=[TaskTypeInfo(**entry)
                    for entry in header["task_types"]],
        regions=[RegionInfo(region_id=entry["region_id"],
                            address=entry["address"],
                            size=entry["size"],
                            page_nodes=tuple(entry["page_nodes"]),
                            name=entry["name"])
                 for entry in header["regions"]],
        time_bounds=header["time_bounds"])
