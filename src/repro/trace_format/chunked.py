"""Chunk-granular trace reading through the seekable index.

The paper's conclusion names "the out-of-core processing of large
traces" as future work: Aftermath loads whole traces into memory, so
every windowed query on a bigger-than-RAM trace would pay a full-file
scan.  This module is the read side of the chunk index written by
:class:`repro.trace_format.writer.IndexedTraceWriter`:

* :func:`read_chunk_index` — load the footer directory of per-core
  time-range -> file-offset entries (``None`` when the file has no
  index, e.g. compressed or pre-index traces);
* :func:`iter_chunk_records` — parse exactly one chunk;
* :func:`stream_window_records` — yield the preamble plus every chunk
  overlapping a time window, seeking past the rest.  Falls back to a
  full sequential scan on unindexed files, so callers never need to
  know whether an index is present;
* :class:`ScanStats` — bytes/chunks touched, the currency of the
  out-of-core engine ("how much of the file did this query read?").

Chunk granularity is deliberately coarse: entries only promise that
every record *outside* their time range is skippable, so callers must
still filter individual records — exactly what
:func:`repro.trace_format.streaming.split_time_window` does anyway.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

from . import format as fmt
from .compression import codec_for_path
from .reader import _Stream, parse_records


@dataclass(frozen=True)
class ChunkEntry:
    """One directory entry: where a chunk lives and what it covers."""

    offset: int
    length: int
    t_min: int
    t_max: int
    records: int
    core: int               # fmt.MIXED_CORES when records span cores
    flags: int

    @property
    def has_static(self):
        """Whether the chunk holds static records and must always be
        read, whatever the requested window."""
        return bool(self.flags & fmt.CHUNK_HAS_STATIC)

    def overlaps(self, start, end):
        """Whether any record in the chunk may intersect
        ``[start, end)``."""
        return self.t_min < end and self.t_max >= start


@dataclass(frozen=True)
class ChunkIndex:
    """The parsed footer directory of an indexed trace file."""

    entries: tuple
    preamble_offset: int    # first byte after the file header
    preamble_length: int    # static records before the first chunk
    index_offset: int       # where the footer begins

    @property
    def num_chunks(self):
        """Number of chunks in the directory."""
        return len(self.entries)

    @property
    def num_records(self):
        """Total records covered by the chunks (preamble excluded)."""
        return sum(entry.records for entry in self.entries)

    def select(self, start, end):
        """The entries a window query over ``[start, end)`` must read."""
        return [entry for entry in self.entries
                if entry.has_static or entry.overlaps(start, end)]


@dataclass
class ScanStats:
    """How much of a trace file a query actually touched."""

    bytes_read: int = 0
    chunks_read: int = 0
    chunks_skipped: int = 0
    used_index: bool = False

    def account(self, nbytes):
        """Add ``nbytes`` to the bytes-read tally."""
        self.bytes_read += nbytes


def read_chunk_index(path):
    """Load the chunk index of ``path``, or ``None`` if absent.

    Absent means: the file is compressed (not seekable), too small to
    hold a trailer, or simply ends without the index magic — a plain
    pre-index trace.  Corruption *inside* a present index raises
    :class:`~repro.trace_format.format.FormatError`.
    """
    if codec_for_path(path) is not None:
        return None
    file_size = os.path.getsize(path)
    if file_size < fmt.HEADER.size + fmt.INDEX_TRAILER.size:
        return None
    with open(path, "rb") as stream:
        stream.seek(file_size - fmt.INDEX_TRAILER.size)
        index_offset, magic = fmt.INDEX_TRAILER.unpack(
            stream.read(fmt.INDEX_TRAILER.size))
        if magic != fmt.INDEX_MAGIC:
            return None
        if index_offset < fmt.HEADER.size or index_offset >= file_size:
            raise fmt.FormatError("chunk-index offset out of range")
        stream.seek(index_offset)
        reader = _Stream(stream)
        (tag,) = fmt.TAG.unpack(reader.exactly(fmt.TAG.size))
        if tag != fmt.RecordTag.CHUNK_INDEX:
            raise fmt.FormatError("chunk-index trailer points to tag {}"
                                  .format(tag))
        (count,) = fmt.INDEX_HEADER.unpack(
            reader.exactly(fmt.INDEX_HEADER.size))
        entries = tuple(
            ChunkEntry(*fmt.CHUNK_ENTRY.unpack(
                reader.exactly(fmt.CHUNK_ENTRY.size)))
            for __ in range(count))
    preamble_offset = fmt.HEADER.size
    first_chunk = entries[0].offset if entries else index_offset
    return ChunkIndex(entries=entries,
                      preamble_offset=preamble_offset,
                      preamble_length=first_chunk - preamble_offset,
                      index_offset=index_offset)


def _read_span(stream, offset, length, stats=None):
    """Read ``length`` bytes at ``offset`` and parse them as records."""
    stream.seek(offset)
    data = stream.read(length)
    if len(data) != length:
        raise fmt.FormatError("truncated trace chunk")
    if stats is not None:
        stats.account(length)
    return parse_records(_Stream(io.BytesIO(data)))


def iter_chunk_records(stream, entry, stats=None):
    """Yield ``(kind, fields)`` for the records of one chunk.

    ``stream`` is the open binary trace file (uncompressed).  Used both
    by the window reader below and by the per-worker shard scans in
    :mod:`repro.analysis.parallel`.
    """
    if stats is not None:
        stats.chunks_read += 1
    return _read_span(stream, entry.offset, entry.length, stats)


def iter_preamble_records(stream, index, stats=None):
    """Yield the static records written before the first chunk."""
    if index.preamble_length == 0:
        return iter(())
    return _read_span(stream, index.preamble_offset,
                      index.preamble_length, stats)


def stream_window_records(path, start, end, stats=None):
    """Yield ``(kind, fields)`` for a time-window query on ``path``.

    With an index present, this seeks: the preamble and every chunk
    overlapping ``[start, end)`` are read, everything else is skipped
    (chunk granularity — records outside the window may still be
    yielded and must be filtered by the caller).  Without an index the
    whole file is scanned, so the function is safe on any trace file.
    ``stats``, if given, is a :class:`ScanStats` filled in either case.
    """
    index = read_chunk_index(path)
    if index is None:
        # Backward-compatible path: unindexed or compressed file.
        from .streaming import stream_records
        if stats is not None:
            stats.used_index = False
            stats.account(os.path.getsize(path))
        yield from stream_records(path)
        return
    if stats is not None:
        stats.used_index = True
    selected = index.select(start, end)
    if stats is not None:
        stats.chunks_skipped = index.num_chunks - len(selected)
    with open(path, "rb") as stream:
        yield from iter_preamble_records(stream, index, stats)
        for entry in selected:
            yield from iter_chunk_records(stream, entry, stats)


def read_window_columnar(path, start, end, stats=None, cache=None):
    """Seek-to-window extraction straight into a
    :class:`~repro.core.columnar.ColumnarTrace`.

    The chunk-seeking twin of ``read_trace(path, columnar=True)``: the
    preamble and the chunks overlapping ``[start, end)`` are parsed
    directly into per-core columns — per-event objects are never
    materialized — and unindexed or compressed files fall back to the
    full scan like :func:`stream_window_records` itself.

    ``cache`` (``True`` for the conventional sidecar, or an explicit
    path) short-circuits the file entirely when a fresh ``.ostc``
    mapped cache exists: the window is then a zero-copy
    :meth:`~repro.core.columnar.ColumnarTrace.slice_time_window` over
    the memory-mapped lanes — no chunk is parsed and ``stats`` is left
    untouched (no trace-file bytes are read).  Without a usable cache
    the chunk-seeking path below runs unchanged.
    """
    if cache:
        from .cache import CacheError, default_cache_path, load_cache
        cache_path = (default_cache_path(path) if cache is True
                      else str(cache))
        try:
            mapped = load_cache(cache_path, source_path=path)
        except (OSError, CacheError):
            mapped = None
        if mapped is not None:
            return mapped.slice_time_window(start, end)
    from .streaming import build_window
    return build_window(stream_window_records(path, start, end,
                                              stats=stats),
                        start, end, columnar=True)
