"""Chunk-granular trace reading through the seekable index.

The paper's conclusion names "the out-of-core processing of large
traces" as future work: Aftermath loads whole traces into memory, so
every windowed query on a bigger-than-RAM trace would pay a full-file
scan.  This module is the read side of the chunk index written by
:class:`repro.trace_format.writer.IndexedTraceWriter`:

* :func:`read_chunk_index` — load the footer directory of per-core
  time-range -> file-offset entries (``None`` when the file has no
  index, e.g. compressed or pre-index traces);
* :func:`iter_chunk_records` — parse exactly one chunk;
* :func:`stream_window_records` — yield the preamble plus every chunk
  overlapping a time window, seeking past the rest.  Falls back to a
  full sequential scan on unindexed files, so callers never need to
  know whether an index is present;
* :class:`ScanStats` — bytes/chunks touched, the currency of the
  out-of-core engine ("how much of the file did this query read?").

Chunk granularity is deliberately coarse: entries only promise that
every record *outside* their time range is skippable, so callers must
still filter individual records — exactly what
:func:`repro.trace_format.streaming.split_time_window` does anyway.
"""

from __future__ import annotations

import io
import os
import zlib
from dataclasses import dataclass
from typing import Optional

from . import format as fmt
from .compression import codec_for_path
from .reader import _Stream, build_trace, parse_records


@dataclass(frozen=True)
class ChunkEntry:
    """One directory entry: where a chunk lives and what it covers.

    ``crc`` is the CRC32 of the chunk's bytes when the file carries a
    version-2 index, ``None`` for legacy version-1 directories (no
    verification possible)."""

    offset: int
    length: int
    t_min: int
    t_max: int
    records: int
    core: int               # fmt.MIXED_CORES when records span cores
    flags: int
    crc: Optional[int] = None

    @property
    def has_static(self):
        """Whether the chunk holds static records and must always be
        read, whatever the requested window."""
        return bool(self.flags & fmt.CHUNK_HAS_STATIC)

    def overlaps(self, start, end):
        """Whether any record in the chunk may intersect
        ``[start, end)``."""
        return self.t_min < end and self.t_max >= start


@dataclass(frozen=True)
class ChunkIndex:
    """The parsed footer directory of an indexed trace file."""

    entries: tuple
    preamble_offset: int    # first byte after the file header
    preamble_length: int    # static records before the first chunk
    index_offset: int       # where the footer begins
    preamble_crc: Optional[int] = None   # v2 directories only

    @property
    def crc_checked(self):
        """Whether the directory carries per-chunk checksums."""
        return self.preamble_crc is not None

    @property
    def num_chunks(self):
        """Number of chunks in the directory."""
        return len(self.entries)

    @property
    def num_records(self):
        """Total records covered by the chunks (preamble excluded)."""
        return sum(entry.records for entry in self.entries)

    def select(self, start, end):
        """The entries a window query over ``[start, end)`` must read."""
        return [entry for entry in self.entries
                if entry.has_static or entry.overlaps(start, end)]


@dataclass
class ScanStats:
    """How much of a trace file a query actually touched."""

    bytes_read: int = 0
    chunks_read: int = 0
    chunks_skipped: int = 0
    used_index: bool = False

    def account(self, nbytes):
        """Add ``nbytes`` to the bytes-read tally."""
        self.bytes_read += nbytes


def read_chunk_index(path):
    """Load the chunk index of ``path``, or ``None`` if absent.

    Absent means: the file is compressed (not seekable), too small to
    hold a trailer, or simply ends without the index magic — a plain
    pre-index trace.  Corruption *inside* a present index raises
    :class:`~repro.trace_format.format.FormatError`.
    """
    if codec_for_path(path) is not None:
        return None
    file_size = os.path.getsize(path)
    if file_size < fmt.HEADER.size + fmt.INDEX_TRAILER.size:
        return None
    with open(path, "rb") as stream:
        stream.seek(file_size - fmt.INDEX_TRAILER.size)
        index_offset, magic = fmt.INDEX_TRAILER.unpack(
            stream.read(fmt.INDEX_TRAILER.size))
        if magic not in (fmt.INDEX_MAGIC, fmt.INDEX_MAGIC_V2):
            return None
        v2 = magic == fmt.INDEX_MAGIC_V2
        if index_offset < fmt.HEADER.size or index_offset >= file_size:
            raise fmt.FormatError("chunk-index offset out of range")
        stream.seek(index_offset)
        reader = _Stream(stream)
        (tag,) = fmt.TAG.unpack(reader.exactly(fmt.TAG.size))
        expected_tag = (fmt.RecordTag.CHUNK_INDEX_V2 if v2
                        else fmt.RecordTag.CHUNK_INDEX)
        if tag != expected_tag:
            raise fmt.FormatError("chunk-index trailer points to tag {}"
                                  .format(tag))
        preamble_crc = None
        if v2:
            count, preamble_crc = fmt.INDEX_HEADER_V2.unpack(
                reader.exactly(fmt.INDEX_HEADER_V2.size))
            entries = tuple(
                ChunkEntry(*fmt.CHUNK_ENTRY_V2.unpack(
                    reader.exactly(fmt.CHUNK_ENTRY_V2.size)))
                for __ in range(count))
        else:
            (count,) = fmt.INDEX_HEADER.unpack(
                reader.exactly(fmt.INDEX_HEADER.size))
            entries = tuple(
                ChunkEntry(*fmt.CHUNK_ENTRY.unpack(
                    reader.exactly(fmt.CHUNK_ENTRY.size)))
                for __ in range(count))
    preamble_offset = fmt.HEADER.size
    first_chunk = entries[0].offset if entries else index_offset
    return ChunkIndex(entries=entries,
                      preamble_offset=preamble_offset,
                      preamble_length=first_chunk - preamble_offset,
                      index_offset=index_offset,
                      preamble_crc=preamble_crc)


def _read_span(stream, offset, length, stats=None, crc=None):
    """Read ``length`` bytes at ``offset`` and parse them as records.

    With ``crc`` given (a version-2 directory entry), the bytes are
    checksummed before parsing: a mismatch — or a short read, the
    truncation case — raises
    :class:`~repro.trace_format.format.CorruptChunkError` instead of
    mis-parsing garbage into records."""
    stream.seek(offset)
    data = stream.read(length)
    if len(data) != length:
        raise fmt.CorruptChunkError(
            "truncated trace chunk at offset {} ({} of {} bytes)"
            .format(offset, len(data), length), offset=offset)
    if crc is not None:
        actual = zlib.crc32(data)
        if actual != crc:
            raise fmt.CorruptChunkError(
                "chunk CRC mismatch at offset {} (stored {:#010x}, "
                "computed {:#010x})".format(offset, crc, actual),
                offset=offset, expected=crc, actual=actual)
    if stats is not None:
        stats.account(length)
    return parse_records(_Stream(io.BytesIO(data)))


def iter_chunk_records(stream, entry, stats=None):
    """Yield ``(kind, fields)`` for the records of one chunk.

    ``stream`` is the open binary trace file (uncompressed).  Used both
    by the window reader below and by the per-worker shard scans in
    :mod:`repro.analysis.parallel`.  Chunks of CRC-carrying (v2)
    indexes are verified; a damaged chunk raises
    :class:`~repro.trace_format.format.CorruptChunkError`.
    """
    if stats is not None:
        stats.chunks_read += 1
    return _read_span(stream, entry.offset, entry.length, stats,
                      crc=entry.crc)


def iter_preamble_records(stream, index, stats=None):
    """Yield the static records written before the first chunk."""
    if index.preamble_length == 0:
        return iter(())
    return _read_span(stream, index.preamble_offset,
                      index.preamble_length, stats,
                      crc=index.preamble_crc)


def stream_window_records(path, start, end, stats=None):
    """Yield ``(kind, fields)`` for a time-window query on ``path``.

    With an index present, this seeks: the preamble and every chunk
    overlapping ``[start, end)`` are read, everything else is skipped
    (chunk granularity — records outside the window may still be
    yielded and must be filtered by the caller).  Without an index the
    whole file is scanned, so the function is safe on any trace file.
    ``stats``, if given, is a :class:`ScanStats` filled in either case.
    """
    index = read_chunk_index(path)
    if index is None:
        # Backward-compatible path: unindexed or compressed file.
        from .streaming import stream_records
        if stats is not None:
            stats.used_index = False
            stats.account(os.path.getsize(path))
        yield from stream_records(path)
        return
    if stats is not None:
        stats.used_index = True
    selected = index.select(start, end)
    if stats is not None:
        stats.chunks_skipped = index.num_chunks - len(selected)
    with open(path, "rb") as stream:
        yield from iter_preamble_records(stream, index, stats)
        for entry in selected:
            yield from iter_chunk_records(stream, entry, stats)


def read_window_columnar(path, start, end, stats=None, cache=None):
    """Seek-to-window extraction straight into a
    :class:`~repro.core.columnar.ColumnarTrace`.

    The chunk-seeking twin of ``read_trace(path, columnar=True)``: the
    preamble and the chunks overlapping ``[start, end)`` are parsed
    directly into per-core columns — per-event objects are never
    materialized — and unindexed or compressed files fall back to the
    full scan like :func:`stream_window_records` itself.

    ``cache`` (``True`` for the conventional sidecar, or an explicit
    path) short-circuits the file entirely when a fresh ``.ostc``
    mapped cache exists: the window is then a zero-copy
    :meth:`~repro.core.columnar.ColumnarTrace.slice_time_window` over
    the memory-mapped lanes — no chunk is parsed and ``stats`` is left
    untouched (no trace-file bytes are read).  Without a usable cache
    the chunk-seeking path below runs unchanged.
    """
    if cache:
        from .cache import CacheError, default_cache_path, load_cache
        cache_path = (default_cache_path(path) if cache is True
                      else str(cache))
        try:
            mapped = load_cache(cache_path, source_path=path)
        except (OSError, CacheError):
            mapped = None
        if mapped is not None:
            return mapped.slice_time_window(start, end)
    from .streaming import build_window
    return build_window(stream_window_records(path, start, end,
                                              stats=stats),
                        start, end, columnar=True)


# --- corruption tolerance: verification and salvage -------------------------


@dataclass(frozen=True)
class TraceVerification:
    """The outcome of a :func:`verify_trace` integrity pass."""

    ok: bool
    indexed: bool
    crc_checked: bool           # False for v1/unindexed files
    chunks_ok: int = 0
    chunks_bad: int = 0
    reason: str = ""

    def describe(self):
        """One human-readable line."""
        if self.ok:
            detail = ("{} chunk(s) CRC-verified".format(self.chunks_ok)
                      if self.crc_checked else "no checksums to verify")
            return "ok ({})".format(detail)
        return "CORRUPT: {}".format(self.reason)


@dataclass(frozen=True)
class SalvageReport:
    """What :func:`salvage_records` recovered from a damaged file."""

    records_recovered: int
    chunks_recovered: int
    chunks_dropped: int
    complete: bool              # nothing was dropped
    reason: str = ""            # why salvage stopped, when it did

    def describe(self):
        """One human-readable line."""
        if self.complete:
            return "complete ({} records)".format(self.records_recovered)
        return ("recovered {} records / {} chunk(s), dropped {} "
                "chunk(s): {}".format(self.records_recovered,
                                      self.chunks_recovered,
                                      self.chunks_dropped, self.reason))


def verify_trace(path):
    """Check the integrity of a trace file without building a store.

    Indexed files with a version-2 (CRC-carrying) directory get every
    chunk and the preamble checksummed; version-1 and unindexed files
    get a full parse pass (structural validation only — no checksums
    to compare).  Returns a :class:`TraceVerification`; never raises
    on corruption, only on unreadable paths (``OSError``).
    """
    try:
        index = read_chunk_index(path)
    except fmt.FormatError as error:
        return TraceVerification(ok=False, indexed=True,
                                 crc_checked=False,
                                 reason="bad chunk index: {}".format(
                                     error))
    if index is None or not index.crc_checked:
        try:
            records = 0
            from .streaming import stream_records
            for __ in stream_records(path):
                records += 1
        except fmt.FormatError as error:
            return TraceVerification(ok=False, indexed=index is not None,
                                     crc_checked=False,
                                     reason=str(error))
        return TraceVerification(ok=True, indexed=index is not None,
                                 crc_checked=False)
    chunks_ok = 0
    with open(path, "rb") as stream:
        spans = [(index.preamble_offset, index.preamble_length,
                  index.preamble_crc)]
        spans.extend((entry.offset, entry.length, entry.crc)
                     for entry in index.entries)
        for offset, length, crc in spans:
            if length == 0:
                continue
            stream.seek(offset)
            data = stream.read(length)
            if len(data) != length or zlib.crc32(data) != crc:
                return TraceVerification(
                    ok=False, indexed=True, crc_checked=True,
                    chunks_ok=chunks_ok,
                    chunks_bad=len(index.entries) + 1 - chunks_ok,
                    reason="chunk at offset {} failed its CRC check"
                    .format(offset))
            chunks_ok += 1
    return TraceVerification(ok=True, indexed=True, crc_checked=True,
                             chunks_ok=chunks_ok)


def salvage_records(path):
    """Yield the verified-prefix records of a damaged trace file.

    Returns ``(records, report_box)`` where ``records`` is a generator
    of ``(kind, fields)`` pairs and ``report_box`` is a single-element
    list that holds the :class:`SalvageReport` once the generator is
    exhausted (the totals are only known at the end).

    Recovery policy — the *complete verified prefix*:

    * CRC-indexed files: the preamble plus every chunk, in file order,
      up to (not including) the first chunk that fails its CRC or
      cannot be read in full;
    * v1-indexed and unindexed files: a sequential parse up to the
      first malformed record (truncation recovery without checksums).

    A corrupt preamble is unrecoverable (the static tables live
    there); the generator then yields nothing and the report says so.
    """
    report_box = [None]
    return _salvage_iter(path, report_box), report_box


def _salvage_iter(path, report_box):
    index = None
    if codec_for_path(path) is None:
        try:
            index = read_chunk_index(path)
        except fmt.FormatError:
            index = None            # damaged footer: sequential rescue
    records = 0
    if index is not None and index.crc_checked:
        chunks = 0
        dropped = 0
        reason = ""
        with open(path, "rb") as stream:
            try:
                for kind_fields in iter_preamble_records(stream, index):
                    records += 1
                    yield kind_fields
            except fmt.FormatError as error:
                report_box[0] = SalvageReport(
                    records_recovered=0, chunks_recovered=0,
                    chunks_dropped=len(index.entries) + 1,
                    complete=False,
                    reason="preamble corrupt, nothing to salvage "
                           "({})".format(error))
                return
            for position, entry in enumerate(index.entries):
                try:
                    chunk_records = list(
                        iter_chunk_records(stream, entry))
                except fmt.FormatError as error:
                    dropped = len(index.entries) - position
                    reason = str(error)
                    break
                chunks += 1
                for kind_fields in chunk_records:
                    records += 1
                    yield kind_fields
        report_box[0] = SalvageReport(
            records_recovered=records, chunks_recovered=chunks,
            chunks_dropped=dropped, complete=dropped == 0,
            reason=reason)
        return
    # No usable checksums: parse sequentially and keep every record
    # that decodes before the first malformed one.
    from .streaming import stream_records
    reason = ""
    complete = True
    iterator = stream_records(path)
    while True:
        try:
            kind_fields = next(iterator)
        except StopIteration:
            break
        except fmt.FormatError as error:
            complete = False
            reason = str(error)
            break
        records += 1
        yield kind_fields
    report_box[0] = SalvageReport(
        records_recovered=records, chunks_recovered=0,
        chunks_dropped=0 if complete else 1, complete=complete,
        reason=reason)


def salvage_trace(path, columnar=True):
    """Build a trace store from the verified prefix of a damaged file.

    Returns ``(trace, report)``.  Raises
    :class:`~repro.trace_format.format.FormatError` when nothing
    usable survives (for example a corrupt preamble: without the
    static tables there is no trace to build).
    """
    records, report_box = salvage_records(path)
    trace = build_trace(records, columnar=columnar)
    return trace, report_box[0]
