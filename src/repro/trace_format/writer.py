"""Trace file writer.

Serializes an in-memory :class:`repro.core.trace.Trace` (or raw records)
to the binary format.  Event records are written per core in timestamp
order — satisfying the format's only ordering requirement — but records
of different cores and different types are interleaved freely, as the
format allows (Section VI-A).

Two writers are provided:

* :class:`TraceWriter` — the plain sequential writer;
* :class:`IndexedTraceWriter` — additionally cuts the event stream into
  fixed-size chunks and appends a seekable chunk-index footer (see
  ``docs/trace-format.md``) so that readers can jump straight to the
  chunks overlapping a time window instead of scanning the whole file.
  This is the write-side half of the out-of-core engine in
  :mod:`repro.trace_format.chunked` and :mod:`repro.analysis.parallel`.
"""

from __future__ import annotations

import heapq
import zlib

from . import format as fmt
from .compression import codec_for_path, open_trace_file

#: Default number of event records per indexed chunk.  Small enough
#: that a narrow time window touches few bytes, large enough that the
#: per-chunk directory entry (41 bytes) stays negligible.
DEFAULT_CHUNK_RECORDS = 4096


class TraceWriter:
    """Low-level record writer over a binary stream."""

    def __init__(self, stream):
        self.stream = stream
        self.records_written = 0
        header = fmt.HEADER.pack(fmt.MAGIC, fmt.VERSION)
        stream.write(header)
        self.position = len(header)

    def _record(self, tag, payload, span=None, core=None):
        """Append one record.  ``span`` is the inclusive time range
        covered by an event record (``None`` for static records);
        ``core`` is the originating core, when meaningful.  Both are
        ignored here and consumed by :class:`IndexedTraceWriter`."""
        self._emit(fmt.TAG.pack(int(tag)) + payload, span=span, core=core)

    def _emit(self, data, span=None, core=None):
        """Write one composed record; the single point subclasses hook
        to account chunk ranges and checksums over the exact bytes."""
        self.stream.write(data)
        self.position += len(data)
        self.records_written += 1

    def finish(self):
        """Finalize the trace.  The plain writer has no footer, so this
        is a no-op; :class:`IndexedTraceWriter` writes its index here."""
        return self.records_written

    def topology(self, info):
        """Write the machine topology record (:class:`TopologyInfo`)."""
        self._record(fmt.RecordTag.TOPOLOGY,
                     fmt.TOPOLOGY.pack(info.num_nodes, info.cores_per_node)
                     + fmt.pack_string(info.name))

    def counter_description(self, description):
        """Write one :class:`CounterDescription` record."""
        self._record(fmt.RecordTag.COUNTER_DESCRIPTION,
                     fmt.COUNTER_DESCRIPTION.pack(
                         description.counter_id,
                         1 if description.monotone else 0)
                     + fmt.pack_string(description.name))

    def task_type(self, info):
        """Write one :class:`TaskTypeInfo` record."""
        self._record(fmt.RecordTag.TASK_TYPE,
                     fmt.TASK_TYPE.pack(info.type_id, info.address,
                                        info.source_line)
                     + fmt.pack_string(info.name)
                     + fmt.pack_string(info.source_file))

    def region(self, info):
        """Write one :class:`RegionInfo` record with its page placement."""
        payload = fmt.REGION.pack(info.region_id, info.address, info.size,
                                  len(info.page_nodes))
        payload += b"".join(fmt.PAGE_NODE.pack(node)
                            for node in info.page_nodes)
        payload += fmt.pack_string(info.name)
        self._record(fmt.RecordTag.REGION, payload)

    def state_interval(self, core, state, start, end):
        """Record that ``core`` was in ``state`` during [start, end)."""
        self._record(fmt.RecordTag.STATE_INTERVAL,
                     fmt.STATE_INTERVAL.pack(core, state, start, end),
                     span=(start, end), core=core)

    def task_execution(self, task_id, type_id, core, start, end):
        """Record one task execution interval on ``core``."""
        self._record(fmt.RecordTag.TASK_EXECUTION,
                     fmt.TASK_EXECUTION.pack(task_id, type_id, core,
                                             start, end),
                     span=(start, end), core=core)

    def counter_sample(self, core, counter_id, timestamp, value):
        """Record one hardware-counter sample."""
        self._record(fmt.RecordTag.COUNTER_SAMPLE,
                     fmt.COUNTER_SAMPLE.pack(core, counter_id, timestamp,
                                             value),
                     span=(timestamp, timestamp), core=core)

    def discrete_event(self, core, kind, timestamp, payload):
        """Record one discrete (point) event."""
        self._record(fmt.RecordTag.DISCRETE_EVENT,
                     fmt.DISCRETE_EVENT.pack(core, kind, timestamp,
                                             payload),
                     span=(timestamp, timestamp), core=core)

    def comm_event(self, src_core, dst_core, timestamp, size, task_id):
        """Record a communication event of ``size`` bytes between cores."""
        self._record(fmt.RecordTag.COMM_EVENT,
                     fmt.COMM_EVENT.pack(src_core, dst_core, timestamp,
                                         size, task_id),
                     span=(timestamp, timestamp), core=src_core)

    def memory_access(self, task_id, core, address, size, is_write,
                      timestamp):
        """Record one memory access of ``size`` bytes by ``task_id``."""
        self._record(fmt.RecordTag.MEMORY_ACCESS,
                     fmt.MEMORY_ACCESS.pack(task_id, core, address, size,
                                            1 if is_write else 0,
                                            timestamp),
                     span=(timestamp, timestamp), core=core)


class IndexedTraceWriter(TraceWriter):
    """Trace writer that maintains a seekable chunk index.

    Records are grouped into chunks of ``chunk_records`` records.
    Static records written before the first event form the *preamble*,
    which readers always load; a static record that arrives after
    chunking has started joins the current chunk — opening a fresh one
    if none is open, so no record can fall into an unindexed gap — and
    marks it with :data:`~repro.trace_format.format.CHUNK_HAS_STATIC`
    so no reader can skip it.  Call :meth:`finish` (or use the writer
    as a context manager) to emit the index footer — an unfinished
    indexed trace is still a valid, merely unindexed, trace file.

    With ``crc=True`` (the default) every chunk's bytes — and the
    preamble's — are checksummed as they are written, and the footer
    uses the version-2 directory layout that stores one CRC32 per
    entry.  Readers then detect corrupted or truncated chunks before
    mis-parsing them, and the salvage path
    (:func:`repro.trace_format.chunked.salvage_records`) can recover
    the verified prefix of a damaged file.  ``crc=False`` emits the
    legacy version-1 footer, which old readers understand.
    """

    def __init__(self, stream, chunk_records=DEFAULT_CHUNK_RECORDS,
                 crc=True):
        if chunk_records < 1:
            raise ValueError("chunk_records must be positive")
        super().__init__(stream)
        self.chunk_records = chunk_records
        self.crc = bool(crc)
        self.entries = []
        self._preamble_crc = 0
        self._chunk_crc = 0
        self._chunking_started = False
        self._chunk_start = None
        self._chunk_records = 0
        self._chunk_t_min = None
        self._chunk_t_max = None
        self._chunk_core = fmt.MIXED_CORES
        self._chunk_flags = 0
        self._finished = False

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.finish()

    def _emit(self, data, span=None, core=None):
        offset = self.position
        super()._emit(data, span=span, core=core)
        if span is None and not self._chunking_started:
            # Preamble static record.
            self._preamble_crc = zlib.crc32(data, self._preamble_crc)
            return
        self._chunking_started = True
        if self._chunk_start is None:
            self._open_chunk(offset)
        self._chunk_crc = zlib.crc32(data, self._chunk_crc)
        if span is None:
            self._chunk_flags |= fmt.CHUNK_HAS_STATIC
        else:
            t_lo, t_hi = span
            if self._chunk_t_min is None:
                self._chunk_t_min = t_lo
                self._chunk_t_max = t_hi
                self._chunk_core = (fmt.MIXED_CORES if core is None
                                    else core)
            else:
                self._chunk_t_min = min(self._chunk_t_min, t_lo)
                self._chunk_t_max = max(self._chunk_t_max, t_hi)
                if core is None or core != self._chunk_core:
                    self._chunk_core = fmt.MIXED_CORES
        self._chunk_records += 1
        if self._chunk_records >= self.chunk_records:
            self._close_chunk()

    def _open_chunk(self, offset):
        self._chunk_start = offset
        self._chunk_records = 0
        self._chunk_flags = 0
        self._chunk_crc = 0
        self._chunk_t_min = None
        self._chunk_t_max = None
        self._chunk_core = fmt.MIXED_CORES

    def _close_chunk(self):
        if self._chunk_start is None:
            return
        if self._chunk_t_min is None:
            # Static-only chunk: an empty time range never overlaps a
            # window, but CHUNK_HAS_STATIC forces readers to visit it.
            t_min, t_max = 0, -1
        else:
            t_min, t_max = self._chunk_t_min, self._chunk_t_max
        self.entries.append((self._chunk_start,
                             self.position - self._chunk_start,
                             t_min, t_max,
                             self._chunk_records, self._chunk_core,
                             self._chunk_flags, self._chunk_crc))
        self._chunk_start = None
        self._chunk_records = 0
        self._chunk_flags = 0
        self._chunk_crc = 0

    def finish(self):
        """Close the open chunk and append the index footer.  Returns
        the number of data records written (the footer is not a data
        record).  Idempotent."""
        if self._finished:
            return self.records_written
        self._close_chunk()
        index_offset = self.position
        if self.crc:
            footer = [fmt.TAG.pack(int(fmt.RecordTag.CHUNK_INDEX_V2)),
                      fmt.INDEX_HEADER_V2.pack(len(self.entries),
                                               self._preamble_crc)]
            footer.extend(fmt.CHUNK_ENTRY_V2.pack(*entry)
                          for entry in self.entries)
            footer.append(fmt.INDEX_TRAILER.pack(index_offset,
                                                 fmt.INDEX_MAGIC_V2))
        else:
            footer = [fmt.TAG.pack(int(fmt.RecordTag.CHUNK_INDEX)),
                      fmt.INDEX_HEADER.pack(len(self.entries))]
            footer.extend(fmt.CHUNK_ENTRY.pack(*entry[:7])
                          for entry in self.entries)
            footer.append(fmt.INDEX_TRAILER.pack(index_offset,
                                                 fmt.INDEX_MAGIC))
        data = b"".join(footer)
        self.stream.write(data)
        self.position += len(data)
        self._finished = True
        return self.records_written


def write_trace(trace, path, index="auto",
                chunk_records=DEFAULT_CHUNK_RECORDS, crc=True):
    """Serialize a :class:`Trace` to ``path`` (compressed if the suffix
    says so).  Returns the number of records written.

    ``index`` controls the seekable chunk index: ``True`` to append it,
    ``False`` to skip it, or ``"auto"`` (the default) to append it
    exactly when the file is uncompressed — compressed streams are not
    seekable, so an index inside them could never be used.  ``crc``
    selects the checksummed version-2 footer (``False`` writes the
    legacy version-1 layout).
    """
    if index == "auto":
        index = codec_for_path(path) is None
    with open_trace_file(path, "wb") as stream:
        if index:
            writer = IndexedTraceWriter(stream,
                                        chunk_records=chunk_records,
                                        crc=crc)
        else:
            writer = TraceWriter(stream)
        _write_records(writer, trace)
        return writer.finish()


def _write_records(writer, trace):
    """Emit every record of ``trace`` through ``writer`` — static
    tables first, then all event lanes merged into one global
    timestamp order.

    The format only requires per-core order, which each sorted lane
    already satisfies; the global merge is for the chunk index.  If
    lanes were written one core after another, every chunk's time
    range would span nearly the whole execution and a windowed reader
    could skip almost nothing.  Interleaving keeps each chunk's
    [t_min, t_max] narrow, which is what makes seek-to-window pay off.
    """
    writer.topology(trace.topology)
    for description in trace.counter_descriptions:
        writer.counter_description(description)
    for info in trace.task_types:
        writer.task_type(info)
    for info in trace.regions:
        writer.region(info)
    for __, method, args in heapq.merge(*_event_lanes(trace)):
        getattr(writer, method)(*args)


def _event_lanes(trace):
    """One sorted ``(timestamp, method, args)`` generator per event
    lane of ``trace``, ready for :func:`heapq.merge`."""

    def states(core):
        lane = trace.states.core_slice(core)
        columns = trace.states.columns
        for index in range(lane.start, lane.stop):
            yield (int(columns["start"][index]), "state_interval",
                   (int(columns["core"][index]),
                    int(columns["state"][index]),
                    int(columns["start"][index]),
                    int(columns["end"][index])))

    def tasks(core):
        lane = trace.tasks.core_slice(core)
        columns = trace.tasks.columns
        for index in range(lane.start, lane.stop):
            yield (int(columns["start"][index]), "task_execution",
                   (int(columns["task_id"][index]),
                    int(columns["type_id"][index]),
                    int(columns["core"][index]),
                    int(columns["start"][index]),
                    int(columns["end"][index])))

    def counters(core, counter_id):
        timestamps, values = trace.counter_series[(core, counter_id)]
        for index in range(len(timestamps)):
            yield (int(timestamps[index]), "counter_sample",
                   (core, counter_id, int(timestamps[index]),
                    float(values[index])))

    def discrete(core):
        lane = trace.discrete.core_slice(core)
        columns = trace.discrete.columns
        for index in range(lane.start, lane.stop):
            yield (int(columns["timestamp"][index]), "discrete_event",
                   (int(columns["core"][index]),
                    int(columns["kind"][index]),
                    int(columns["timestamp"][index]),
                    int(columns["payload"][index])))

    def comm():
        columns = trace.comm          # already sorted by timestamp
        for index in range(len(columns["timestamp"])):
            yield (int(columns["timestamp"][index]), "comm_event",
                   (int(columns["src_core"][index]),
                    int(columns["dst_core"][index]),
                    int(columns["timestamp"][index]),
                    int(columns["size"][index]),
                    int(columns["task_id"][index])))

    def accesses():
        columns = trace.accesses      # sorted by task, not by time
        order = sorted(range(len(columns["timestamp"])),
                       key=lambda i: int(columns["timestamp"][i]))
        for index in order:
            yield (int(columns["timestamp"][index]), "memory_access",
                   (int(columns["task_id"][index]),
                    int(columns["core"][index]),
                    int(columns["address"][index]),
                    int(columns["size"][index]),
                    bool(columns["is_write"][index]),
                    int(columns["timestamp"][index])))

    lanes = []
    for core in range(trace.num_cores):
        lanes.extend((states(core), tasks(core), discrete(core)))
    for core, counter_id in sorted(trace.counter_series):
        lanes.append(counters(core, counter_id))
    lanes.append(comm())
    lanes.append(accesses())
    return lanes
