"""Trace file writer.

Serializes an in-memory :class:`repro.core.trace.Trace` (or raw records)
to the binary format.  Event records are written per core in timestamp
order — satisfying the format's only ordering requirement — but records
of different cores and different types are interleaved freely, as the
format allows (Section VI-A).
"""

from __future__ import annotations

from . import format as fmt
from .compression import open_trace_file


class TraceWriter:
    """Low-level record writer over a binary stream."""

    def __init__(self, stream):
        self.stream = stream
        self.records_written = 0
        stream.write(fmt.HEADER.pack(fmt.MAGIC, fmt.VERSION))

    def _record(self, tag, payload):
        self.stream.write(fmt.TAG.pack(int(tag)) + payload)
        self.records_written += 1

    def topology(self, info):
        self._record(fmt.RecordTag.TOPOLOGY,
                     fmt.TOPOLOGY.pack(info.num_nodes, info.cores_per_node)
                     + fmt.pack_string(info.name))

    def counter_description(self, description):
        self._record(fmt.RecordTag.COUNTER_DESCRIPTION,
                     fmt.COUNTER_DESCRIPTION.pack(
                         description.counter_id,
                         1 if description.monotone else 0)
                     + fmt.pack_string(description.name))

    def task_type(self, info):
        self._record(fmt.RecordTag.TASK_TYPE,
                     fmt.TASK_TYPE.pack(info.type_id, info.address,
                                        info.source_line)
                     + fmt.pack_string(info.name)
                     + fmt.pack_string(info.source_file))

    def region(self, info):
        payload = fmt.REGION.pack(info.region_id, info.address, info.size,
                                  len(info.page_nodes))
        payload += b"".join(fmt.PAGE_NODE.pack(node)
                            for node in info.page_nodes)
        payload += fmt.pack_string(info.name)
        self._record(fmt.RecordTag.REGION, payload)

    def state_interval(self, core, state, start, end):
        self._record(fmt.RecordTag.STATE_INTERVAL,
                     fmt.STATE_INTERVAL.pack(core, state, start, end))

    def task_execution(self, task_id, type_id, core, start, end):
        self._record(fmt.RecordTag.TASK_EXECUTION,
                     fmt.TASK_EXECUTION.pack(task_id, type_id, core,
                                             start, end))

    def counter_sample(self, core, counter_id, timestamp, value):
        self._record(fmt.RecordTag.COUNTER_SAMPLE,
                     fmt.COUNTER_SAMPLE.pack(core, counter_id, timestamp,
                                             value))

    def discrete_event(self, core, kind, timestamp, payload):
        self._record(fmt.RecordTag.DISCRETE_EVENT,
                     fmt.DISCRETE_EVENT.pack(core, kind, timestamp,
                                             payload))

    def comm_event(self, src_core, dst_core, timestamp, size, task_id):
        self._record(fmt.RecordTag.COMM_EVENT,
                     fmt.COMM_EVENT.pack(src_core, dst_core, timestamp,
                                         size, task_id))

    def memory_access(self, task_id, core, address, size, is_write,
                      timestamp):
        self._record(fmt.RecordTag.MEMORY_ACCESS,
                     fmt.MEMORY_ACCESS.pack(task_id, core, address, size,
                                            1 if is_write else 0,
                                            timestamp))


def write_trace(trace, path):
    """Serialize a :class:`Trace` to ``path`` (compressed if the suffix
    says so).  Returns the number of records written."""
    with open_trace_file(path, "wb") as stream:
        writer = TraceWriter(stream)
        writer.topology(trace.topology)
        for description in trace.counter_descriptions:
            writer.counter_description(description)
        for info in trace.task_types:
            writer.task_type(info)
        for info in trace.regions:
            writer.region(info)
        states = trace.states
        for core in range(trace.num_cores):
            lane = states.core_slice(core)
            columns = states.columns
            for index in range(lane.start, lane.stop):
                writer.state_interval(int(columns["core"][index]),
                                      int(columns["state"][index]),
                                      int(columns["start"][index]),
                                      int(columns["end"][index]))
        tasks = trace.tasks
        for core in range(trace.num_cores):
            lane = tasks.core_slice(core)
            columns = tasks.columns
            for index in range(lane.start, lane.stop):
                writer.task_execution(int(columns["task_id"][index]),
                                      int(columns["type_id"][index]),
                                      int(columns["core"][index]),
                                      int(columns["start"][index]),
                                      int(columns["end"][index]))
        for (core, counter_id), (timestamps, values) in sorted(
                trace.counter_series.items()):
            for index in range(len(timestamps)):
                writer.counter_sample(core, counter_id,
                                      int(timestamps[index]),
                                      float(values[index]))
        discrete = trace.discrete
        for core in range(trace.num_cores):
            lane = discrete.core_slice(core)
            columns = discrete.columns
            for index in range(lane.start, lane.stop):
                writer.discrete_event(int(columns["core"][index]),
                                      int(columns["kind"][index]),
                                      int(columns["timestamp"][index]),
                                      int(columns["payload"][index]))
        comm = trace.comm
        for index in range(len(comm["timestamp"])):
            writer.comm_event(int(comm["src_core"][index]),
                              int(comm["dst_core"][index]),
                              int(comm["timestamp"][index]),
                              int(comm["size"][index]),
                              int(comm["task_id"][index]))
        accesses = trace.accesses
        for index in range(len(accesses["task_id"])):
            writer.memory_access(int(accesses["task_id"][index]),
                                 int(accesses["core"][index]),
                                 int(accesses["address"][index]),
                                 int(accesses["size"][index]),
                                 bool(accesses["is_write"][index]),
                                 int(accesses["timestamp"][index]))
        return writer.records_written
