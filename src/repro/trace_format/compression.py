"""Transparent compression for trace files.

Aftermath can directly open traces compressed with standard GNU/Linux
tools (gzip, bzip2, xz), decompressing through a pipe.  The
reproduction maps the same codecs onto the standard library and selects
the codec from the file suffix, so ``open_trace_file("trace.ost.xz")``
just works.
"""

from __future__ import annotations

import bz2
import gzip
import lzma

_OPENERS = {
    ".gz": gzip.open,
    ".bz2": bz2.open,
    ".xz": lzma.open,
}


def codec_for_path(path):
    """The codec suffix of ``path`` (``".gz"`` etc.) or ``None``."""
    lowered = str(path).lower()
    for suffix in _OPENERS:
        if lowered.endswith(suffix):
            return suffix
    return None


def open_trace_file(path, mode="rb"):
    """Open a possibly-compressed trace file as a binary stream."""
    if "b" not in mode:
        raise ValueError("trace files are binary; use a 'b' mode")
    codec = codec_for_path(path)
    if codec is None:
        return open(path, mode)
    return _OPENERS[codec](path, mode)
