"""Paraver trace export *and* import (round-trip support).

Earlier versions of OpenStream wrote traces in PARAVER's native format
(Section VII); Aftermath replaced that path with its own format, but
interoperability with the Paraver/BSC tool family remains useful.
This module exports an in-memory trace to the textual Paraver ``.prv``
format (plus the ``.pcf`` configuration naming states and events) so a
trace produced here can be opened in wxParaver, and imports ``.prv``
files back into either trace store so every statistic, anomaly
detector and renderer runs unmodified on Paraver traces.

The mapping follows Paraver conventions:

* one application with one task and N threads (one per core);
* state records (type 1): ``1:cpu:appl:task:thread:begin:end:state``;
* event records (type 2) at task start carrying the task type, id and
  end timestamp, at discrete events carrying the kind and payload, and
  at counter samples carrying one event type per counter
  (``42000000 + counter_id``, the BSC hardware-counter id range);
* communication records (type 3) for inter-worker communication;
* state ids are offset by 1 (Paraver reserves 0 for idle).

Fidelity: states, task executions, discrete events, communication
events, counter samples (exact float64 values) and the machine shape
round-trip losslessly.  Memory accesses, task-type source locations
and the machine *name* have no Paraver representation and are dropped
on export — the documented lossy corner of this format.
"""

from __future__ import annotations

import re

from ..core.events import (STATE_NAMES, DiscreteEventKind, TopologyInfo,
                           WorkerState)
from .format import FormatError

#: Paraver event type ids used by the export.
EVENT_TASK_TYPE = 60000001
EVENT_DISCRETE = 60000002
EVENT_TASK_ID = 60000003
EVENT_TASK_END = 60000004
EVENT_DISCRETE_PAYLOAD = 60000005

#: First event type id of the per-counter range (the BSC convention
#: for hardware counters).  Counter ``i`` maps to ``BASE + i``.
EVENT_COUNTER_BASE = 42000000

_HEADER_RE = re.compile(
    r"#Paraver \([^)]*\):(\d+)(?:_ns)?:(\d+)\(([0-9,]+)\):")


def _format_value(value):
    """One counter value as Paraver text: integers stay integers,
    non-integral floats use ``repr`` (which round-trips float64
    exactly in Python)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def export_paraver(trace, path):
    """Write ``path`` (.prv) and ``path.replace('.prv', '.pcf')``.

    Returns the number of records written to the .prv body.
    """
    if not str(path).endswith(".prv"):
        raise ValueError("Paraver traces use the .prv suffix")
    records = []
    for core in range(trace.num_cores):
        lane = trace.states.core_slice(core)
        columns = trace.states.columns
        for index in range(lane.start, lane.stop):
            records.append((int(columns["start"][index]), 1,
                            "1:{cpu}:1:1:{thread}:{begin}:{end}:{state}"
                            .format(cpu=core + 1, thread=core + 1,
                                    begin=int(columns["start"][index]),
                                    end=int(columns["end"][index]),
                                    state=int(columns["state"][index])
                                    + 1)))
        lane = trace.tasks.core_slice(core)
        columns = trace.tasks.columns
        for index in range(lane.start, lane.stop):
            records.append((int(columns["start"][index]), 2,
                            "2:{cpu}:1:1:{thread}:{time}:{type}:{value}"
                            ":{id_type}:{id_value}:{end_type}:{end}"
                            .format(cpu=core + 1, thread=core + 1,
                                    time=int(columns["start"][index]),
                                    type=EVENT_TASK_TYPE,
                                    value=int(columns["type_id"][index])
                                    + 1,
                                    id_type=EVENT_TASK_ID,
                                    id_value=int(
                                        columns["task_id"][index]) + 1,
                                    end_type=EVENT_TASK_END,
                                    end=int(columns["end"][index]))))
        lane = trace.discrete.core_slice(core)
        columns = trace.discrete.columns
        for index in range(lane.start, lane.stop):
            records.append((int(columns["timestamp"][index]), 2,
                            "2:{cpu}:1:1:{thread}:{time}:{type}:{value}"
                            ":{pl_type}:{payload}"
                            .format(cpu=core + 1, thread=core + 1,
                                    time=int(
                                        columns["timestamp"][index]),
                                    type=EVENT_DISCRETE,
                                    value=int(columns["kind"][index])
                                    + 1,
                                    pl_type=EVENT_DISCRETE_PAYLOAD,
                                    payload=int(
                                        columns["payload"][index]))))
        for (counter_core, counter_id) in sorted(trace.counter_series):
            if counter_core != core:
                continue
            timestamps, values = trace.counter_samples(core, counter_id)
            for index in range(len(timestamps)):
                records.append((int(timestamps[index]), 2,
                                "2:{cpu}:1:1:{thread}:{time}:{type}:{value}"
                                .format(cpu=core + 1, thread=core + 1,
                                        time=int(timestamps[index]),
                                        type=EVENT_COUNTER_BASE
                                        + counter_id,
                                        value=_format_value(
                                            float(values[index])))))
    comm = trace.comm
    for index in range(len(comm["timestamp"])):
        time = int(comm["timestamp"][index])
        records.append((time, 3,
                        "3:{src}:1:1:{src}:{t}:{t}:{dst}:1:1:{dst}:{t}"
                        ":{t}:{size}:{tag}".format(
                            src=int(comm["src_core"][index]) + 1,
                            dst=int(comm["dst_core"][index]) + 1,
                            t=time, size=int(comm["size"][index]),
                            tag=int(comm["task_id"][index]))))
    records.sort(key=lambda record: (record[0], record[1]))

    duration = max(trace.end, 1)
    node_list = ",".join(str(trace.topology.cores_per_node)
                         for __ in range(trace.topology.num_nodes))
    header = ("#Paraver (01/01/2016 at 00:00):{duration}_ns:"
              "{nodes}({node_list}):1:1({threads}:1)\n").format(
                  duration=duration, nodes=trace.topology.num_nodes,
                  node_list=node_list, threads=trace.num_cores)
    with open(path, "w") as handle:
        handle.write(header)
        for __, __priority, line in records:
            handle.write(line + "\n")

    pcf_path = str(path)[:-4] + ".pcf"
    with open(pcf_path, "w") as handle:
        handle.write("DEFAULT_OPTIONS\n\nLEVEL\tTHREAD\nUNITS\tNANOSEC\n")
        handle.write("\nSTATES\n")
        handle.write("0\tIdle (reserved)\n")
        for state in WorkerState:
            handle.write("{}\t{}\n".format(int(state) + 1,
                                           STATE_NAMES[state]))
        handle.write("\nEVENT_TYPE\n0\t{}\tTask type\nVALUES\n"
                     .format(EVENT_TASK_TYPE))
        for info in trace.task_types:
            handle.write("{}\t{}\n".format(info.type_id + 1, info.name))
        handle.write("\nEVENT_TYPE\n0\t{}\tDiscrete event\nVALUES\n"
                     .format(EVENT_DISCRETE))
        for kind in DiscreteEventKind:
            handle.write("{}\t{}\n".format(int(kind) + 1, kind.name))
        handle.write("\nEVENT_TYPE\n0\t{}\tTask id\n"
                     .format(EVENT_TASK_ID))
        handle.write("\nEVENT_TYPE\n0\t{}\tTask end time\n"
                     .format(EVENT_TASK_END))
        handle.write("\nEVENT_TYPE\n0\t{}\tDiscrete payload\n"
                     .format(EVENT_DISCRETE_PAYLOAD))
        for description in trace.counter_descriptions:
            # Gradient 7 marks monotone (cumulative hardware) counters,
            # 0 point-in-time ones -- the importer reads it back.
            handle.write("\nEVENT_TYPE\n{}\t{}\t{}\n".format(
                7 if description.monotone else 0,
                EVENT_COUNTER_BASE + description.counter_id,
                description.name))
    return len(records)


def _parse_header(line):
    """The :class:`TopologyInfo` encoded in a ``.prv`` header line."""
    match = _HEADER_RE.match(line)
    if not match:
        raise FormatError("not a Paraver trace (bad #Paraver header)")
    num_nodes = int(match.group(2))
    per_node = [int(field) for field in match.group(3).split(",")]
    if num_nodes < 1 or len(per_node) != num_nodes:
        raise FormatError("inconsistent Paraver node list")
    # The reproduction's machines are homogeneous; a heterogeneous
    # node list degrades to one node holding every cpu.
    if len(set(per_node)) != 1:
        return TopologyInfo(num_nodes=1, cores_per_node=sum(per_node),
                            name="paraver")
    return TopologyInfo(num_nodes=num_nodes, cores_per_node=per_node[0],
                        name="paraver")


def _parse_pcf(pcf_path, builder):
    """Install the task-type and counter descriptions named by a
    ``.pcf`` file onto ``builder`` (silently absent files are fine —
    foreign traces do not always ship one)."""
    from ..core.events import CounterDescription, TaskTypeInfo
    try:
        with open(pcf_path) as handle:
            lines = handle.read().splitlines()
    except OSError:
        return
    section = None
    event_type = None
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped in ("DEFAULT_OPTIONS", "STATES", "EVENT_TYPE",
                        "VALUES"):
            section = stripped
            if stripped == "EVENT_TYPE":
                event_type = None
            continue
        fields = stripped.split(None, 2)
        if section == "EVENT_TYPE" and len(fields) == 3 \
                and fields[0].isdigit() and fields[1].isdigit():
            gradient, type_id, label = (int(fields[0]), int(fields[1]),
                                        fields[2])
            event_type = type_id
            if EVENT_COUNTER_BASE <= type_id < EVENT_TASK_TYPE:
                counter_id = type_id - EVENT_COUNTER_BASE
                while len(builder.counter_descriptions) <= counter_id:
                    placeholder = len(builder.counter_descriptions)
                    builder.counter_descriptions.append(
                        CounterDescription(counter_id=placeholder,
                                           name="counter_{}".format(
                                               placeholder)))
                builder.counter_descriptions[counter_id] = \
                    CounterDescription(counter_id=counter_id,
                                       name=label,
                                       monotone=gradient == 7)
        elif section == "VALUES" and event_type == EVENT_TASK_TYPE \
                and len(fields) >= 2 and fields[0].isdigit():
            value = int(fields[0])
            if value >= 1:
                builder.describe_task_type(TaskTypeInfo(
                    type_id=value - 1,
                    name=stripped.split(None, 1)[1]))


def import_paraver(path, columnar=False):
    """Load a ``.prv`` trace (plus its ``.pcf``, when present).

    Returns the object-model :class:`~repro.core.trace.Trace`
    (``columnar=True``: the
    :class:`~repro.core.columnar.ColumnarTrace`).  Files exported by
    :func:`export_paraver` round-trip exactly except for memory
    accesses; any compliant ``.prv`` file yields at least its state
    records, so the state-based analyses work on foreign traces too.
    """
    with open(path) as handle:
        header = handle.readline()
        topology = _parse_header(header)
        if columnar:
            from ..core.columnar import ColumnarBuilder
            builder = ColumnarBuilder(topology)
        else:
            from ..core.trace import TraceBuilder
            builder = TraceBuilder(topology)
        _parse_pcf(str(path)[:-4] + ".pcf", builder)
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(":")
            try:
                _parse_record(builder, fields)
            except (ValueError, IndexError):
                raise FormatError(
                    "malformed Paraver record at {}:{}".format(path,
                                                               lineno))
    return builder.build()


def _parse_record(builder, fields):
    """Dispatch one colon-split ``.prv`` body line onto a builder."""
    kind = int(fields[0])
    if kind == 1:
        if len(fields) != 8:
            raise ValueError("bad state record")
        core = int(fields[1]) - 1
        begin, end, state = (int(fields[5]), int(fields[6]),
                             int(fields[7]))
        # Paraver state 0 is the reserved idle state; exported states
        # are offset by one.
        mapped = state - 1 if state >= 1 else int(WorkerState.IDLE)
        builder.state_interval(core, mapped, begin, end)
    elif kind == 2:
        if len(fields) < 8 or len(fields) % 2 != 0:
            raise ValueError("bad event record")
        core = int(fields[1]) - 1
        time = int(fields[5])
        events = {}
        for position in range(6, len(fields), 2):
            events[int(fields[position])] = fields[position + 1]
        if EVENT_TASK_TYPE in events:
            type_id = int(events[EVENT_TASK_TYPE]) - 1
            task_id = int(events.get(EVENT_TASK_ID, 0)) - 1
            end = int(events.get(EVENT_TASK_END, time))
            builder.task_execution(task_id, type_id, core, time, end)
        elif EVENT_DISCRETE in events:
            builder.discrete_event(
                core, int(events[EVENT_DISCRETE]) - 1, time,
                int(events.get(EVENT_DISCRETE_PAYLOAD, 0)))
        else:
            for event_type, value in events.items():
                if EVENT_COUNTER_BASE <= event_type < EVENT_TASK_TYPE:
                    builder.counter_sample(
                        core, event_type - EVENT_COUNTER_BASE, time,
                        float(value))
    elif kind == 3:
        if len(fields) != 15:
            raise ValueError("bad communication record")
        builder.comm_event(int(fields[1]) - 1, int(fields[7]) - 1,
                           int(fields[5]), size=int(fields[13]),
                           task_id=int(fields[14]))
    else:
        raise ValueError("unknown Paraver record kind {}".format(kind))
