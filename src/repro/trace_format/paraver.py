"""Paraver trace export.

Earlier versions of OpenStream wrote traces in PARAVER's native format
(Section VII); Aftermath replaced that path with its own format, but
interoperability with the Paraver/BSC tool family remains useful.
This module exports an in-memory trace to the textual Paraver ``.prv``
format (plus the ``.pcf`` configuration naming states and events) so a
trace produced here can be opened in wxParaver.

The mapping follows Paraver conventions:

* one application with one task and N threads (one per core);
* state records (type 1): ``1:cpu:appl:task:thread:begin:end:state``;
* event records (type 2) at task start carrying the task type, and at
  discrete events carrying the event kind;
* state ids are offset by 1 (Paraver reserves 0 for idle).
"""

from __future__ import annotations

from ..core.events import STATE_NAMES, DiscreteEventKind, WorkerState

#: Paraver event type ids used by the export.
EVENT_TASK_TYPE = 60000001
EVENT_DISCRETE = 60000002


def export_paraver(trace, path):
    """Write ``path`` (.prv) and ``path.replace('.prv', '.pcf')``.

    Returns the number of records written to the .prv body.
    """
    if not str(path).endswith(".prv"):
        raise ValueError("Paraver traces use the .prv suffix")
    records = []
    for core in range(trace.num_cores):
        lane = trace.states.core_slice(core)
        columns = trace.states.columns
        for index in range(lane.start, lane.stop):
            records.append((int(columns["start"][index]), 1,
                            "1:{cpu}:1:1:{thread}:{begin}:{end}:{state}"
                            .format(cpu=core + 1, thread=core + 1,
                                    begin=int(columns["start"][index]),
                                    end=int(columns["end"][index]),
                                    state=int(columns["state"][index])
                                    + 1)))
        lane = trace.tasks.core_slice(core)
        columns = trace.tasks.columns
        for index in range(lane.start, lane.stop):
            records.append((int(columns["start"][index]), 2,
                            "2:{cpu}:1:1:{thread}:{time}:{type}:{value}"
                            .format(cpu=core + 1, thread=core + 1,
                                    time=int(columns["start"][index]),
                                    type=EVENT_TASK_TYPE,
                                    value=int(columns["type_id"][index])
                                    + 1)))
        lane = trace.discrete.core_slice(core)
        columns = trace.discrete.columns
        for index in range(lane.start, lane.stop):
            records.append((int(columns["timestamp"][index]), 2,
                            "2:{cpu}:1:1:{thread}:{time}:{type}:{value}"
                            .format(cpu=core + 1, thread=core + 1,
                                    time=int(
                                        columns["timestamp"][index]),
                                    type=EVENT_DISCRETE,
                                    value=int(columns["kind"][index])
                                    + 1)))
    records.sort(key=lambda record: (record[0], record[1]))

    duration = max(trace.end, 1)
    header = ("#Paraver (01/01/2016 at 00:00):{duration}_ns:"
              "1({cpus}):1:1({threads}:1)\n").format(
                  duration=duration, cpus=trace.num_cores,
                  threads=trace.num_cores)
    with open(path, "w") as handle:
        handle.write(header)
        for __, __priority, line in records:
            handle.write(line + "\n")

    pcf_path = str(path)[:-4] + ".pcf"
    with open(pcf_path, "w") as handle:
        handle.write("DEFAULT_OPTIONS\n\nLEVEL\tTHREAD\nUNITS\tNANOSEC\n")
        handle.write("\nSTATES\n")
        handle.write("0\tIdle (reserved)\n")
        for state in WorkerState:
            handle.write("{}\t{}\n".format(int(state) + 1,
                                           STATE_NAMES[state]))
        handle.write("\nEVENT_TYPE\n0\t{}\tTask type\nVALUES\n"
                     .format(EVENT_TASK_TYPE))
        for info in trace.task_types:
            handle.write("{}\t{}\n".format(info.type_id + 1, info.name))
        handle.write("\nEVENT_TYPE\n0\t{}\tDiscrete event\nVALUES\n"
                     .format(EVENT_DISCRETE))
        for kind in DiscreteEventKind:
            handle.write("{}\t{}\n".format(int(kind) + 1, kind.name))
    return len(records)
