"""Trace-source registry: format-plural ingestion behind one call.

Aftermath's analyses are runtime-agnostic — the paper demonstrates
them on OpenStream *and* OpenMP traces — so loading must not be
hard-wired to one file format.  Instead of an if/else chain, every
supported format registers a :class:`TraceSource` subclass: a small
object with a ``can_load`` heuristic (file suffix + the first bytes
of content) and a ``load`` method that normalizes the file into the
trace stores everything downstream consumes.

:func:`ingest_trace` is the single entry point: it sniffs the file,
picks the first matching source (registration order is priority
order, the native format first), and returns a trace on which every
statistic, anomaly detector and renderer works unmodified.
"""

from __future__ import annotations

from ..format import MAGIC, FormatError

#: Registered sources, in priority order.
_SOURCES = []


def register_source(cls):
    """Class decorator adding a :class:`TraceSource` to the registry.

    Sources are probed in registration order, so register more
    specific formats (magic-numbered binaries) before permissive ones
    (textual formats).  Returns the class unchanged.
    """
    _SOURCES.append(cls())
    return cls


def registered_sources():
    """The registered source instances, in probe order."""
    return tuple(_SOURCES)


class TraceSource:
    """One ingestible trace format.

    Subclasses set ``name`` (the CLI-facing identifier) and
    ``suffixes`` (file endings the format conventionally uses) and
    implement :meth:`can_load` and :meth:`load`.
    """

    #: Identifier used by ``--format`` flags and reports.
    name = "?"
    #: File suffixes conventionally used by the format.
    suffixes = ()

    def matches_suffix(self, path):
        """Whether ``path`` carries one of the format's suffixes."""
        name = str(path)
        if name.endswith(".gz") or name.endswith(".bz2") \
                or name.endswith(".xz"):
            name = name.rsplit(".", 1)[0]
        return any(name.endswith(suffix) for suffix in self.suffixes)

    def can_load(self, path, head):
        """Whether this source recognizes the file.

        ``head`` holds the first bytes of the (decompressed) file; a
        source must only claim files it can actually parse, since the
        first claimant wins.
        """
        raise NotImplementedError

    def load(self, path, columnar=False):
        """Parse the file into a trace store."""
        raise NotImplementedError


def _read_head(path, size=4096):
    """The first ``size`` decompressed bytes of a file."""
    from ..compression import open_trace_file
    try:
        with open_trace_file(str(path)) as handle:
            return handle.read(size)
    except OSError as error:
        raise FormatError("cannot read {}: {}".format(path, error))


def detect_source(path):
    """The first registered source claiming ``path``.

    Raises :class:`~repro.trace_format.format.FormatError` when no
    source recognizes the file — ambiguity is resolved by probe
    order, never by guessing.
    """
    head = _read_head(path)
    for source in _SOURCES:
        if source.can_load(path, head):
            return source
    raise FormatError(
        "no registered trace source recognizes {!r} (tried: {})".format(
            str(path),
            ", ".join(source.name for source in _SOURCES)))


def ingest_trace(path, columnar=False, source=None):
    """Load a trace file of any registered format.

    ``source`` forces a format by name (bypassing detection);
    ``columnar=True`` returns the
    :class:`~repro.core.columnar.ColumnarTrace` store.  Raises
    :class:`~repro.trace_format.format.FormatError` for unrecognized
    files or unknown source names.
    """
    if source is not None:
        for candidate in _SOURCES:
            if candidate.name == source:
                return candidate.load(path, columnar=columnar)
        raise FormatError("unknown trace source {!r} (known: {})".format(
            source, ", ".join(entry.name for entry in _SOURCES)))
    return detect_source(path).load(path, columnar=columnar)


@register_source
class NativeTraceSource(TraceSource):
    """The repository's own binary format (``AFTM`` magic)."""

    name = "native"
    suffixes = (".ost",)

    def can_load(self, path, head):
        """Claim files opening with the native magic bytes."""
        return head[:len(MAGIC)] == MAGIC

    def load(self, path, columnar=False):
        """Defer to :func:`repro.trace_format.reader.read_trace`
        (which also handles the ``.ostc`` sidecar cache)."""
        from ..reader import read_trace
        return read_trace(str(path), columnar=columnar)


@register_source
class ParaverTraceSource(TraceSource):
    """Textual Paraver ``.prv`` traces (BSC tool family)."""

    name = "paraver"
    suffixes = (".prv",)

    def can_load(self, path, head):
        """Claim files opening with a ``#Paraver`` header line."""
        return head[:len(b"#Paraver")] == b"#Paraver"

    def load(self, path, columnar=False):
        """Defer to :func:`repro.trace_format.paraver.import_paraver`."""
        from ..paraver import import_paraver
        return import_paraver(str(path), columnar=columnar)


@register_source
class ChromeTraceSource(TraceSource):
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto)."""

    name = "chrome"
    suffixes = (".json",)

    def can_load(self, path, head):
        """Claim JSON files that plausibly hold a trace-event
        document: an object with a ``traceEvents`` key, or a bare
        event array."""
        stripped = head.lstrip()
        if stripped.startswith(b"{"):
            return b'"traceEvents"' in head
        return stripped.startswith(b"[") and self.matches_suffix(path)

    def load(self, path, columnar=False):
        """Defer to :func:`repro.trace_format.chrome.import_chrome`."""
        from ..chrome import import_chrome
        return import_chrome(str(path), columnar=columnar)
