"""Format-plural trace ingestion (see :mod:`.registry`)."""

from .registry import (ChromeTraceSource, NativeTraceSource,
                       ParaverTraceSource, TraceSource, detect_source,
                       ingest_trace, register_source,
                       registered_sources)

__all__ = ["ChromeTraceSource", "NativeTraceSource",
           "ParaverTraceSource", "TraceSource", "detect_source",
           "ingest_trace", "register_source", "registered_sources"]
