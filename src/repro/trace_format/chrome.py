"""Chrome trace-event JSON export and import.

The Chrome ``trace_event`` format (the JSON consumed by
``chrome://tracing`` / Perfetto) is the lingua franca of timeline
tooling, which makes it a natural second foreign format next to
Paraver: exporting lets any trace produced here be eyeballed in a
browser, importing lets the analyses run on timelines captured by
other tools.

Two fidelity levels share one file format:

* Traces written by :func:`export_chrome` carry an
  ``otherData.repro`` block with the machine topology and the static
  description tables, and use raw cycle timestamps.  They re-import
  **losslessly** — every record kind including memory accesses, so
  :func:`repro.core.columnar.traces_equal` holds exactly across the
  round trip.
* Foreign files (no ``repro`` block) follow Chrome conventions:
  microsecond ``ts`` floats (scaled to integer nanoseconds on import),
  ``X`` / ``B`` / ``E`` duration events mapped to task executions,
  ``C`` counter events to counter samples and instant events to
  annotation marks, with one core per distinct ``(pid, tid)`` pair.
"""

from __future__ import annotations

import gzip
import json

from ..core.events import (STATE_NAMES, CounterDescription,
                           DiscreteEventKind, RegionInfo, TaskTypeInfo,
                           TopologyInfo)
from .format import FormatError


def _open_text(path, mode):
    """Text handle honouring a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _type_names(trace):
    """type_id -> display name for the task types of a trace."""
    names = {info.type_id: info.name for info in trace.task_types}
    return names


def export_chrome(trace, path):
    """Write a trace as Chrome trace-event JSON (``.json``/``.json.gz``).

    Timestamps are raw cycles (the ``otherData.repro`` block marks the
    file as self-describing, so the importer skips the microsecond
    scaling Chrome tools assume).  Returns the number of events
    written.
    """
    events = []
    node_of = trace.topology.node_of_core
    kind_names = {int(kind): kind.name for kind in DiscreteEventKind}
    state_names = {int(state): name
                   for state, name in STATE_NAMES.items()}
    type_names = _type_names(trace)
    for core in range(trace.num_cores):
        columns = trace.states.columns
        for index in range(*trace.states.core_slice(core).indices(
                len(trace.states))):
            state = int(columns["state"][index])
            events.append({
                "ph": "X", "cat": "state",
                "name": state_names.get(state, "state_%d" % state),
                "pid": node_of(core), "tid": core,
                "ts": int(columns["start"][index]),
                "dur": int(columns["end"][index]
                           - columns["start"][index]),
                "args": {"state": state}})
        columns = trace.tasks.columns
        for index in range(*trace.tasks.core_slice(core).indices(
                len(trace.tasks))):
            type_id = int(columns["type_id"][index])
            events.append({
                "ph": "X", "cat": "task",
                "name": type_names.get(type_id, "type_%d" % type_id),
                "pid": node_of(core), "tid": core,
                "ts": int(columns["start"][index]),
                "dur": int(columns["end"][index]
                           - columns["start"][index]),
                "args": {"task_id": int(columns["task_id"][index]),
                         "type_id": type_id}})
        columns = trace.discrete.columns
        for index in range(*trace.discrete.core_slice(core).indices(
                len(trace.discrete))):
            kind = int(columns["kind"][index])
            events.append({
                "ph": "i", "cat": "discrete",
                "name": kind_names.get(kind, "event_%d" % kind),
                "pid": node_of(core), "tid": core,
                "ts": int(columns["timestamp"][index]), "s": "t",
                "args": {"kind": kind,
                         "payload": int(columns["payload"][index])}})
        for (counter_core, counter_id) in sorted(trace.counter_series):
            if counter_core != core:
                continue
            name = trace.counter_descriptions[counter_id].name \
                if counter_id < len(trace.counter_descriptions) \
                else "counter_%d" % counter_id
            timestamps, values = trace.counter_samples(core, counter_id)
            for index in range(len(timestamps)):
                events.append({
                    "ph": "C", "cat": "counter", "name": name,
                    "pid": node_of(core), "tid": core,
                    "ts": int(timestamps[index]),
                    "args": {"value": float(values[index]),
                             "counter_id": counter_id}})
    comm = trace.comm
    for index in range(len(comm["timestamp"])):
        src = int(comm["src_core"][index])
        events.append({
            "ph": "i", "cat": "comm", "name": "comm",
            "pid": node_of(src), "tid": src,
            "ts": int(comm["timestamp"][index]), "s": "t",
            "args": {"src_core": src,
                     "dst_core": int(comm["dst_core"][index]),
                     "size": int(comm["size"][index]),
                     "task_id": int(comm["task_id"][index])}})
    accesses = trace.accesses
    for index in range(len(accesses["timestamp"])):
        core = int(accesses["core"][index])
        events.append({
            "ph": "i", "cat": "mem", "name": "access",
            "pid": node_of(core), "tid": core,
            "ts": int(accesses["timestamp"][index]), "s": "t",
            "args": {"task_id": int(accesses["task_id"][index]),
                     "address": int(accesses["address"][index]),
                     "size": int(accesses["size"][index]),
                     "is_write": int(accesses["is_write"][index])}})
    events.sort(key=lambda event: (event["ts"], event["tid"]))
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"repro": {
            "topology": {"num_nodes": trace.topology.num_nodes,
                         "cores_per_node":
                             trace.topology.cores_per_node,
                         "name": trace.topology.name},
            "counter_descriptions": [
                {"counter_id": d.counter_id, "name": d.name,
                 "monotone": d.monotone}
                for d in trace.counter_descriptions],
            "task_types": [
                {"type_id": t.type_id, "name": t.name,
                 "address": t.address, "source_file": t.source_file,
                 "source_line": t.source_line}
                for t in trace.task_types],
            "regions": [
                {"region_id": r.region_id, "address": r.address,
                 "size": r.size, "page_nodes": list(r.page_nodes),
                 "name": r.name}
                for r in trace.regions],
        }},
    }
    with _open_text(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(events)


def _load_document(path):
    """The parsed JSON document ({"traceEvents": [...]}-normalized)."""
    try:
        with _open_text(path, "r") as handle:
            document = json.load(handle)
    except ValueError as error:
        raise FormatError("not a Chrome trace: {}".format(error))
    if isinstance(document, list):
        document = {"traceEvents": document}
    if not isinstance(document, dict) \
            or not isinstance(document.get("traceEvents"), list):
        raise FormatError("not a Chrome trace (no traceEvents array)")
    return document


def _install_metadata(builder, repro):
    """Apply an ``otherData.repro`` block to a builder; returns the
    :class:`TopologyInfo` it names."""
    for entry in repro.get("counter_descriptions", ()):
        builder.counter_descriptions.append(CounterDescription(
            counter_id=int(entry["counter_id"]), name=entry["name"],
            monotone=bool(entry.get("monotone", True))))
    for entry in repro.get("task_types", ()):
        builder.describe_task_type(TaskTypeInfo(
            type_id=int(entry["type_id"]), name=entry["name"],
            address=int(entry.get("address", 0)),
            source_file=entry.get("source_file", ""),
            source_line=int(entry.get("source_line", 0))))
    for entry in repro.get("regions", ()):
        builder.describe_region(RegionInfo(
            region_id=int(entry["region_id"]),
            address=int(entry["address"]), size=int(entry["size"]),
            page_nodes=tuple(int(node)
                             for node in entry.get("page_nodes", ())),
            name=entry.get("name", "")))
    shape = repro["topology"]
    return TopologyInfo(num_nodes=int(shape["num_nodes"]),
                        cores_per_node=int(shape["cores_per_node"]),
                        name=shape.get("name", "machine"))


def _import_native(builder, events):
    """Replay self-describing (cycle-timestamped) events."""
    for event in events:
        phase = event.get("ph")
        args = event.get("args", {})
        core = int(event.get("tid", 0))
        time = int(event["ts"])
        category = event.get("cat", "")
        if phase == "X" and category == "state":
            builder.state_interval(core, int(args["state"]), time,
                                   time + int(event.get("dur", 0)))
        elif phase == "X" and category == "task":
            builder.task_execution(int(args["task_id"]),
                                   int(args["type_id"]), core, time,
                                   time + int(event.get("dur", 0)))
        elif phase == "C":
            builder.counter_sample(core, int(args["counter_id"]), time,
                                   float(args["value"]))
        elif phase == "i" and category == "discrete":
            builder.discrete_event(core, int(args["kind"]), time,
                                   int(args.get("payload", 0)))
        elif phase == "i" and category == "comm":
            builder.comm_event(int(args["src_core"]),
                               int(args["dst_core"]), time,
                               size=int(args.get("size", 0)),
                               task_id=int(args.get("task_id", -1)))
        elif phase == "i" and category == "mem":
            builder.memory_access(int(args["task_id"]), core,
                                  int(args["address"]),
                                  int(args["size"]),
                                  bool(args.get("is_write", 0)), time)


def _import_foreign(builder, events):
    """Replay Chrome-convention events (microsecond timestamps).

    Each distinct ``(pid, tid)`` pair becomes one core; ``X`` and
    paired ``B``/``E`` events become task executions (one task type
    per distinct name), ``C`` events counter samples (one counter per
    name, non-monotone) and instant events annotation marks.  Returns
    the number of cores seen.
    """
    lanes = {}

    def core_of(event):
        key = (event.get("pid", 0), event.get("tid", 0))
        return lanes.setdefault(key, len(lanes))

    type_ids = {}

    def type_of(name):
        if name not in type_ids:
            type_ids[name] = len(type_ids)
            builder.describe_task_type(TaskTypeInfo(
                type_id=type_ids[name], name=name))
        return type_ids[name]

    counter_ids = {}
    open_spans = {}
    next_task_id = [0]

    def add_task(core, name, start, end):
        builder.task_execution(next_task_id[0], type_of(name), core,
                               start, end)
        next_task_id[0] += 1

    for event in events:
        phase = event.get("ph")
        if phase == "M" or "ts" not in event:
            continue
        core = core_of(event)
        time = int(round(float(event["ts"]) * 1000.0))
        name = str(event.get("name", ""))
        if phase == "X":
            duration = int(round(float(event.get("dur", 0)) * 1000.0))
            add_task(core, name, time, time + duration)
        elif phase == "B":
            open_spans.setdefault(core, []).append((name, time))
        elif phase == "E":
            stack = open_spans.get(core)
            if stack:
                begin_name, begin = stack.pop()
                add_task(core, begin_name, begin, time)
        elif phase == "C":
            args = event.get("args", {})
            for key, value in sorted(args.items()):
                if not isinstance(value, (int, float)):
                    continue
                label = "{}:{}".format(name, key) if len(args) > 1 \
                    else name
                if label not in counter_ids:
                    counter_ids[label] = builder.describe_counter(
                        label, monotone=False)
                builder.counter_sample(core, counter_ids[label], time,
                                       float(value))
        elif phase in ("i", "I", "R"):
            builder.discrete_event(core,
                                   int(DiscreteEventKind.ANNOTATION),
                                   time, 0)
    return max(len(lanes), 1)


def import_chrome(path, columnar=False):
    """Load a Chrome trace-event JSON file into a trace store.

    Files produced by :func:`export_chrome` round-trip exactly
    (``columnar=True`` returns the
    :class:`~repro.core.columnar.ColumnarTrace`); foreign files are
    normalized per the module docstring.
    """
    document = _load_document(path)
    repro = (document.get("otherData") or {}).get("repro")
    if columnar:
        from ..core.columnar import ColumnarBuilder
        builder = ColumnarBuilder()
    else:
        from ..core.trace import TraceBuilder
        builder = TraceBuilder(None)
    events = document["traceEvents"]
    if repro is not None:
        topology = _install_metadata(builder, repro)
        _import_native(builder, events)
    else:
        cores = _import_foreign(builder, events)
        topology = TopologyInfo(num_nodes=1, cores_per_node=cores,
                                name="chrome")
    builder.topology = topology
    return builder.build()
