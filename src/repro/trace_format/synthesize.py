"""Synthetic trace *files* for out-of-core tests and benchmarks.

The workload generators in :mod:`repro.workloads` build task graphs
that must be simulated to yield a trace — far too slow to produce the
multi-million-event files the out-of-core engine is designed for.
This module writes plausible trace files directly through the record
writer: per-core monotone clocks, a realistic record mix (state
intervals, task executions, counter samples, discrete/communication
events, memory accesses) and the usual static preamble.  Generation is
deterministic in ``seed`` and costs a few microseconds per event, so
"≥ 1M events" is a cheap fixture rather than a simulation campaign.
"""

from __future__ import annotations

import random

from ..core.events import (CounterDescription, RegionInfo, TaskTypeInfo,
                           TopologyInfo, WorkerState)
from .compression import codec_for_path, open_trace_file
from .writer import DEFAULT_CHUNK_RECORDS, IndexedTraceWriter, TraceWriter

_STATES = (WorkerState.RUNNING, WorkerState.RUNNING, WorkerState.RUNNING,
           WorkerState.IDLE, WorkerState.CREATE, WorkerState.STEAL)


def write_synthetic_trace(path, events=1_000_000, nodes=4,
                          cores_per_node=4, task_types=8, seed=0,
                          index="auto",
                          chunk_records=DEFAULT_CHUNK_RECORDS,
                          faults=None):
    """Write a synthetic trace of ``events`` event records to ``path``.

    Events are spread round-robin over ``nodes * cores_per_node`` cores,
    each with its own monotone clock (the format's only ordering
    requirement).  Roughly half the records are state intervals, a
    third task executions, and the rest counter samples, discrete
    events, communication events and memory accesses.  Returns the
    total number of records written (events plus static preamble).

    ``index`` is forwarded to the writer selection: ``"auto"`` indexes
    exactly when ``path`` is uncompressed, so the same generator serves
    both the seekable and the fallback code paths.

    ``faults`` optionally plants a
    :class:`repro.runtime.faults.FaultInjectionConfig`: every event
    duration on a faulted core is stretched through
    ``scaled_duration``, so synthetic files too can carry
    known-planted stragglers and throttle windows.  ``None`` (and the
    identity config) keeps the output bit-identical to earlier
    versions.
    """
    if events < 0:
        raise ValueError("events must be non-negative")
    num_cores = nodes * cores_per_node
    rng = random.Random(seed)
    # Precomputed pseudo-random tables keep the per-event loop cheap.
    durations = [rng.randrange(200, 20_000) for __ in range(509)]
    gaps = [rng.randrange(0, 500) for __ in range(253)]
    sizes = [rng.choice((64, 512, 4096, 65536)) for __ in range(127)]
    if index == "auto":
        index = codec_for_path(path) is None
    with open_trace_file(path, "wb") as stream:
        if index:
            writer = IndexedTraceWriter(stream,
                                        chunk_records=chunk_records)
        else:
            writer = TraceWriter(stream)
        writer.topology(TopologyInfo(num_nodes=nodes,
                                     cores_per_node=cores_per_node,
                                     name="synthetic"))
        writer.counter_description(CounterDescription(
            counter_id=0, name="cycles", monotone=True))
        writer.counter_description(CounterDescription(
            counter_id=1, name="llc_misses", monotone=True))
        for type_id in range(task_types):
            writer.task_type(TaskTypeInfo(
                type_id=type_id, name="synth_{}".format(type_id),
                address=0x400000 + 64 * type_id,
                source_file="synthetic.c", source_line=10 + type_id))
        region_size = 1 << 20
        writer.region(RegionInfo(
            region_id=0, address=0x10000000, size=region_size,
            page_nodes=tuple(page % nodes
                             for page in range(region_size // 4096)),
            name="synthetic_heap"))
        clocks = [0] * num_cores
        task_id = 0
        for i in range(events):
            core = i % num_cores
            t = clocks[core]
            duration = durations[i % 509]
            if faults is not None:
                duration = faults.scaled_duration(core, t, duration)
            kind = i % 12
            if kind < 6:
                writer.state_interval(core, int(_STATES[kind]), t,
                                      t + duration)
            elif kind < 10:
                writer.task_execution(task_id, i % task_types, core, t,
                                      t + duration)
                task_id += 1
            elif kind == 10:
                writer.counter_sample(core, i % 2, t,
                                      float(t + duration))
            else:
                sub = (i // 12) % 3
                if sub == 0:
                    writer.discrete_event(core, 0, t, i)
                elif sub == 1:
                    writer.comm_event(core, (core + 1) % num_cores, t,
                                     sizes[i % 127], task_id)
                else:
                    writer.memory_access(task_id, core,
                                         0x10000000
                                         + (i * 4096) % region_size,
                                         sizes[i % 127], i % 2 == 0, t)
            clocks[core] = t + duration + gaps[i % 253]
        return writer.finish()
