"""Binary trace format: record tags and encodings (Section VI-A).

Aftermath traces are organized as streams of data structures: events
(state changes, hardware counters, communication and discrete events),
topological information about the machine, counter descriptions and the
NUMA placement of memory regions.  Design properties reproduced here:

* records may appear in *any order* — only the per-core timestamp order
  of events must hold, so workers can flush buffers independently
  without a global sort at collection time;
* the format is *incremental*: any record type may be missing, and
  analyses degrade gracefully (no accesses -> no locality views);
* redundancy is minimized: region placement is stored once per region,
  not per access;
* data is binary, and files may be compressed (the reproduction uses
  the gzip/bzip2/xz codecs from the standard library, standing in for
  the external tools the paper pipes through).

Every record is a fixed header byte (the record tag) followed by a
struct-packed payload; variable-size fields (strings, page arrays) are
length-prefixed.
"""

from __future__ import annotations

import enum
import struct

MAGIC = b"AFTM"
VERSION = 1

HEADER = struct.Struct("<4sI")


class RecordTag(enum.IntEnum):
    """One tag per trace data structure."""

    TOPOLOGY = 1
    COUNTER_DESCRIPTION = 2
    TASK_TYPE = 3
    REGION = 4
    STATE_INTERVAL = 5
    TASK_EXECUTION = 6
    COUNTER_SAMPLE = 7
    DISCRETE_EVENT = 8
    COMM_EVENT = 9
    MEMORY_ACCESS = 10
    CHUNK_INDEX = 11
    CHUNK_INDEX_V2 = 12


TAG = struct.Struct("<B")

# Fixed payloads (strings / arrays handled separately).
TOPOLOGY = struct.Struct("<II")                 # nodes, cores per node
COUNTER_DESCRIPTION = struct.Struct("<IB")      # id, monotone
TASK_TYPE = struct.Struct("<IQI")               # id, address, line
REGION = struct.Struct("<IQQI")                 # id, address, size, pages
STATE_INTERVAL = struct.Struct("<IIqq")         # core, state, start, end
TASK_EXECUTION = struct.Struct("<qIIqq")        # task, type, core, t0, t1
COUNTER_SAMPLE = struct.Struct("<IIqd")         # core, counter, t, value
DISCRETE_EVENT = struct.Struct("<IIqq")         # core, kind, t, payload
COMM_EVENT = struct.Struct("<IIqqq")            # src, dst, t, size, task
MEMORY_ACCESS = struct.Struct("<qIqqBq")        # task, core, addr, size,
                                                # is_write, t
STRING_LENGTH = struct.Struct("<H")
PAGE_NODE = struct.Struct("<i")

# --- seekable chunk index (optional footer) ---------------------------------
#
# An indexed trace appends one CHUNK_INDEX record after the last data
# record: a directory of per-core time-range -> file-offset entries that
# lets readers seek directly to the chunks overlapping a time window
# instead of scanning the whole file.  A fixed-size trailer terminates
# the file so the directory can be found by seeking from the end; files
# without the trailer (older traces, or compressed streams, which are
# not seekable) simply fall back to a full scan.

INDEX_MAGIC = b"AFTMIDX1"

# Per-chunk directory entry: byte offset of the first record, byte
# length of the chunk, inclusive time range [t_min, t_max] of its
# events, number of records, originating core (-1 when mixed) and a
# flags byte.
CHUNK_ENTRY = struct.Struct("<QQqqIiB")
INDEX_HEADER = struct.Struct("<I")          # number of entries
INDEX_TRAILER = struct.Struct("<Q8s")       # offset of the index, magic

# --- version-2 index: per-chunk CRC32 ---------------------------------------
#
# The v2 footer (CHUNK_INDEX_V2 tag, AFTMIDX2 trailer magic) carries a
# CRC32 of every chunk's bytes and of the preamble, so readers detect
# a flipped bit or a truncated chunk *before* mis-parsing it, and the
# salvage path can recover the complete verified prefix of a damaged
# trace.  v1 files (and files written with ``crc=False``) keep their
# old footer and stay readable — the directory layout only differs in
# the trailer magic and the per-entry trailing CRC word.

INDEX_MAGIC_V2 = b"AFTMIDX2"

#: v2 entry: the v1 fields plus the chunk's CRC32.
CHUNK_ENTRY_V2 = struct.Struct("<QQqqIiBI")
#: v2 header: number of entries, CRC32 of the preamble bytes.
INDEX_HEADER_V2 = struct.Struct("<II")

#: Flag: the chunk contains static records (topology, descriptions);
#: readers must visit it regardless of the requested time window.
CHUNK_HAS_STATIC = 0x01

MIXED_CORES = -1


def pack_string(text):
    """Encode ``text`` as a length-prefixed UTF-8 string field."""
    data = text.encode("utf-8")[:0xFFFF]
    return STRING_LENGTH.pack(len(data)) + data


class FormatError(ValueError):
    """Raised on malformed trace files."""


class CorruptChunkError(FormatError):
    """A chunk failed its CRC check or could not be read in full.

    Carries enough context (``offset``, ``expected``/``actual`` CRC)
    for the salvage path to report what was dropped."""

    def __init__(self, message, offset=None, expected=None, actual=None):
        super().__init__(message)
        self.offset = offset
        self.expected = expected
        self.actual = actual
