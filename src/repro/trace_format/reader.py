"""Trace file reader.

Streams records from a (possibly compressed) trace file into a
:class:`repro.core.trace.TraceBuilder`.  Structures may appear in any
order; unknown record types raise a :class:`FormatError` (the format is
versioned, so unknown tags indicate corruption rather than extensions).

The reader implements the format's *incremental* philosophy: a trace
that lacks memory accesses still loads and supports duration- and
counter-based analyses; a trace without counter samples still renders
every timeline mode (Section VI-A).
"""

from __future__ import annotations

from ..core.events import (CounterDescription, RegionInfo, TaskTypeInfo,
                           TopologyInfo)
from ..core.trace import TraceBuilder
from . import format as fmt
from .compression import open_trace_file


class _Stream:
    """Buffered exact-size reads with EOF detection."""

    def __init__(self, stream):
        self.stream = stream

    def exactly(self, count):
        data = self.stream.read(count)
        if len(data) != count:
            raise fmt.FormatError("truncated trace file")
        return data

    def maybe_byte(self):
        data = self.stream.read(1)
        return data if data else None

    def string(self):
        (length,) = fmt.STRING_LENGTH.unpack(
            self.exactly(fmt.STRING_LENGTH.size))
        return self.exactly(length).decode("utf-8")


def read_trace(path):
    """Load a trace file and return the indexed :class:`Trace`."""
    with open_trace_file(path, "rb") as raw:
        return read_trace_stream(raw)


def read_trace_stream(raw):
    stream = _Stream(raw)
    magic, version = fmt.HEADER.unpack(stream.exactly(fmt.HEADER.size))
    if magic != fmt.MAGIC:
        raise fmt.FormatError("not an Aftermath trace (bad magic)")
    if version != fmt.VERSION:
        raise fmt.FormatError(
            "unsupported trace version {}".format(version))
    topology = None
    counters = []
    task_types = []
    regions = []
    events = []
    while True:
        tag_byte = stream.maybe_byte()
        if tag_byte is None:
            break
        (tag,) = fmt.TAG.unpack(tag_byte)
        if tag == fmt.RecordTag.TOPOLOGY:
            nodes, per_node = fmt.TOPOLOGY.unpack(
                stream.exactly(fmt.TOPOLOGY.size))
            name = stream.string()
            topology = TopologyInfo(num_nodes=nodes,
                                    cores_per_node=per_node, name=name)
        elif tag == fmt.RecordTag.COUNTER_DESCRIPTION:
            counter_id, monotone = fmt.COUNTER_DESCRIPTION.unpack(
                stream.exactly(fmt.COUNTER_DESCRIPTION.size))
            counters.append(CounterDescription(
                counter_id=counter_id, name=stream.string(),
                monotone=bool(monotone)))
        elif tag == fmt.RecordTag.TASK_TYPE:
            type_id, address, line = fmt.TASK_TYPE.unpack(
                stream.exactly(fmt.TASK_TYPE.size))
            name = stream.string()
            source = stream.string()
            task_types.append(TaskTypeInfo(
                type_id=type_id, name=name, address=address,
                source_file=source, source_line=line))
        elif tag == fmt.RecordTag.REGION:
            region_id, address, size, pages = fmt.REGION.unpack(
                stream.exactly(fmt.REGION.size))
            nodes = tuple(
                fmt.PAGE_NODE.unpack(stream.exactly(fmt.PAGE_NODE.size))[0]
                for __ in range(pages))
            name = stream.string()
            regions.append(RegionInfo(region_id=region_id, address=address,
                                      size=size, page_nodes=nodes,
                                      name=name))
        elif tag in _EVENT_DECODERS:
            structure, record = _EVENT_DECODERS[tag]
            events.append((record,
                           structure.unpack(stream.exactly(structure.size))))
        else:
            raise fmt.FormatError("unknown record tag {}".format(tag))
    if topology is None:
        raise fmt.FormatError("trace has no topology record")
    builder = TraceBuilder(topology)
    for description in counters:
        # Preserve the ids stored in the file.
        while len(builder.counter_descriptions) < description.counter_id:
            builder.describe_counter("__unused_{}".format(
                len(builder.counter_descriptions)))
        builder.counter_descriptions.append(description)
    for info in task_types:
        builder.describe_task_type(info)
    for info in regions:
        builder.describe_region(info)
    for record, fields in events:
        getattr(builder, record)(*fields)
    return builder.build()


_EVENT_DECODERS = {
    fmt.RecordTag.STATE_INTERVAL: (fmt.STATE_INTERVAL, "state_interval"),
    fmt.RecordTag.TASK_EXECUTION: (fmt.TASK_EXECUTION, "task_execution"),
    fmt.RecordTag.COUNTER_SAMPLE: (fmt.COUNTER_SAMPLE, "counter_sample"),
    fmt.RecordTag.DISCRETE_EVENT: (fmt.DISCRETE_EVENT, "discrete_event"),
    fmt.RecordTag.COMM_EVENT: (fmt.COMM_EVENT, "comm_event"),
    fmt.RecordTag.MEMORY_ACCESS: (fmt.MEMORY_ACCESS, "memory_access"),
}
