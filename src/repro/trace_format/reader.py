"""Trace file reader.

Streams records from a (possibly compressed) trace file into a
:class:`repro.core.trace.TraceBuilder`.  Structures may appear in any
order; unknown record types raise a :class:`FormatError` (the format is
versioned, so unknown tags indicate corruption rather than extensions).

The reader implements the format's *incremental* philosophy: a trace
that lacks memory accesses still loads and supports duration- and
counter-based analyses; a trace without counter samples still renders
every timeline mode (Section VI-A).

The record-parsing loop lives in :func:`parse_records` and is shared by
the full-file readers here, the constant-memory iterators in
:mod:`repro.trace_format.streaming` and the seek-to-window readers in
:mod:`repro.trace_format.chunked`.  A chunk-index footer (written by
:class:`repro.trace_format.writer.IndexedTraceWriter`) is recognized
and skipped transparently, so indexed files stay readable by every
sequential-scan code path.
"""

from __future__ import annotations

from ..core.events import (CounterDescription, RegionInfo, TaskTypeInfo,
                           TopologyInfo)
from ..core.trace import TraceBuilder
from . import format as fmt
from .compression import open_trace_file


class _Stream:
    """Buffered exact-size reads with EOF detection."""

    def __init__(self, stream):
        self.stream = stream

    def exactly(self, count):
        data = self.stream.read(count)
        if len(data) != count:
            raise fmt.FormatError("truncated trace file")
        return data

    def maybe_byte(self):
        data = self.stream.read(1)
        return data if data else None

    def string(self):
        (length,) = fmt.STRING_LENGTH.unpack(
            self.exactly(fmt.STRING_LENGTH.size))
        return self.exactly(length).decode("utf-8")


def check_header(stream):
    """Consume and validate the file header of a :class:`_Stream`."""
    magic, version = fmt.HEADER.unpack(stream.exactly(fmt.HEADER.size))
    if magic != fmt.MAGIC:
        raise fmt.FormatError("not an Aftermath trace (bad magic)")
    if version != fmt.VERSION:
        raise fmt.FormatError(
            "unsupported trace version {}".format(version))


def parse_records(stream):
    """Yield ``(kind, fields)`` for every record until EOF.

    ``stream`` is a :class:`_Stream` positioned after the file header
    (or at the start of a chunk).  ``kind`` is the builder method name
    for events (for example ``"state_interval"``) or ``"topology"`` /
    ``"counter_description"`` / ``"task_type"`` / ``"region"`` for
    static records, whose ``fields`` are the corresponding dataclasses.
    A chunk-index footer is validated and skipped, never yielded.
    """
    while True:
        tag_byte = stream.maybe_byte()
        if tag_byte is None:
            return
        (tag,) = fmt.TAG.unpack(tag_byte)
        if tag == fmt.RecordTag.TOPOLOGY:
            nodes, per_node = fmt.TOPOLOGY.unpack(
                stream.exactly(fmt.TOPOLOGY.size))
            yield "topology", TopologyInfo(
                num_nodes=nodes, cores_per_node=per_node,
                name=stream.string())
        elif tag == fmt.RecordTag.COUNTER_DESCRIPTION:
            counter_id, monotone = fmt.COUNTER_DESCRIPTION.unpack(
                stream.exactly(fmt.COUNTER_DESCRIPTION.size))
            yield "counter_description", CounterDescription(
                counter_id=counter_id, name=stream.string(),
                monotone=bool(monotone))
        elif tag == fmt.RecordTag.TASK_TYPE:
            type_id, address, line = fmt.TASK_TYPE.unpack(
                stream.exactly(fmt.TASK_TYPE.size))
            name = stream.string()
            source = stream.string()
            yield "task_type", TaskTypeInfo(
                type_id=type_id, name=name, address=address,
                source_file=source, source_line=line)
        elif tag == fmt.RecordTag.REGION:
            region_id, address, size, pages = fmt.REGION.unpack(
                stream.exactly(fmt.REGION.size))
            nodes = tuple(fmt.PAGE_NODE.unpack(
                stream.exactly(fmt.PAGE_NODE.size))[0]
                for __ in range(pages))
            yield "region", RegionInfo(
                region_id=region_id, address=address, size=size,
                page_nodes=nodes, name=stream.string())
        elif tag in (fmt.RecordTag.CHUNK_INDEX,
                     fmt.RecordTag.CHUNK_INDEX_V2):
            _skip_chunk_index(stream, tag == fmt.RecordTag.CHUNK_INDEX_V2)
        elif tag in _EVENT_DECODERS:
            structure, record = _EVENT_DECODERS[tag]
            yield record, structure.unpack(
                stream.exactly(structure.size))
        else:
            raise fmt.FormatError("unknown record tag {}".format(tag))


def _skip_chunk_index(stream, v2=False):
    """Consume a chunk-index footer (entries plus trailer) during a
    sequential scan.  The directory is only useful through the seeking
    readers in :mod:`repro.trace_format.chunked`."""
    if v2:
        count, __ = fmt.INDEX_HEADER_V2.unpack(
            stream.exactly(fmt.INDEX_HEADER_V2.size))
        stream.exactly(count * fmt.CHUNK_ENTRY_V2.size)
        expected_magic = fmt.INDEX_MAGIC_V2
    else:
        (count,) = fmt.INDEX_HEADER.unpack(
            stream.exactly(fmt.INDEX_HEADER.size))
        stream.exactly(count * fmt.CHUNK_ENTRY.size)
        expected_magic = fmt.INDEX_MAGIC
    __, magic = fmt.INDEX_TRAILER.unpack(
        stream.exactly(fmt.INDEX_TRAILER.size))
    if magic != expected_magic:
        raise fmt.FormatError("corrupt chunk-index trailer")


def read_trace(path, columnar=False, cache=None):
    """Load a trace file and return the indexed trace.

    ``columnar=False`` (the default) returns the object-model
    :class:`~repro.core.trace.Trace`.  ``columnar=True`` returns the
    per-core structured-array
    :class:`~repro.core.columnar.ColumnarTrace`, filling the arrays
    directly while parsing — no per-event objects, and no whole-file
    record buffering.

    ``cache`` enables the memory-mapped columnar sidecar
    (:mod:`repro.trace_format.cache`): ``True`` uses the conventional
    ``.ostc`` path next to the trace, a string/path names it
    explicitly.  A fresh sidecar is mapped back in milliseconds
    (no parsing; pages load lazily); a missing, stale or corrupt one
    triggers a single parse that writes the sidecar through for the
    next open.  With ``cache`` set the result is always the columnar
    store.
    """
    if cache:
        from .cache import (CacheError, default_cache_path,
                            load_cache, source_stamp, write_cache)
        cache_path = (default_cache_path(path) if cache is True
                      else str(cache))
        try:
            return load_cache(cache_path, source_path=path)
        except (OSError, CacheError):
            pass
        # Stamp the source *before* the (slow) parse: if the trace file
        # changes while parsing, the sidecar must come out stale, not
        # freshly stamped over wrong data.
        stamp = source_stamp(path)
        trace = read_trace(path, columnar=True)
        try:
            write_cache(trace, cache_path, source_stamp=stamp)
        except OSError:
            pass            # unwritable location: serve the parse
        return trace
    with open_trace_file(path, "rb") as raw:
        return read_trace_stream(raw, columnar=columnar)


def register_counter_description(builder, description):
    """Install a :class:`CounterDescription` on a builder, preserving
    the id stored in the file (padding any gaps with placeholders)."""
    while len(builder.counter_descriptions) < description.counter_id:
        builder.describe_counter("__unused_{}".format(
            len(builder.counter_descriptions)))
    builder.counter_descriptions.append(description)


def read_trace_stream(raw, columnar=False):
    """Load a trace from an open binary stream (header included)."""
    stream = _Stream(raw)
    check_header(stream)
    return build_trace(parse_records(stream), columnar=columnar)


def build_trace(records, columnar=False):
    """Fold an iterable of ``(kind, fields)`` pairs — the shape
    :func:`parse_records` yields — into a trace store.

    Shared by the full-file readers and the corruption-salvage path
    (:func:`repro.trace_format.chunked.salvage_trace`), which feeds
    only the verified prefix of a damaged file through the same
    builders.
    """
    if columnar:
        return _build_columnar(records)
    topology = None
    counters = []
    task_types = []
    regions = []
    events = []
    for kind, fields in records:
        if kind == "topology":
            topology = fields
        elif kind == "counter_description":
            counters.append(fields)
        elif kind == "task_type":
            task_types.append(fields)
        elif kind == "region":
            regions.append(fields)
        else:
            events.append((kind, fields))
    if topology is None:
        raise fmt.FormatError("trace has no topology record")
    builder = TraceBuilder(topology)
    for description in counters:
        register_counter_description(builder, description)
    for info in task_types:
        builder.describe_task_type(info)
    for info in regions:
        builder.describe_region(info)
    for record, fields in events:
        getattr(builder, record)(*fields)
    return builder.build()


def _build_columnar(records):
    """Fill a :class:`~repro.core.columnar.ColumnarBuilder` straight
    from the record stream.  The builder tolerates a topology arriving
    anywhere, so events append to their columns as they are parsed."""
    from ..core.columnar import ColumnarBuilder
    builder = ColumnarBuilder()
    for kind, fields in records:
        if kind == "topology":
            builder.set_topology(fields)
        elif kind == "counter_description":
            register_counter_description(builder, fields)
        elif kind == "task_type":
            builder.describe_task_type(fields)
        elif kind == "region":
            builder.describe_region(fields)
        else:
            getattr(builder, kind)(*fields)
    if builder.topology is None:
        raise fmt.FormatError("trace has no topology record")
    return builder.build()


_EVENT_DECODERS = {
    fmt.RecordTag.STATE_INTERVAL: (fmt.STATE_INTERVAL, "state_interval"),
    fmt.RecordTag.TASK_EXECUTION: (fmt.TASK_EXECUTION, "task_execution"),
    fmt.RecordTag.COUNTER_SAMPLE: (fmt.COUNTER_SAMPLE, "counter_sample"),
    fmt.RecordTag.DISCRETE_EVENT: (fmt.DISCRETE_EVENT, "discrete_event"),
    fmt.RecordTag.COMM_EVENT: (fmt.COMM_EVENT, "comm_event"),
    fmt.RecordTag.MEMORY_ACCESS: (fmt.MEMORY_ACCESS, "memory_access"),
}
