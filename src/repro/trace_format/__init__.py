"""Binary trace format with transparent compression (Section VI-A).

The out-of-core additions — seekable chunk index, chunk-granular
reading, synthetic trace files — are documented in
``docs/trace-format.md`` and ``docs/architecture.md``.
"""

from .cache import (CacheError, MappedPyramids, StaleCacheError,
                    default_cache_path, load_cache, write_cache)
from .chunked import (ChunkEntry, ChunkIndex, SalvageReport, ScanStats,
                      TraceVerification, read_chunk_index,
                      read_window_columnar, salvage_records,
                      salvage_trace, stream_window_records, verify_trace)
from .chrome import export_chrome, import_chrome
from .compression import codec_for_path, open_trace_file
from .format import (CorruptChunkError, FormatError, MAGIC, RecordTag,
                     VERSION)
from .ingest import (TraceSource, detect_source, ingest_trace,
                     register_source, registered_sources)
from .paraver import export_paraver, import_paraver
from .reader import read_trace, read_trace_stream
from .streaming import (StreamingStatistics, TaskHistogramAccumulator,
                        build_window, fold_records, split_time_window,
                        stream_records, streaming_state_summary,
                        streaming_statistics, streaming_task_histogram)
from .synthesize import write_synthetic_trace
from .writer import (DEFAULT_CHUNK_RECORDS, IndexedTraceWriter,
                     TraceWriter, write_trace)

__all__ = ["CacheError", "MappedPyramids", "StaleCacheError",
           "default_cache_path", "load_cache", "write_cache",
           "ChunkEntry", "ChunkIndex", "SalvageReport", "ScanStats",
           "TraceVerification", "read_chunk_index",
           "read_window_columnar", "salvage_records", "salvage_trace",
           "stream_window_records", "verify_trace",
           "codec_for_path", "open_trace_file",
           "CorruptChunkError", "FormatError", "MAGIC", "RecordTag",
           "VERSION",
           "TraceSource", "detect_source", "ingest_trace",
           "register_source", "registered_sources",
           "export_chrome", "import_chrome",
           "export_paraver", "import_paraver",
           "read_trace", "read_trace_stream",
           "StreamingStatistics", "TaskHistogramAccumulator",
           "build_window", "fold_records", "split_time_window",
           "stream_records", "streaming_state_summary",
           "streaming_statistics", "streaming_task_histogram",
           "write_synthetic_trace", "DEFAULT_CHUNK_RECORDS",
           "IndexedTraceWriter", "TraceWriter", "write_trace"]
