"""Binary trace format with transparent compression (Section VI-A)."""

from .compression import codec_for_path, open_trace_file
from .format import FormatError, MAGIC, RecordTag, VERSION
from .paraver import export_paraver
from .reader import read_trace, read_trace_stream
from .streaming import (StreamingStatistics, split_time_window,
                        stream_records, streaming_statistics,
                        streaming_task_histogram)
from .writer import TraceWriter, write_trace

__all__ = ["codec_for_path", "open_trace_file", "FormatError", "MAGIC",
           "RecordTag", "VERSION", "export_paraver", "read_trace",
           "read_trace_stream", "StreamingStatistics",
           "split_time_window", "stream_records",
           "streaming_statistics", "streaming_task_histogram",
           "TraceWriter", "write_trace"]
