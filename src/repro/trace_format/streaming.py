"""Out-of-core trace processing.

The paper's conclusion announces work on "the out-of-core processing
of large traces": Aftermath loads traces of several gigabytes into
memory, but larger ones need streaming.  This module processes a trace
file record-by-record through constant-memory accumulators, never
materializing the in-memory :class:`Trace`:

* :func:`stream_records` — iterate (record_kind, fields) pairs;
* :class:`StreamingStatistics` — one-pass per-state times, task
  counts/durations per type, counter extremes and time bounds;
* :func:`streaming_state_summary` / :func:`streaming_task_histogram` —
  the common statistics views computed out-of-core;
* :func:`split_time_window` — extract a time window of a huge trace
  into a small in-memory :class:`Trace` for interactive analysis.

Accumulators rely only on the format's ordering guarantee (per-core
timestamp order) and tolerate arbitrary record interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..core.events import (CounterDescription, RegionInfo, TaskTypeInfo,
                           TopologyInfo)
from ..core.trace import TraceBuilder
from . import format as fmt
from .compression import open_trace_file
from .reader import _EVENT_DECODERS, _Stream


def stream_records(path):
    """Yield ``(kind, fields)`` for every record of a trace file.

    ``kind`` is the builder method name for events (for example
    ``"state_interval"``) or ``"topology"`` / ``"counter_description"``
    / ``"task_type"`` / ``"region"`` for static records, whose
    ``fields`` are the corresponding dataclasses.  Memory use is
    constant regardless of the trace size.
    """
    with open_trace_file(path, "rb") as raw:
        stream = _Stream(raw)
        magic, version = fmt.HEADER.unpack(stream.exactly(
            fmt.HEADER.size))
        if magic != fmt.MAGIC:
            raise fmt.FormatError("not an Aftermath trace (bad magic)")
        if version != fmt.VERSION:
            raise fmt.FormatError("unsupported trace version {}"
                                  .format(version))
        while True:
            tag_byte = stream.maybe_byte()
            if tag_byte is None:
                return
            (tag,) = fmt.TAG.unpack(tag_byte)
            if tag == fmt.RecordTag.TOPOLOGY:
                nodes, per_node = fmt.TOPOLOGY.unpack(
                    stream.exactly(fmt.TOPOLOGY.size))
                yield "topology", TopologyInfo(
                    num_nodes=nodes, cores_per_node=per_node,
                    name=stream.string())
            elif tag == fmt.RecordTag.COUNTER_DESCRIPTION:
                counter_id, monotone = fmt.COUNTER_DESCRIPTION.unpack(
                    stream.exactly(fmt.COUNTER_DESCRIPTION.size))
                yield "counter_description", CounterDescription(
                    counter_id=counter_id, name=stream.string(),
                    monotone=bool(monotone))
            elif tag == fmt.RecordTag.TASK_TYPE:
                type_id, address, line = fmt.TASK_TYPE.unpack(
                    stream.exactly(fmt.TASK_TYPE.size))
                name = stream.string()
                source = stream.string()
                yield "task_type", TaskTypeInfo(
                    type_id=type_id, name=name, address=address,
                    source_file=source, source_line=line)
            elif tag == fmt.RecordTag.REGION:
                region_id, address, size, pages = fmt.REGION.unpack(
                    stream.exactly(fmt.REGION.size))
                nodes = tuple(fmt.PAGE_NODE.unpack(
                    stream.exactly(fmt.PAGE_NODE.size))[0]
                    for __ in range(pages))
                yield "region", RegionInfo(
                    region_id=region_id, address=address, size=size,
                    page_nodes=nodes, name=stream.string())
            elif tag in _EVENT_DECODERS:
                structure, record = _EVENT_DECODERS[tag]
                yield record, structure.unpack(
                    stream.exactly(structure.size))
            else:
                raise fmt.FormatError("unknown record tag {}"
                                      .format(tag))


@dataclass
class StreamingStatistics:
    """Constant-memory accumulator over one pass of a trace file."""

    topology: Optional[TopologyInfo] = None
    records: int = 0
    begin: Optional[int] = None
    end: Optional[int] = None
    state_cycles: Dict[int, int] = field(default_factory=dict)
    tasks_per_type: Dict[int, int] = field(default_factory=dict)
    duration_per_type: Dict[int, int] = field(default_factory=dict)
    counter_extremes: Dict[int, Tuple[float, float]] = \
        field(default_factory=dict)
    type_names: Dict[int, str] = field(default_factory=dict)
    memory_accesses: int = 0
    bytes_accessed: int = 0

    def _stretch(self, start, end):
        self.begin = start if self.begin is None else min(self.begin,
                                                          start)
        self.end = end if self.end is None else max(self.end, end)

    def consume(self, kind, fields):
        self.records += 1
        if kind == "topology":
            self.topology = fields
        elif kind == "task_type":
            self.type_names[fields.type_id] = fields.name
        elif kind == "state_interval":
            __, state, start, end = fields
            self.state_cycles[state] = (self.state_cycles.get(state, 0)
                                        + end - start)
            self._stretch(start, end)
        elif kind == "task_execution":
            __, type_id, __core, start, end = fields
            self.tasks_per_type[type_id] = (
                self.tasks_per_type.get(type_id, 0) + 1)
            self.duration_per_type[type_id] = (
                self.duration_per_type.get(type_id, 0) + end - start)
            self._stretch(start, end)
        elif kind == "counter_sample":
            __, counter_id, timestamp, value = fields
            lo, hi = self.counter_extremes.get(counter_id,
                                               (value, value))
            self.counter_extremes[counter_id] = (min(lo, value),
                                                 max(hi, value))
            self._stretch(timestamp, timestamp)
        elif kind == "memory_access":
            self.memory_accesses += 1
            self.bytes_accessed += fields[3]

    @property
    def total_tasks(self):
        return sum(self.tasks_per_type.values())

    def mean_duration(self, type_id):
        count = self.tasks_per_type.get(type_id, 0)
        if count == 0:
            return 0.0
        return self.duration_per_type[type_id] / count

    def describe(self):
        lines = ["streamed {} records".format(self.records)]
        if self.begin is not None:
            lines.append("time range [{} .. {}]".format(self.begin,
                                                        self.end))
        for type_id in sorted(self.tasks_per_type):
            lines.append("  type {}: {} tasks, mean {:.0f} cycles"
                         .format(self.type_names.get(type_id, type_id),
                                 self.tasks_per_type[type_id],
                                 self.mean_duration(type_id)))
        return "\n".join(lines)


def streaming_statistics(path):
    """One out-of-core pass: summary statistics of a trace file."""
    statistics = StreamingStatistics()
    for kind, fields in stream_records(path):
        statistics.consume(kind, fields)
    return statistics


def streaming_task_histogram(path, bins, value_range):
    """Out-of-core task-duration histogram with fixed bin edges.

    ``value_range = (lo, hi)`` must be given up front (a streaming pass
    cannot know the duration range in advance); durations outside it
    are clamped into the edge bins.  Returns ``(edges, counts)``.
    """
    import numpy as np

    if bins < 1:
        raise ValueError("need at least one bin")
    lo, hi = value_range
    if hi <= lo:
        raise ValueError("empty histogram range")
    edges = np.linspace(lo, hi, bins + 1)
    counts = np.zeros(bins, dtype=np.int64)
    width = (hi - lo) / bins
    for kind, fields in stream_records(path):
        if kind != "task_execution":
            continue
        duration = fields[4] - fields[3]
        index = int((duration - lo) / width)
        counts[min(max(index, 0), bins - 1)] += 1
    return edges, counts


def split_time_window(path, start, end):
    """Extract [start, end) of a huge trace into an in-memory Trace.

    Static records are kept in full; event records are dropped unless
    they overlap the window.  This is the out-of-core navigation
    pattern: stream once, then interact with the small window.
    """
    def add_static(builder, kind, fields):
        if kind == "counter_description":
            while len(builder.counter_descriptions) < fields.counter_id:
                builder.describe_counter("__unused_{}".format(
                    len(builder.counter_descriptions)))
            builder.counter_descriptions.append(fields)
        elif kind == "task_type":
            builder.describe_task_type(fields)
        else:
            builder.describe_region(fields)

    builder = None
    pending_static = []
    for kind, fields in stream_records(path):
        if kind == "topology":
            builder = TraceBuilder(fields)
            for static_kind, payload in pending_static:
                add_static(builder, static_kind, payload)
            continue
        if kind in ("counter_description", "task_type", "region"):
            if builder is None:
                pending_static.append((kind, fields))
            else:
                add_static(builder, kind, fields)
            continue
        if builder is None:
            raise fmt.FormatError("event record before topology")
        if kind in ("state_interval", "task_execution"):
            ev_start, ev_end = fields[-2], fields[-1]
            if ev_start < end and ev_end > start:
                getattr(builder, kind)(*fields)
        elif kind in ("counter_sample", "discrete_event"):
            timestamp = fields[2]
            if start <= timestamp < end:
                getattr(builder, kind)(*fields)
        elif kind == "comm_event":
            if start <= fields[2] < end:
                builder.comm_event(*fields)
        elif kind == "memory_access":
            if start <= fields[5] < end:
                builder.memory_access(*fields)
    if builder is None:
        raise fmt.FormatError("trace has no topology record")
    return builder.build()
