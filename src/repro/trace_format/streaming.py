"""Out-of-core trace processing.

The paper's conclusion announces work on "the out-of-core processing
of large traces": Aftermath loads traces of several gigabytes into
memory, but larger ones need streaming.  This module processes a trace
file record-by-record through constant-memory accumulators, never
materializing the in-memory :class:`Trace`:

* :func:`stream_records` — iterate (record_kind, fields) pairs;
* :class:`StreamingStatistics` — one-pass per-state times, task
  counts/durations per type, counter extremes and time bounds; partial
  accumulators over disjoint record sets combine with :meth:`merge`,
  which is what the map-reduce layer in
  :mod:`repro.analysis.parallel` shards across worker processes;
* :func:`streaming_state_summary` / :func:`streaming_task_histogram` —
  the common statistics views computed out-of-core;
* :func:`split_time_window` — extract a time window of a huge trace
  into a small in-memory :class:`Trace` for interactive analysis.
  When the file carries a seekable chunk index (see
  :mod:`repro.trace_format.chunked`), only the chunks overlapping the
  window are read instead of the whole file.

Accumulators rely only on the format's ordering guarantee (per-core
timestamp order) and tolerate arbitrary record interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.events import TopologyInfo
from ..core.trace import TraceBuilder
from . import format as fmt
from .compression import open_trace_file
from .reader import _Stream, check_header, parse_records


def stream_records(path):
    """Yield ``(kind, fields)`` for every record of a trace file.

    ``kind`` is the builder method name for events (for example
    ``"state_interval"``) or ``"topology"`` / ``"counter_description"``
    / ``"task_type"`` / ``"region"`` for static records, whose
    ``fields`` are the corresponding dataclasses.  Memory use is
    constant regardless of the trace size.  A chunk-index footer, if
    present, is skipped transparently.
    """
    with open_trace_file(path, "rb") as raw:
        stream = _Stream(raw)
        check_header(stream)
        yield from parse_records(stream)


@dataclass
class StreamingStatistics:
    """Constant-memory accumulator over one pass of a trace file.

    Accumulators built from *disjoint* record subsets (for example one
    per chunk shard) combine losslessly with :meth:`merge`: every field
    is a sum, min/max or union, so ``serial == merge(parts)`` exactly.
    """

    topology: Optional[TopologyInfo] = None
    records: int = 0
    begin: Optional[int] = None
    end: Optional[int] = None
    state_cycles: Dict[int, int] = field(default_factory=dict)
    tasks_per_type: Dict[int, int] = field(default_factory=dict)
    duration_per_type: Dict[int, int] = field(default_factory=dict)
    counter_extremes: Dict[int, Tuple[float, float]] = \
        field(default_factory=dict)
    type_names: Dict[int, str] = field(default_factory=dict)
    memory_accesses: int = 0
    bytes_accessed: int = 0

    def _stretch(self, start, end):
        self.begin = start if self.begin is None else min(self.begin,
                                                          start)
        self.end = end if self.end is None else max(self.end, end)

    def consume(self, kind, fields):
        """Fold one ``(kind, fields)`` record into the accumulator."""
        self.records += 1
        if kind == "topology":
            self.topology = fields
        elif kind == "task_type":
            self.type_names[fields.type_id] = fields.name
        elif kind == "state_interval":
            __, state, start, end = fields
            self.state_cycles[state] = (self.state_cycles.get(state, 0)
                                        + end - start)
            self._stretch(start, end)
        elif kind == "task_execution":
            __, type_id, __core, start, end = fields
            self.tasks_per_type[type_id] = (
                self.tasks_per_type.get(type_id, 0) + 1)
            self.duration_per_type[type_id] = (
                self.duration_per_type.get(type_id, 0) + end - start)
            self._stretch(start, end)
        elif kind == "counter_sample":
            __, counter_id, timestamp, value = fields
            lo, hi = self.counter_extremes.get(counter_id,
                                               (value, value))
            self.counter_extremes[counter_id] = (min(lo, value),
                                                 max(hi, value))
            self._stretch(timestamp, timestamp)
        elif kind == "memory_access":
            self.memory_accesses += 1
            self.bytes_accessed += fields[3]

    def merge(self, other):
        """Fold another accumulator (over disjoint records) into this
        one.  Returns ``self`` so reductions can chain."""
        if other.topology is not None:
            self.topology = other.topology
        self.records += other.records
        if other.begin is not None:
            self._stretch(other.begin, other.end)
        for state, cycles in other.state_cycles.items():
            self.state_cycles[state] = (self.state_cycles.get(state, 0)
                                        + cycles)
        for type_id, count in other.tasks_per_type.items():
            self.tasks_per_type[type_id] = (
                self.tasks_per_type.get(type_id, 0) + count)
        for type_id, cycles in other.duration_per_type.items():
            self.duration_per_type[type_id] = (
                self.duration_per_type.get(type_id, 0) + cycles)
        for counter_id, (lo, hi) in other.counter_extremes.items():
            mine = self.counter_extremes.get(counter_id)
            if mine is None:
                self.counter_extremes[counter_id] = (lo, hi)
            else:
                self.counter_extremes[counter_id] = (min(mine[0], lo),
                                                     max(mine[1], hi))
        self.type_names.update(other.type_names)
        self.memory_accesses += other.memory_accesses
        self.bytes_accessed += other.bytes_accessed
        return self

    @property
    def total_tasks(self):
        """Total task executions seen, across all types."""
        return sum(self.tasks_per_type.values())

    def mean_duration(self, type_id):
        """Mean duration of the tasks of ``type_id`` (0.0 if none)."""
        count = self.tasks_per_type.get(type_id, 0)
        if count == 0:
            return 0.0
        return self.duration_per_type[type_id] / count

    def describe(self):
        """Human-readable multi-line summary of the accumulator."""
        lines = ["streamed {} records".format(self.records)]
        if self.begin is not None:
            lines.append("time range [{} .. {}]".format(self.begin,
                                                        self.end))
        for type_id in sorted(self.tasks_per_type):
            lines.append("  type {}: {} tasks, mean {:.0f} cycles"
                         .format(self.type_names.get(type_id, type_id),
                                 self.tasks_per_type[type_id],
                                 self.mean_duration(type_id)))
        return "\n".join(lines)


def streaming_statistics(path):
    """One out-of-core pass: summary statistics of a trace file.

    For the sharded multi-process equivalent see
    :func:`repro.analysis.parallel.parallel_streaming_statistics`.
    """
    statistics = StreamingStatistics()
    for kind, fields in stream_records(path):
        statistics.consume(kind, fields)
    return statistics


def streaming_state_summary(path):
    """Out-of-core per-state cycle totals (the whole-trace analogue of
    :func:`repro.core.statistics.state_time_summary`)."""
    return streaming_statistics(path).state_cycles


class TaskHistogramAccumulator:
    """Mergeable task-duration histogram with fixed bin edges.

    The single definition of the out-of-core binning: the serial
    :func:`streaming_task_histogram` folds records into one instance,
    and the sharded pass in :mod:`repro.analysis.parallel` merges one
    instance per shard — so the two paths cannot drift apart.
    Durations outside ``value_range`` are clamped into the edge bins.
    """

    def __init__(self, bins, value_range):
        if bins < 1:
            raise ValueError("need at least one bin")
        lo, hi = value_range
        if hi <= lo:
            raise ValueError("empty histogram range")
        self.bins = bins
        self.lo = lo
        self.hi = hi
        self.width = (hi - lo) / bins
        self.edges = np.linspace(lo, hi, bins + 1)
        self.counts = np.zeros(bins, dtype=np.int64)

    def consume(self, kind, fields):
        """Bin one task execution; other record kinds are ignored."""
        if kind != "task_execution":
            return
        duration = fields[4] - fields[3]
        index = int((duration - self.lo) / self.width)
        self.counts[min(max(index, 0), self.bins - 1)] += 1

    def merge(self, other):
        """Add another histogram's counts (same edges assumed)."""
        self.counts += other.counts
        return self


def streaming_task_histogram(path, bins, value_range):
    """Out-of-core task-duration histogram with fixed bin edges.

    ``value_range = (lo, hi)`` must be given up front (a streaming pass
    cannot know the duration range in advance); durations outside it
    are clamped into the edge bins.  Returns ``(edges, counts)``.
    """
    accumulator = TaskHistogramAccumulator(bins, value_range)
    for kind, fields in stream_records(path):
        accumulator.consume(kind, fields)
    return accumulator.edges, accumulator.counts


def split_time_window(path, start, end, use_index=True, stats=None):
    """Extract [start, end) of a huge trace into an in-memory Trace.

    Static records are kept in full; event records are dropped unless
    they overlap the window.  This is the out-of-core navigation
    pattern: stream once, then interact with the small window.

    When the file carries a chunk index and ``use_index`` is true, the
    pass seeks directly to the overlapping chunks and reads only those
    bytes; unindexed (or compressed) files fall back to the full scan.
    ``stats``, if given, is a
    :class:`~repro.trace_format.chunked.ScanStats` reporting how many
    bytes the extraction actually read.
    """
    if use_index:
        from .chunked import stream_window_records
        records = stream_window_records(path, start, end, stats=stats)
    else:
        records = stream_records(path)
    return build_window(records, start, end)


def build_window(records, start, end):
    """Assemble an in-memory :class:`Trace` from a ``(kind, fields)``
    stream, keeping static records and the events overlapping
    ``[start, end)``.  Factored out of :func:`split_time_window` so
    both the sequential and the chunk-seeking paths share the exact
    same filtering semantics."""
    def add_static(builder, kind, fields):
        if kind == "counter_description":
            while len(builder.counter_descriptions) < fields.counter_id:
                builder.describe_counter("__unused_{}".format(
                    len(builder.counter_descriptions)))
            builder.counter_descriptions.append(fields)
        elif kind == "task_type":
            builder.describe_task_type(fields)
        else:
            builder.describe_region(fields)

    builder = None
    pending_static = []
    for kind, fields in records:
        if kind == "topology":
            builder = TraceBuilder(fields)
            for static_kind, payload in pending_static:
                add_static(builder, static_kind, payload)
            continue
        if kind in ("counter_description", "task_type", "region"):
            if builder is None:
                pending_static.append((kind, fields))
            else:
                add_static(builder, kind, fields)
            continue
        if builder is None:
            raise fmt.FormatError("event record before topology")
        if kind in ("state_interval", "task_execution"):
            ev_start, ev_end = fields[-2], fields[-1]
            if ev_start < end and ev_end > start:
                getattr(builder, kind)(*fields)
        elif kind in ("counter_sample", "discrete_event"):
            timestamp = fields[2]
            if start <= timestamp < end:
                getattr(builder, kind)(*fields)
        elif kind == "comm_event":
            if start <= fields[2] < end:
                builder.comm_event(*fields)
        elif kind == "memory_access":
            if start <= fields[5] < end:
                builder.memory_access(*fields)
    if builder is None:
        raise fmt.FormatError("trace has no topology record")
    return builder.build()
