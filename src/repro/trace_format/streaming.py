"""Out-of-core trace processing.

The paper's conclusion announces work on "the out-of-core processing
of large traces": Aftermath loads traces of several gigabytes into
memory, but larger ones need streaming.  This module processes a trace
file record-by-record through constant-memory accumulators, never
materializing the in-memory :class:`Trace`:

* :func:`stream_records` — iterate (record_kind, fields) pairs;
* :class:`StreamingStatistics` — one-pass per-state times, task
  counts/durations per type, counter extremes and time bounds; partial
  accumulators over disjoint record sets combine with :meth:`merge`,
  which is what the map-reduce layer in
  :mod:`repro.analysis.parallel` shards across worker processes;
* :func:`streaming_state_summary` / :func:`streaming_task_histogram` —
  the common statistics views computed out-of-core;
* :func:`split_time_window` — extract a time window of a huge trace
  into a small in-memory :class:`Trace` for interactive analysis.
  When the file carries a seekable chunk index (see
  :mod:`repro.trace_format.chunked`), only the chunks overlapping the
  window are read instead of the whole file.

Accumulators rely only on the format's ordering guarantee (per-core
timestamp order) and tolerate arbitrary record interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.events import TopologyInfo
from ..core.trace import TraceBuilder
from . import format as fmt
from .compression import open_trace_file
from .reader import _Stream, check_header, parse_records


def stream_records(path):
    """Yield ``(kind, fields)`` for every record of a trace file.

    ``kind`` is the builder method name for events (for example
    ``"state_interval"``) or ``"topology"`` / ``"counter_description"``
    / ``"task_type"`` / ``"region"`` for static records, whose
    ``fields`` are the corresponding dataclasses.  Memory use is
    constant regardless of the trace size.  A chunk-index footer, if
    present, is skipped transparently.
    """
    with open_trace_file(path, "rb") as raw:
        stream = _Stream(raw)
        check_header(stream)
        yield from parse_records(stream)


#: Event record kinds whose fields are plain scalars and therefore
#: batchable into columns (static records carry dataclasses and always
#: go through the scalar ``consume`` path).
BATCHABLE_KINDS = frozenset((
    "state_interval", "task_execution", "counter_sample",
    "discrete_event", "comm_event", "memory_access"))

#: Records buffered per kind before a columnar flush.
DEFAULT_BATCH_RECORDS = 65536


def fold_records(records, accumulator, columnar=False,
                 batch_records=DEFAULT_BATCH_RECORDS):
    """Fold a ``(kind, fields)`` stream into an accumulator.

    With ``columnar=False`` this is the plain per-record ``consume``
    loop.  With ``columnar=True`` event records are buffered per kind
    and handed to the accumulator's vectorized ``consume_batch(kind,
    columns)`` in batches of ``batch_records`` — same results (every
    accumulator aggregate is a sum, min or max), much less per-record
    Python work.  An accumulator's ``batch_kinds`` attribute restricts
    which kinds are worth buffering (default: every event kind);
    accumulators without ``consume_batch`` silently fall back to the
    scalar loop.  Returns ``accumulator``.
    """
    consume_batch = getattr(accumulator, "consume_batch", None)
    if not columnar or consume_batch is None:
        for kind, fields in records:
            accumulator.consume(kind, fields)
        return accumulator
    batchable = frozenset(getattr(accumulator, "batch_kinds",
                                  BATCHABLE_KINDS)) & BATCHABLE_KINDS
    buffers = {}

    def flush(kind):
        rows = buffers.pop(kind, None)
        if not rows:
            return
        if kind == "counter_sample":
            # Mixed int/float fields: a single 2-D array would round
            # timestamps through float64, so convert per column.
            columns = tuple(np.asarray(column) for column in zip(*rows))
        else:
            # All-integer fields: one C-level pass builds the matrix.
            matrix = np.array(rows, dtype=np.int64)
            columns = tuple(matrix[:, field]
                            for field in range(matrix.shape[1]))
        consume_batch(kind, columns)

    for kind, fields in records:
        if kind in batchable:
            rows = buffers.setdefault(kind, [])
            rows.append(fields)
            if len(rows) >= batch_records:
                flush(kind)
        else:
            accumulator.consume(kind, fields)
    for kind in list(buffers):
        flush(kind)
    return accumulator


@dataclass
class StreamingStatistics:
    """Constant-memory accumulator over one pass of a trace file.

    Accumulators built from *disjoint* record subsets (for example one
    per chunk shard) combine losslessly with :meth:`merge`: every field
    is a sum, min/max or union, so ``serial == merge(parts)`` exactly.
    """

    topology: Optional[TopologyInfo] = None
    records: int = 0
    begin: Optional[int] = None
    end: Optional[int] = None
    state_cycles: Dict[int, int] = field(default_factory=dict)
    tasks_per_type: Dict[int, int] = field(default_factory=dict)
    duration_per_type: Dict[int, int] = field(default_factory=dict)
    counter_extremes: Dict[int, Tuple[float, float]] = \
        field(default_factory=dict)
    type_names: Dict[int, str] = field(default_factory=dict)
    memory_accesses: int = 0
    bytes_accessed: int = 0

    #: Kinds the vectorized batch path aggregates; everything else goes
    #: through :meth:`consume` (see
    #: :func:`repro.trace_format.streaming.fold_records`).
    batch_kinds = ("state_interval", "task_execution", "counter_sample",
                   "memory_access")

    def _stretch(self, start, end):
        self.begin = start if self.begin is None else min(self.begin,
                                                          start)
        self.end = end if self.end is None else max(self.end, end)

    def consume(self, kind, fields):
        """Fold one ``(kind, fields)`` record into the accumulator."""
        self.records += 1
        if kind == "topology":
            self.topology = fields
        elif kind == "task_type":
            self.type_names[fields.type_id] = fields.name
        elif kind == "state_interval":
            __, state, start, end = fields
            self.state_cycles[state] = (self.state_cycles.get(state, 0)
                                        + end - start)
            self._stretch(start, end)
        elif kind == "task_execution":
            __, type_id, __core, start, end = fields
            self.tasks_per_type[type_id] = (
                self.tasks_per_type.get(type_id, 0) + 1)
            self.duration_per_type[type_id] = (
                self.duration_per_type.get(type_id, 0) + end - start)
            self._stretch(start, end)
        elif kind == "counter_sample":
            __, counter_id, timestamp, value = fields
            lo, hi = self.counter_extremes.get(counter_id,
                                               (value, value))
            self.counter_extremes[counter_id] = (min(lo, value),
                                                 max(hi, value))
            self._stretch(timestamp, timestamp)
        elif kind == "memory_access":
            self.memory_accesses += 1
            self.bytes_accessed += fields[3]

    def consume_batch(self, kind, columns):
        """Vectorized :meth:`consume`: fold a whole batch of records of
        one ``kind`` at once.  ``columns`` holds one array per record
        field, in ``consume``'s field order.  Results are identical to
        consuming the records one by one — every aggregate here is a
        sum, min or max, so batching only changes the grouping.
        """
        count = len(columns[0]) if columns else 0
        self.records += count
        if count == 0:
            return
        if kind == "state_interval":
            __, states, starts, ends = columns
            unique, inverse = np.unique(states, return_inverse=True)
            totals = np.zeros(len(unique), dtype=np.int64)
            np.add.at(totals, inverse, ends - starts)
            for state, cycles in zip(unique, totals):
                self.state_cycles[int(state)] = (
                    self.state_cycles.get(int(state), 0) + int(cycles))
            self._stretch(int(starts.min()), int(ends.max()))
        elif kind == "task_execution":
            __, type_ids, __cores, starts, ends = columns
            unique, inverse, counts = np.unique(
                type_ids, return_inverse=True, return_counts=True)
            durations = np.zeros(len(unique), dtype=np.int64)
            np.add.at(durations, inverse, ends - starts)
            for type_id, n, cycles in zip(unique, counts, durations):
                self.tasks_per_type[int(type_id)] = (
                    self.tasks_per_type.get(int(type_id), 0) + int(n))
                self.duration_per_type[int(type_id)] = (
                    self.duration_per_type.get(int(type_id), 0)
                    + int(cycles))
            self._stretch(int(starts.min()), int(ends.max()))
        elif kind == "counter_sample":
            __, counter_ids, timestamps, values = columns
            for counter_id in np.unique(counter_ids):
                batch = values[counter_ids == counter_id]
                lo, hi = self.counter_extremes.get(
                    int(counter_id), (float(batch[0]), float(batch[0])))
                self.counter_extremes[int(counter_id)] = (
                    min(lo, float(batch.min())),
                    max(hi, float(batch.max())))
            self._stretch(int(timestamps.min()), int(timestamps.max()))
        elif kind == "memory_access":
            self.memory_accesses += count
            self.bytes_accessed += int(columns[3].sum())

    def merge(self, other):
        """Fold another accumulator (over disjoint records) into this
        one.  Returns ``self`` so reductions can chain."""
        if other.topology is not None:
            self.topology = other.topology
        self.records += other.records
        if other.begin is not None:
            self._stretch(other.begin, other.end)
        for state, cycles in other.state_cycles.items():
            self.state_cycles[state] = (self.state_cycles.get(state, 0)
                                        + cycles)
        for type_id, count in other.tasks_per_type.items():
            self.tasks_per_type[type_id] = (
                self.tasks_per_type.get(type_id, 0) + count)
        for type_id, cycles in other.duration_per_type.items():
            self.duration_per_type[type_id] = (
                self.duration_per_type.get(type_id, 0) + cycles)
        for counter_id, (lo, hi) in other.counter_extremes.items():
            mine = self.counter_extremes.get(counter_id)
            if mine is None:
                self.counter_extremes[counter_id] = (lo, hi)
            else:
                self.counter_extremes[counter_id] = (min(mine[0], lo),
                                                     max(mine[1], hi))
        self.type_names.update(other.type_names)
        self.memory_accesses += other.memory_accesses
        self.bytes_accessed += other.bytes_accessed
        return self

    @property
    def total_tasks(self):
        """Total task executions seen, across all types."""
        return sum(self.tasks_per_type.values())

    def mean_duration(self, type_id):
        """Mean duration of the tasks of ``type_id`` (0.0 if none)."""
        count = self.tasks_per_type.get(type_id, 0)
        if count == 0:
            return 0.0
        return self.duration_per_type[type_id] / count

    def describe(self):
        """Human-readable multi-line summary of the accumulator."""
        lines = ["streamed {} records".format(self.records)]
        if self.begin is not None:
            lines.append("time range [{} .. {}]".format(self.begin,
                                                        self.end))
        for type_id in sorted(self.tasks_per_type):
            lines.append("  type {}: {} tasks, mean {:.0f} cycles"
                         .format(self.type_names.get(type_id, type_id),
                                 self.tasks_per_type[type_id],
                                 self.mean_duration(type_id)))
        return "\n".join(lines)


def streaming_statistics(path, columnar=False):
    """One out-of-core pass: summary statistics of a trace file.

    ``columnar=True`` folds the records through the vectorized batch
    path (:func:`fold_records`) — identical results, less per-record
    work.  For the sharded multi-process equivalent see
    :func:`repro.analysis.parallel.parallel_streaming_statistics`.
    """
    return fold_records(stream_records(path), StreamingStatistics(),
                        columnar=columnar)


def streaming_state_summary(path):
    """Out-of-core per-state cycle totals (the whole-trace analogue of
    :func:`repro.core.statistics.state_time_summary`)."""
    return streaming_statistics(path).state_cycles


class TaskHistogramAccumulator:
    """Mergeable task-duration histogram with fixed bin edges.

    The single definition of the out-of-core binning: the serial
    :func:`streaming_task_histogram` folds records into one instance,
    and the sharded pass in :mod:`repro.analysis.parallel` merges one
    instance per shard — so the two paths cannot drift apart.
    Durations outside ``value_range`` are clamped into the edge bins.
    """

    #: Only task executions are worth buffering for the batch path.
    batch_kinds = ("task_execution",)

    def __init__(self, bins, value_range):
        if bins < 1:
            raise ValueError("need at least one bin")
        lo, hi = value_range
        if hi <= lo:
            raise ValueError("empty histogram range")
        self.bins = bins
        self.lo = lo
        self.hi = hi
        self.width = (hi - lo) / bins
        self.edges = np.linspace(lo, hi, bins + 1)
        self.counts = np.zeros(bins, dtype=np.int64)

    def consume(self, kind, fields):
        """Bin one task execution; other record kinds are ignored."""
        if kind != "task_execution":
            return
        duration = fields[4] - fields[3]
        index = int((duration - self.lo) / self.width)
        self.counts[min(max(index, 0), self.bins - 1)] += 1

    def consume_batch(self, kind, columns):
        """Vectorized :meth:`consume`: bin a whole batch of task
        executions at once (other record kinds are ignored)."""
        if kind != "task_execution" or not len(columns[0]):
            return
        durations = columns[4] - columns[3]
        indices = ((durations - self.lo) / self.width).astype(np.int64)
        indices = np.clip(indices, 0, self.bins - 1)
        self.counts += np.bincount(indices, minlength=self.bins)

    def merge(self, other):
        """Add another histogram's counts (same edges assumed)."""
        self.counts += other.counts
        return self


def streaming_task_histogram(path, bins, value_range, columnar=False):
    """Out-of-core task-duration histogram with fixed bin edges.

    ``value_range = (lo, hi)`` must be given up front (a streaming pass
    cannot know the duration range in advance); durations outside it
    are clamped into the edge bins.  ``columnar=True`` uses the
    vectorized batch path.  Returns ``(edges, counts)``.
    """
    accumulator = fold_records(stream_records(path),
                               TaskHistogramAccumulator(bins, value_range),
                               columnar=columnar)
    return accumulator.edges, accumulator.counts


def split_time_window(path, start, end, use_index=True, stats=None,
                      columnar=False, cache=None):
    """Extract [start, end) of a huge trace into an in-memory trace.

    Static records are kept in full; event records are dropped unless
    they overlap the window.  This is the out-of-core navigation
    pattern: stream once, then interact with the small window.

    When the file carries a chunk index and ``use_index`` is true, the
    pass seeks directly to the overlapping chunks and reads only those
    bytes; unindexed (or compressed) files fall back to the full scan.
    ``stats``, if given, is a
    :class:`~repro.trace_format.chunked.ScanStats` reporting how many
    bytes the extraction actually read.  ``columnar=True`` assembles a
    :class:`~repro.core.columnar.ColumnarTrace` instead of a
    :class:`Trace`, without materializing per-event objects.

    ``cache`` (columnar only) serves the window as a zero-copy slice
    of the memory-mapped ``.ostc`` sidecar when one is fresh — see
    :func:`repro.trace_format.chunked.read_window_columnar`.
    """
    if cache:
        if not columnar:
            raise ValueError("cache-served windows are columnar; pass "
                             "columnar=True")
        from .chunked import read_window_columnar
        return read_window_columnar(path, start, end, stats=stats,
                                    cache=cache)
    if use_index:
        from .chunked import stream_window_records
        records = stream_window_records(path, start, end, stats=stats)
    else:
        records = stream_records(path)
    return build_window(records, start, end, columnar=columnar)


def build_window(records, start, end, columnar=False):
    """Assemble an in-memory trace from a ``(kind, fields)`` stream,
    keeping static records and the events overlapping ``[start, end)``.
    Factored out of :func:`split_time_window` so the sequential and the
    chunk-seeking paths share the exact same filtering semantics; the
    ``columnar`` flag only swaps the builder
    (:class:`~repro.core.trace.TraceBuilder` vs.
    :class:`~repro.core.columnar.ColumnarBuilder`)."""
    from ..core.columnar import ColumnarBuilder
    from .reader import register_counter_description

    def add_static(builder, kind, fields):
        if kind == "counter_description":
            register_counter_description(builder, fields)
        elif kind == "task_type":
            builder.describe_task_type(fields)
        else:
            builder.describe_region(fields)

    builder_class = ColumnarBuilder if columnar else TraceBuilder
    builder = None
    pending_static = []
    for kind, fields in records:
        if kind == "topology":
            builder = builder_class(fields)
            for static_kind, payload in pending_static:
                add_static(builder, static_kind, payload)
            continue
        if kind in ("counter_description", "task_type", "region"):
            if builder is None:
                pending_static.append((kind, fields))
            else:
                add_static(builder, kind, fields)
            continue
        if builder is None:
            raise fmt.FormatError("event record before topology")
        if kind in ("state_interval", "task_execution"):
            ev_start, ev_end = fields[-2], fields[-1]
            if ev_start < end and ev_end > start:
                getattr(builder, kind)(*fields)
        elif kind in ("counter_sample", "discrete_event"):
            timestamp = fields[2]
            if start <= timestamp < end:
                getattr(builder, kind)(*fields)
        elif kind == "comm_event":
            if start <= fields[2] < end:
                builder.comm_event(*fields)
        elif kind == "memory_access":
            if start <= fields[5] < end:
                builder.memory_access(*fields)
    if builder is None:
        raise fmt.FormatError("trace has no topology record")
    return builder.build()
