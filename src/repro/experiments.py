"""Compatibility alias for :mod:`repro.analysis.experiments.harness`.

The single-run experiment harness moved into the multi-trace
experiment engine (``repro.analysis.experiments``); this module keeps
``from repro import experiments`` working for the benches, examples
and tests that grew around the old location.  New code should import
from :mod:`repro.analysis.experiments` directly.
"""

from .analysis.experiments.harness import (KMEANS_SIM_CONFIG, PRESETS,
                                           ScalePreset, kmeans_machine,
                                           kmeans_makespan, kmeans_trace,
                                           preset, runtime_pair,
                                           seidel_machine, seidel_trace)

__all__ = ["KMEANS_SIM_CONFIG", "PRESETS", "ScalePreset",
           "kmeans_machine", "kmeans_makespan", "kmeans_trace",
           "preset", "runtime_pair", "seidel_machine", "seidel_trace"]
