"""Synthetic workload generators for tests and rendering benchmarks."""

from __future__ import annotations

import random

from ..runtime.program import Program


def build_chain(machine, length=10, work=10_000, bytes_per_task=4096):
    """A fully serial pipeline: each task reads its predecessor's output."""
    program = Program(machine, name="chain")
    previous = None
    for index in range(length):
        region = program.allocate(bytes_per_task,
                                  name="link_{}".format(index))
        reads = [] if previous is None else [(previous, 0, bytes_per_task)]
        program.spawn("chain_stage", work, reads=reads,
                      writes=[(region, 0, bytes_per_task)])
        previous = region
    return program.finalize()


def build_fork_join(machine, width=16, work=20_000, bytes_per_task=4096):
    """One producer, ``width`` independent consumers, one reducer."""
    program = Program(machine, name="fork_join")
    source = program.allocate(bytes_per_task, name="source")
    program.spawn("fj_produce", work, writes=[(source, 0, bytes_per_task)])
    outputs = []
    for index in range(width):
        out = program.allocate(bytes_per_task, name="mid_{}".format(index))
        program.spawn("fj_work", work,
                      reads=[(source, 0, bytes_per_task)],
                      writes=[(out, 0, bytes_per_task)])
        outputs.append(out)
    program.spawn("fj_join", work,
                  reads=[(out, 0, bytes_per_task) for out in outputs])
    return program.finalize()


def build_random_dag(machine, num_tasks=200, max_deps=3, seed=0,
                     work_range=(5_000, 50_000), bytes_per_task=4096):
    """A random layered DAG with reproducible structure.

    Every task writes one fresh region and reads the outputs of up to
    ``max_deps`` randomly chosen earlier tasks, which keeps the derived
    graph acyclic by construction.
    """
    rng = random.Random(seed)
    program = Program(machine, name="random_dag")
    outputs = []
    for index in range(num_tasks):
        region = program.allocate(bytes_per_task,
                                  name="out_{}".format(index))
        reads = []
        if outputs:
            deps = rng.randint(0, min(max_deps, len(outputs)))
            for source in rng.sample(outputs, deps):
                reads.append((source, 0, bytes_per_task))
        program.spawn("random_work", rng.randint(*work_range),
                      reads=reads, writes=[(region, 0, bytes_per_task)])
        outputs.append(region)
    return program.finalize()
