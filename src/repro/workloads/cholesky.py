"""Blocked Cholesky factorization: the classic dependent-task DAG.

The paper's introduction motivates dependent-task models by their
ability to express "arbitrary dependence patterns ... to exploit task,
pipeline and data parallelism"; blocked Cholesky is the canonical
example used by OpenStream, StarSs and DAGuE alike (all cited in the
paper).  Its four kernels (POTRF on the diagonal, TRSM on the panel,
SYRK/GEMM on the trailing matrix) form a DAG whose typemap rendering is
the showcase for Aftermath's task-type mode.

Dependence structure (per step k over an N x N grid of blocks):

* ``potrf(k)`` reads/writes A[k][k];
* ``trsm(k, i)`` (i > k) reads A[k][k], reads/writes A[i][k];
* ``syrk(k, i)`` reads A[i][k], reads/writes A[i][i];
* ``gemm(k, i, j)`` (k < j < i) reads A[i][k], A[j][k], reads/writes
  A[i][j].

All tasks write the block they update, so the last-writer derivation
recovers exactly these edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.program import Program

DOUBLE = 8


@dataclass
class CholeskyConfig:
    """Problem shape: an ``blocks x blocks`` grid of square tiles."""

    blocks: int = 8
    block_dim: int = 64
    #: Cycles per element per kernel flavor (GEMM does 2n^3 flops etc.).
    potrf_cycles_per_element: float = 12.0
    trsm_cycles_per_element: float = 8.0
    syrk_cycles_per_element: float = 6.0
    gemm_cycles_per_element: float = 10.0

    @property
    def block_bytes(self):
        return self.block_dim * self.block_dim * DOUBLE

    @property
    def block_elements(self):
        return self.block_dim * self.block_dim


def build_cholesky(machine, config=None, memory=None):
    """Build the blocked-Cholesky task graph (lower triangle only)."""
    config = config if config is not None else CholeskyConfig()
    program = Program(machine, memory=memory, name="cholesky")
    n = config.blocks
    size = config.block_bytes
    tiles = [[program.allocate(size, name="A_{}_{}".format(i, j))
              for j in range(i + 1)] for i in range(n)]

    init_work = int(0.5 * config.block_elements)
    for i in range(n):
        for j in range(i + 1):
            program.spawn("chol_init", init_work,
                          writes=[(tiles[i][j], 0, size)])

    elements = config.block_elements
    for k in range(n):
        program.spawn(
            "chol_potrf",
            int(config.potrf_cycles_per_element * elements),
            reads=[(tiles[k][k], 0, size)],
            writes=[(tiles[k][k], 0, size)],
            metadata={"k": k})
        for i in range(k + 1, n):
            program.spawn(
                "chol_trsm",
                int(config.trsm_cycles_per_element * elements),
                reads=[(tiles[k][k], 0, size), (tiles[i][k], 0, size)],
                writes=[(tiles[i][k], 0, size)],
                metadata={"k": k, "i": i})
        for i in range(k + 1, n):
            program.spawn(
                "chol_syrk",
                int(config.syrk_cycles_per_element * elements),
                reads=[(tiles[i][k], 0, size), (tiles[i][i], 0, size)],
                writes=[(tiles[i][i], 0, size)],
                metadata={"k": k, "i": i})
            for j in range(k + 1, i):
                program.spawn(
                    "chol_gemm",
                    int(config.gemm_cycles_per_element * elements),
                    reads=[(tiles[i][k], 0, size),
                           (tiles[j][k], 0, size),
                           (tiles[i][j], 0, size)],
                    writes=[(tiles[i][j], 0, size)],
                    metadata={"k": k, "i": i, "j": j})
    return program.finalize()
