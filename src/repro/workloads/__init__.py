"""The paper's applications (seidel, k-means) plus synthetic generators."""

from .cholesky import CholeskyConfig, build_cholesky
from .kmeans import KmeansConfig, build_kmeans
from .pipeline import PipelineConfig, build_pipeline
from .openmp import OpenMPProgram, build_fibonacci, build_mergesort
from .seidel import SeidelConfig, build_seidel
from .synthetic import build_chain, build_fork_join, build_random_dag
from .wavefront import WavefrontConfig, build_wavefront

__all__ = ["CholeskyConfig", "build_cholesky", "PipelineConfig",
           "build_pipeline", "KmeansConfig", "build_kmeans",
           "OpenMPProgram",
           "build_fibonacci", "build_mergesort", "SeidelConfig",
           "build_seidel", "WavefrontConfig", "build_wavefront",
           "build_chain", "build_fork_join", "build_random_dag"]
