"""A streaming pipeline workload: OpenStream's home turf.

OpenStream is a *streaming* data-flow model ("task, pipeline and data
parallelism", Section I); this workload models a multi-stage pipeline
over a stream of frames: each stage processes frame t after (a) the
same stage processed frame t-1 ... only if the stage is stateful, and
(b) the previous stage produced frame t.  Stage imbalance produces the
classic pipeline bottleneck pattern on the timeline: every stage
downstream of the slow one shows periodic idleness at the slow stage's
rate — a fourth anomaly family to exercise Aftermath's views on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..runtime.program import Program


@dataclass
class PipelineConfig:
    """``stage_costs[s]`` is stage s's per-frame cost in cycles;
    ``stateful[s]`` serializes stage s across frames."""

    frames: int = 64
    stage_costs: Tuple[int, ...] = (20_000, 60_000, 20_000, 20_000)
    stateful: Tuple[bool, ...] = ()
    frame_bytes: int = 64 * 1024
    #: Application-level stragglers: every ``straggler_period``-th
    #: frame of ``straggler_stage`` costs ``straggler_factor`` times
    #: as much (a key frame, a cache-cold input, a GC pause).  The
    #: default (-1) plants none.
    straggler_stage: int = -1
    straggler_period: int = 8
    straggler_factor: float = 6.0

    def __post_init__(self):
        if not self.stateful:
            self.stateful = tuple(True for __ in self.stage_costs)
        if len(self.stateful) != len(self.stage_costs):
            raise ValueError("stateful flags must match stage count")
        if self.straggler_stage >= self.stages:
            raise ValueError("straggler_stage out of range")
        if self.straggler_period < 1 or self.straggler_factor < 1.0:
            raise ValueError("straggler period/factor must be >= 1")

    @property
    def stages(self):
        return len(self.stage_costs)


def build_pipeline(machine, config=None, memory=None):
    """Build the pipeline task graph."""
    config = config if config is not None else PipelineConfig()
    program = Program(machine, memory=memory, name="pipeline")
    size = config.frame_bytes

    # One region per (stage, frame) output; one state region per
    # stateful stage, read+written every frame to serialize it.
    state_regions = [program.allocate(4096,
                                      name="state_{}".format(stage))
                     if config.stateful[stage] else None
                     for stage in range(config.stages)]
    previous_outputs = [None] * config.frames
    for stage in range(config.stages):
        outputs = []
        for frame in range(config.frames):
            out = program.allocate(size, name="s{}_f{}".format(stage,
                                                               frame))
            reads = []
            writes = [(out, 0, size)]
            if previous_outputs[frame] is not None:
                reads.append((previous_outputs[frame], 0, size))
            state = state_regions[stage]
            if state is not None:
                reads.append((state, 0, state.size))
                writes.append((state, 0, state.size))
            work = config.stage_costs[stage]
            if stage == config.straggler_stage \
                    and frame % config.straggler_period == 0:
                work = int(work * config.straggler_factor)
            program.spawn("pipe_stage{}".format(stage), work,
                          reads=reads, writes=writes,
                          metadata={"stage": stage, "frame": frame})
            outputs.append(out)
        previous_outputs = outputs
    return program.finalize()
