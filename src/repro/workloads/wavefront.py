"""A wavefront (diagonal-sweep) workload: an irregular task DAG.

Wavefront computations — Smith-Waterman alignment, LU panels,
dynamic-programming tables — are the canonical irregular DAG: task
``(i, j)`` depends on its north ``(i-1, j)`` and west ``(i, j-1)``
neighbours, so parallelism ramps from one task to a full diagonal and
back down.  The timeline shows the characteristic diamond of activity
that Aftermath's parallelism views were built to expose, and the
ragged start/drain phases give the idle-phase detector realistic
structure (unlike the rectangular phases of seidel).

Per-cell work is drawn from a seeded range, so the DAG is irregular
in *time* as well as shape — runs are deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..runtime.program import Program


@dataclass
class WavefrontConfig:
    """An ``order`` x ``order`` dependence grid; per-cell work drawn
    uniformly from ``[base_work, base_work * work_spread]``."""

    order: int = 12
    base_work: int = 30_000
    work_spread: float = 2.0
    cell_bytes: int = 16 * 1024
    seed: int = 0

    def __post_init__(self):
        if self.order < 1:
            raise ValueError("wavefront order must be >= 1")
        if self.work_spread < 1.0:
            raise ValueError("work_spread must be >= 1.0")


def build_wavefront(machine, config=None, memory=None):
    """Build the wavefront task graph (``order**2`` tasks)."""
    config = config if config is not None else WavefrontConfig()
    program = Program(machine, memory=memory, name="wavefront")
    rng = random.Random(config.seed)
    size = config.cell_bytes
    cells = {}
    for i in range(config.order):
        for j in range(config.order):
            cell = program.allocate(size,
                                    name="w_{}_{}".format(i, j))
            reads = []
            if i > 0:
                reads.append((cells[(i - 1, j)], 0, size))
            if j > 0:
                reads.append((cells[(i, j - 1)], 0, size))
            work = rng.randint(config.base_work,
                               int(config.base_work
                                   * config.work_spread))
            program.spawn("wavefront_cell", work, reads=reads,
                          writes=[(cell, 0, size)],
                          metadata={"i": i, "j": j})
            cells[(i, j)] = cell
    return program.finalize()
