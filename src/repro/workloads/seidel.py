"""The seidel benchmark: a 2-D Gauss-Seidel stencil over a blocked matrix.

This reproduces the OpenStream application analyzed in Sections III and
IV of the paper: a ``2^14 x 2^14`` matrix of doubles processed in
``2^8 x 2^8`` blocks on the 24-node SGI UV2000.

Task structure (matching Fig. 6):

* one *initialization* task per block writes the block's region first —
  triggering physical page allocation (first touch), which is the root
  cause of the slow-initialization anomaly of Section III-B;
* one *computation* task per block and time step ``(t, i, j)`` reads its
  own block (the version written at step ``t-1``), the already-updated
  edges of the left/top neighbors (step ``t``) and the not-yet-updated
  edges of the right/bottom neighbors (step ``t-1``), then writes its
  block in place.

The derived dependences form the diagonal wave front of Fig. 6: depth 0
holds all initialization tasks, depth 1 holds only ``b(0,0)`` (the
paper's sudden drop of parallelism to a single task), and parallelism
then grows as wave fronts from successive time steps pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.program import Program

DOUBLE = 8


@dataclass
class SeidelConfig:
    """Problem shape. Defaults are a scaled-down version of the paper's
    ``2^14`` matrix in ``2^8`` blocks over 50 time steps; pass
    ``blocks=64, block_dim=256, steps=50`` for the full-size graph."""

    blocks: int = 16          # blocks per matrix dimension
    block_dim: int = 64       # elements per block dimension
    steps: int = 10           # Gauss-Seidel sweeps
    cycles_per_point: float = 2.0    # stencil cost per element
                                     # (the stencil is memory-bound)
    init_cycles_per_point: float = 0.5  # pure-write initialization cost

    @property
    def block_bytes(self):
        return self.block_dim * self.block_dim * DOUBLE

    @property
    def row_bytes(self):
        return self.block_dim * DOUBLE


def build_seidel(machine, config=None, memory=None):
    """Build the seidel task graph as a finalized :class:`Program`.

    ``memory`` optionally supplies a pre-configured
    :class:`MemoryManager` (e.g. with the non-optimized run-time's
    NUMA-oblivious random placement policy).
    """
    config = config if config is not None else SeidelConfig()
    program = Program(machine, memory=memory, name="seidel")
    blocks = config.blocks
    regions = [[program.allocate(config.block_bytes,
                                 name="block_{}_{}".format(i, j))
                for j in range(blocks)] for i in range(blocks)]

    init_work = int(config.init_cycles_per_point
                    * config.block_dim * config.block_dim)
    for i in range(blocks):
        for j in range(blocks):
            program.spawn(
                "seidel_init", init_work,
                writes=[(regions[i][j], 0, config.block_bytes)])

    compute_work = int(config.cycles_per_point
                       * config.block_dim * config.block_dim)
    edge = config.row_bytes
    last_row_offset = config.block_bytes - edge
    for t in range(config.steps):
        for i in range(blocks):
            for j in range(blocks):
                reads = [(regions[i][j], 0, config.block_bytes)]
                if i > 0:    # bottom edge of the (updated) top neighbor
                    reads.append((regions[i - 1][j], last_row_offset, edge))
                if j > 0:    # right edge of the (updated) left neighbor
                    reads.append((regions[i][j - 1], last_row_offset, edge))
                if i < blocks - 1:   # top edge of the (old) bottom neighbor
                    reads.append((regions[i + 1][j], 0, edge))
                if j < blocks - 1:   # left edge of the (old) right neighbor
                    reads.append((regions[i][j + 1], 0, edge))
                program.spawn(
                    "seidel_block", compute_work,
                    reads=reads,
                    writes=[(regions[i][j], 0, config.block_bytes)],
                    metadata={"t": t, "i": i, "j": j})
    return program.finalize()
