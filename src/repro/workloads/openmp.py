"""An OpenMP 4.0-style dependent-task frontend.

The paper's conclusion notes Aftermath "is currently being ported to
other dependent tasking models, starting with OpenMP 4.0".  This module
provides that second frontend for the simulator: tasks declare
``depend(in: x)`` / ``depend(out: x)`` / ``depend(inout: x)`` clauses
over named variables, as in OpenMP, and the builder translates the
clauses into memory accesses on per-variable regions — after which the
usual last-writer derivation produces exactly OpenMP's task dependence
semantics (``in`` after ``out``; OpenMP's additional out-after-in and
out-after-out orderings hold structurally in the workloads below, see
:meth:`OpenMPProgram.task`).

Two classic recursive OpenMP workloads are included; both create tasks
*dynamically* (each task spawns its children), exercising the
simulator's creator chains rather than main-program creation:

* :func:`build_fibonacci` — the canonical ``fib(n)`` task benchmark;
* :func:`build_mergesort` — recursive divide, then dependent merges.
"""

from __future__ import annotations

from typing import Dict

from ..runtime.program import Program


class OpenMPProgram:
    """``#pragma omp task depend(...)`` over named variables."""

    def __init__(self, machine, name="openmp", memory=None,
                 variable_bytes=4096):
        self.program = Program(machine, memory=memory, name=name)
        self.variable_bytes = variable_bytes
        self._variables: Dict[str, object] = {}

    def variable(self, name, size=None):
        """Declare (or look up) a shared variable."""
        region = self._variables.get(name)
        if region is None:
            region = self.program.allocate(
                size if size is not None else self.variable_bytes,
                name=name)
            self._variables[name] = region
        return region

    def task(self, function, work, depend_in=(), depend_out=(),
             depend_inout=(), creator=None, counters=None,
             metadata=None):
        """Spawn a task with OpenMP-style depend clauses.

        ``depend_*`` are variable names.  ``inout`` reads and writes.
        Note: only flow (in-after-out) dependences are derived; the
        workloads in this module never rely on OpenMP's anti/output
        orderings (every variable has a unique writer), which keeps the
        translation exact.
        """
        reads = []
        writes = []
        for name in depend_in:
            region = self.variable(name)
            reads.append((region, 0, region.size))
        for name in depend_inout:
            region = self.variable(name)
            reads.append((region, 0, region.size))
            writes.append((region, 0, region.size))
        for name in depend_out:
            region = self.variable(name)
            writes.append((region, 0, region.size))
        return self.program.spawn(function, work, reads=reads,
                                  writes=writes, creator=creator,
                                  counters=counters, metadata=metadata)

    def finalize(self):
        return self.program.finalize()


def build_fibonacci(machine, n=10, task_cycles=20_000, cutoff=2):
    """``fib(n)`` with one task per call above the cutoff.

    Each ``fib(k)`` task creates its two children (dynamic creation)
    and a combine task that depends on both children's outputs.
    """
    omp = OpenMPProgram(machine, name="fibonacci")
    counter = [0]

    def fib(k, out, creator):
        if k < cutoff:
            return omp.task("fib_leaf", task_cycles // 2,
                            depend_out=[out], creator=creator,
                            metadata={"n": k})
        counter[0] += 1
        identity = counter[0]
        spawn = omp.task("fib_spawn", task_cycles // 4,
                         creator=creator, metadata={"n": k})
        left = "fib_{}_l".format(identity)
        right = "fib_{}_r".format(identity)
        fib(k - 1, left, spawn)
        fib(k - 2, right, spawn)
        return omp.task("fib_combine", task_cycles,
                        depend_in=[left, right], depend_out=[out],
                        creator=spawn, metadata={"n": k})
    fib(n, "fib_result", None)
    return omp.finalize()


def build_mergesort(machine, elements=1 << 16, leaf_elements=1 << 12,
                    cycles_per_element=6.0):
    """Recursive merge sort: sort tasks at the leaves, dependent merge
    tasks up the tree (a balanced reduction, unlike k-means' wide one).
    """
    omp = OpenMPProgram(machine, name="mergesort", variable_bytes=4096)
    counter = [0]

    def sort(count, out, creator):
        if count <= leaf_elements:
            omp.variable(out, max(count * 8, 1))
            return omp.task(
                "msort_leaf",
                int(cycles_per_element * count * 1.5),
                depend_out=[out], creator=creator,
                metadata={"elements": count})
        counter[0] += 1
        identity = counter[0]
        left = "run_{}_l".format(identity)
        right = "run_{}_r".format(identity)
        spawn = omp.task("msort_spawn", 2_000, creator=creator,
                         metadata={"elements": count})
        sort(count // 2, left, spawn)
        sort(count - count // 2, right, spawn)
        omp.variable(out, max(count * 8, 1))
        return omp.task("msort_merge",
                        int(cycles_per_element * count),
                        depend_in=[left, right], depend_out=[out],
                        creator=spawn, metadata={"elements": count})
    sort(elements, "sorted", None)
    return omp.finalize()
