"""The k-means benchmark: naive K-means clustering over blocked points.

Reproduces the OpenStream data-mining application of Sections III-C and
V: ``n`` multidimensional points are partitioned into ``m`` fixed-size
blocks; every iteration ``i`` runs one *distance-calculation* task
``k(i, j)`` per block, a tree-shaped *reduction* ``r(i, level, q)``
computing the new cluster centers and detecting termination, and a
tree-shaped *propagation* ``p(i, level, q)`` broadcasting the updated
centers to the next iteration's distance tasks — the task graph of
Fig. 11.

Dynamic task creation: the distance and reduction tasks of iteration
``i+1`` are created by the reduction root of iteration ``i`` (the task
that detects non-termination), so tiny blocks incur the task-management
overhead the paper observes for block sizes below 5000 points
(Section III-C, Fig. 13j).

Branch mispredictions (Section V): the inner loop conditionally updates
the nearest cluster, and the misprediction rate depends on the data in
each block.  Each block draws a per-point misprediction rate from a
small mixture (blocks whose points sit near cluster boundaries
mispredict more), yielding the multi-peak duration histogram of Fig. 16
and the linear duration/misprediction relationship of Fig. 19
(coefficient of determination 0.83).  ``optimize_branches=True`` applies
the paper's fix — the update is made unconditional and the check
hoisted out of the loop — collapsing both the mean and the spread.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..runtime.program import Program

DOUBLE = 8


@dataclass
class KmeansConfig:
    """Problem shape.  Paper values: ``num_points=4096 * 10**4``,
    ``dims=10``, ``clusters=11`` on the 64-core Opteron."""

    num_points: int = 1_024_000
    dims: int = 10
    clusters: int = 11
    block_size: int = 10_000
    iterations: int = 6
    reduction_arity: int = 4
    propagation_arity: int = 8
    cycles_per_point_base: float = 680.0   # distance computation per point
    mispredict_penalty: float = 20.0       # stall cycles per misprediction
    #: Per-point misprediction rates of the block mixture (Fig. 16 peaks).
    mispredict_modes: tuple = (4.0, 10.0, 16.0)
    mispredict_mode_sigma: float = 0.6
    duration_noise_sigma: float = 0.042     # relative noise on task work
    optimize_branches: bool = False
    optimized_mispredict_rate: float = 0.5
    tree_task_cycles: int = 4000
    init_cycles_per_point: float = 2.0
    seed: int = 42

    @property
    def num_blocks(self):
        return max(1, self.num_points // self.block_size)

    @property
    def block_bytes(self):
        return self.block_size * self.dims * DOUBLE

    @property
    def centers_bytes(self):
        return self.clusters * (self.dims + 1) * DOUBLE


def _tree_levels(count, arity):
    """Widths of a reduction tree from ``count`` leaves down to 1."""
    widths = []
    width = count
    while width > 1:
        width = (width + arity - 1) // arity
        widths.append(width)
    if not widths:
        widths.append(1)
    return widths


def build_kmeans(machine, config=None, memory=None):
    """Build the k-means task graph as a finalized :class:`Program`.

    ``memory`` optionally supplies a pre-configured
    :class:`MemoryManager` (e.g. with NUMA-oblivious placement).
    """
    config = config if config is not None else KmeansConfig()
    rng = random.Random(config.seed)
    program = Program(machine, memory=memory, name="kmeans")
    m = config.num_blocks

    points = [program.allocate(config.block_bytes,
                               name="points_{}".format(index))
              for index in range(m)]
    init_work = int(config.init_cycles_per_point * config.block_size)
    for index in range(m):
        program.spawn("kmeans_init", init_work,
                      writes=[(points[index], 0, config.block_bytes)])

    # Per-block misprediction behaviour is a property of the data, fixed
    # across iterations (each core executes long and short tasks,
    # Fig. 17): blocks near cluster boundaries mispredict more.
    if config.optimize_branches:
        block_rates = [config.optimized_mispredict_rate] * m
    else:
        block_rates = [max(0.1, rng.gauss(rng.choice(
            config.mispredict_modes), config.mispredict_mode_sigma))
            for _ in range(m)]

    initial_centers = program.allocate(config.centers_bytes,
                                       name="centers_initial")
    program.spawn(
        "kmeans_seed_centers", config.tree_task_cycles,
        writes=[(initial_centers, 0, config.centers_bytes)])
    creator = None    # iteration 0 tasks are created by the main program

    center_leaves = [initial_centers]   # regions the k-tasks read from
    for iteration in range(config.iterations):
        accums = []
        k_tasks = []
        for j in range(m):
            leaf = center_leaves[j % len(center_leaves)]
            accum = program.allocate(
                config.centers_bytes, name="accum_{}_{}".format(iteration, j))
            mispredictions = int(block_rates[j] * config.block_size)
            work = (config.cycles_per_point_base * config.block_size
                    + config.mispredict_penalty * mispredictions)
            work *= max(0.5, rng.gauss(1.0, config.duration_noise_sigma))
            task = program.spawn(
                "kmeans_distance", int(work),
                reads=[(points[j], 0, config.block_bytes),
                       (leaf, 0, config.centers_bytes)],
                writes=[(accum, 0, config.centers_bytes)],
                creator=creator,
                counters={"branch_mispredictions": mispredictions},
                metadata={"iteration": iteration, "block": j,
                          "mispredict_rate": block_rates[j]})
            accums.append(accum)
            k_tasks.append(task)

        # Reduction tree: combine per-block accumulators, compute the
        # new centers and detect termination at the root r0.
        level_regions = accums
        root_task = None
        for width in _tree_levels(m, config.reduction_arity):
            next_regions = []
            for q in range(width):
                children = level_regions[q * config.reduction_arity:
                                         (q + 1) * config.reduction_arity]
                out = program.allocate(
                    config.centers_bytes,
                    name="reduce_{}_{}_{}".format(iteration, width, q))
                root_task = program.spawn(
                    "kmeans_reduce", config.tree_task_cycles,
                    reads=[(child, 0, config.centers_bytes)
                           for child in children],
                    writes=[(out, 0, config.centers_bytes)],
                    creator=creator,
                    metadata={"iteration": iteration})
                next_regions.append(out)
            level_regions = next_regions
        new_centers = level_regions[0]

        # Propagation tree: broadcast the updated centers toward the
        # distance tasks of the next iteration.
        center_leaves = [new_centers]
        if iteration < config.iterations - 1:
            leaves_needed = max(1, (m + config.propagation_arity - 1)
                                // config.propagation_arity)
            frontier = [new_centers]
            while len(frontier) < leaves_needed:
                next_frontier = []
                for parent in frontier:
                    if len(next_frontier) >= leaves_needed:
                        next_frontier.append(parent)
                        continue
                    for __ in range(config.propagation_arity):
                        if len(next_frontier) >= leaves_needed:
                            break
                        copy = program.allocate(
                            config.centers_bytes,
                            name="prop_{}_{}".format(
                                iteration, len(next_frontier)))
                        program.spawn(
                            "kmeans_propagate", config.tree_task_cycles,
                            reads=[(parent, 0, config.centers_bytes)],
                            writes=[(copy, 0, config.centers_bytes)],
                            creator=root_task,
                            metadata={"iteration": iteration})
                        next_frontier.append(copy)
                frontier = next_frontier
            center_leaves = frontier
        # The next iteration's tasks are created dynamically by the
        # reduction root once it has detected non-termination.
        creator = root_task
    return program.finalize()
