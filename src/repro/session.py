"""Analysis sessions: the interactive state around a trace.

The GUI of the paper keeps per-analysis state beyond the trace itself:
the current zoom/scroll position, the active filters, the configured
derived metrics (Fig. 1 box 5) and the user's annotations (Section
VI-C, explicitly designed for sharing between colleagues).  An
:class:`AnalysisSession` bundles that state, provides navigation with
history (back/forward, like the GUI's zoom stack), and persists
everything *except the trace* to a JSON file — matching the paper's
point that annotations (and by extension the analysis setup) are
saved independently from the trace file.
"""

from __future__ import annotations

import json
from typing import List, Optional

from .core.annotations import Annotation, AnnotationStore
from .core.derived import DerivedMetricMenu
from .render.timeline import TimelineView


class AnalysisSession:
    """A trace plus the interactive state of one analysis."""

    FORMAT_VERSION = 1

    def __init__(self, trace, width=1024, height=256):
        self.trace = trace
        self.view = TimelineView.fit(trace, width, height)
        self.annotations = AnnotationStore()
        self.metrics = DerivedMetricMenu()
        self._history: List[TimelineView] = []
        self._future: List[TimelineView] = []

    @classmethod
    def open(cls, path, width=1024, height=256, cache=True):
        """Start a session straight from a trace file.

        The interactive loop wants time-to-first-pixel, so by default
        the trace is opened through the memory-mapped columnar cache
        (``read_trace(path, cache=True)``): the first open parses once
        and writes the ``.ostc`` sidecar, every later open maps it back
        in milliseconds.  ``cache=False`` parses into a (non-mapped)
        columnar store instead; either way the session holds a store
        every analysis and render entry point accepts.
        """
        from .trace_format import read_trace
        if cache:
            trace = read_trace(path, cache=cache)
        else:
            trace = read_trace(path, columnar=True)
        return cls(trace, width=width, height=height)

    # -- navigation ---------------------------------------------------
    def _move(self, view):
        self._history.append(self.view)
        self._future.clear()
        self.view = view
        return view

    def zoom(self, factor, center=None):
        """Zoom the timeline; the previous view goes on the history."""
        return self._move(self.view.zoom(factor, center))

    def scroll(self, fraction):
        return self._move(self.view.scroll(fraction))

    def goto(self, start, end):
        """Jump to an explicit interval (e.g. an anomaly's span)."""
        from dataclasses import replace
        return self._move(replace(self.view, start=int(start),
                                  end=int(end)))

    def back(self):
        """Undo the last navigation step; returns the restored view."""
        if not self._history:
            return self.view
        self._future.append(self.view)
        self.view = self._history.pop()
        return self.view

    def forward(self):
        if not self._future:
            return self.view
        self._history.append(self.view)
        self.view = self._future.pop()
        return self.view

    def reset_view(self):
        return self._move(TimelineView.fit(self.trace, self.view.width,
                                           self.view.height))

    # -- annotations ----------------------------------------------------
    def annotate(self, text, timestamp=None, core=None, author=""):
        """Drop an annotation at a timestamp (default: view center)."""
        if timestamp is None:
            timestamp = (self.view.start + self.view.end) // 2
        note = Annotation(timestamp=int(timestamp), text=text, core=core,
                          author=author)
        self.annotations.add(note)
        return note

    def visible_annotations(self):
        return self.annotations.in_interval(self.view.start,
                                            self.view.end)

    # -- anomaly-driven navigation ----------------------------------------
    def goto_anomaly(self, anomaly, margin=0.25):
        """Frame an :class:`Anomaly` with some context around it."""
        span = max(anomaly.end - anomaly.start, 1)
        pad = int(span * margin)
        return self.goto(anomaly.start - pad, anomaly.end + pad)

    # -- persistence ----------------------------------------------------
    def save(self, path):
        """Persist view, history, annotations and metric menu (not the
        trace) to a JSON session file."""
        payload = {
            "version": self.FORMAT_VERSION,
            "view": {"start": self.view.start, "end": self.view.end,
                     "width": self.view.width,
                     "height": self.view.height},
            "history": [{"start": view.start, "end": view.end}
                        for view in self._history],
            "annotations": [note.to_dict()
                            for note in self.annotations],
            "metrics": self.metrics.to_config(),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)

    @classmethod
    def load(cls, path, trace):
        """Restore a session file against a (re-)loaded trace."""
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("version") != cls.FORMAT_VERSION:
            raise ValueError("unsupported session file version")
        view = payload["view"]
        session = cls(trace, width=view["width"], height=view["height"])
        from dataclasses import replace
        session.view = replace(session.view, start=view["start"],
                               end=view["end"])
        session._history = [
            replace(session.view, start=entry["start"],
                    end=entry["end"])
            for entry in payload.get("history", [])
        ]
        session.annotations = AnnotationStore(
            Annotation.from_dict(entry)
            for entry in payload.get("annotations", []))
        session.metrics = DerivedMetricMenu.from_config(
            payload.get("metrics", {}))
        return session
