"""Analysis sessions: the interactive state around a trace.

The GUI of the paper keeps per-analysis state beyond the trace itself:
the current zoom/scroll position, the active filters, the configured
derived metrics (Fig. 1 box 5) and the user's annotations (Section
VI-C, explicitly designed for sharing between colleagues).  An
:class:`AnalysisSession` bundles that state, provides navigation with
history (back/forward, like the GUI's zoom stack), and persists
everything *except the trace* to a JSON file — matching the paper's
point that annotations (and by extension the analysis setup) are
saved independently from the trace file.

:class:`MultiTraceSession` lifts the same interaction onto N traces at
once: every navigation step is broadcast to all member sessions (so
the views stay in lockstep on one shared time axis), and the
comparison verbs of the experiment engine — side-by-side rendering
and baseline/candidate diff reports — operate on the members.

The session object is also the service boundary: the multi-tenant
server (:mod:`repro.service`) and ``aftermath_cli`` are two clients of
the same API.  The uniform verbs — :meth:`AnalysisSession.navigate`
(one dispatch point over zoom/scroll/goto/back/forward/reset),
:meth:`AnalysisSession.view_state`,
:meth:`AnalysisSession.statistics` and
:meth:`AnalysisSession.render_frame` — take and return
JSON-serializable values, so a request handler is a thin shell around
them.
"""

from __future__ import annotations

import json
from typing import List

from .core.annotations import Annotation, AnnotationStore
from .core.derived import DerivedMetricMenu
from .render.timeline import TimelineView


class AnalysisSession:
    """A trace plus the interactive state of one analysis."""

    FORMAT_VERSION = 1

    def __init__(self, trace, width=1024, height=256):
        self.trace = trace
        self.view = TimelineView.fit(trace, width, height)
        self.annotations = AnnotationStore()
        self.metrics = DerivedMetricMenu()
        self._history: List[TimelineView] = []
        self._future: List[TimelineView] = []

    @classmethod
    def open(cls, path, width=1024, height=256, cache=True):
        """Start a session straight from a trace file.

        The interactive loop wants time-to-first-pixel, so by default
        the trace is opened through the memory-mapped columnar cache
        (``read_trace(path, cache=True)``): the first open parses once
        and writes the ``.ostc`` sidecar, every later open maps it back
        in milliseconds.  ``cache=False`` parses into a (non-mapped)
        columnar store instead; either way the session holds a store
        every analysis and render entry point accepts.
        """
        from .trace_format import read_trace
        if cache:
            trace = read_trace(path, cache=cache)
        else:
            trace = read_trace(path, columnar=True)
        return cls(trace, width=width, height=height)

    # -- navigation ---------------------------------------------------
    def _move(self, view):
        self._history.append(self.view)
        self._future.clear()
        self.view = view
        return view

    def zoom(self, factor, center=None):
        """Zoom the timeline; the previous view goes on the history."""
        return self._move(self.view.zoom(factor, center))

    def scroll(self, fraction):
        """Scroll by a fraction of the window (negative = left)."""
        return self._move(self.view.scroll(fraction))

    def goto(self, start, end):
        """Jump to an explicit interval (e.g. an anomaly's span)."""
        from dataclasses import replace
        return self._move(replace(self.view, start=int(start),
                                  end=int(end)))

    def back(self):
        """Undo the last navigation step; returns the restored view."""
        if not self._history:
            return self.view
        self._future.append(self.view)
        self.view = self._history.pop()
        return self.view

    def forward(self):
        """Redo the navigation step :meth:`back` undid."""
        if not self._future:
            return self.view
        self._history.append(self.view)
        self.view = self._future.pop()
        return self.view

    def reset_view(self):
        """Return to the whole-trace fit view (a history step)."""
        return self._move(TimelineView.fit(self.trace, self.view.width,
                                           self.view.height))

    # -- the uniform session API (CLI + service) ----------------------
    #: Navigation verbs :meth:`navigate` dispatches, with the
    #: parameter names each one accepts.
    NAVIGATION_ACTIONS = {
        "zoom": ("factor", "center"), "scroll": ("fraction",),
        "goto": ("start", "end"), "back": (), "forward": (),
        "reset": (),
    }

    def navigate(self, action, **params):
        """One dispatch point over the navigation verbs.

        ``action`` is a key of :data:`NAVIGATION_ACTIONS`;  ``params``
        are that verb's arguments (e.g. ``factor``/``center`` for
        ``zoom``).  Remote clients and the CLI funnel through here so
        both speak exactly the same vocabulary.  Returns the new view;
        raises ``ValueError`` on an unknown action and ``KeyError`` on
        a missing required parameter.
        """
        if action == "zoom":
            return self.zoom(params["factor"], params.get("center"))
        if action == "scroll":
            return self.scroll(params["fraction"])
        if action == "goto":
            return self.goto(params["start"], params["end"])
        if action == "back":
            return self.back()
        if action == "forward":
            return self.forward()
        if action == "reset":
            return self.reset_view()
        raise ValueError("unknown navigation action {!r}; valid: {}"
                         .format(action,
                                 ", ".join(self.NAVIGATION_ACTIONS)))

    def view_state(self):
        """The current view as a JSON-serializable dict."""
        return {"start": int(self.view.start),
                "end": int(self.view.end),
                "width": int(self.view.width),
                "height": int(self.view.height)}

    def statistics(self, start=None, end=None):
        """The interval-statistics panel as a JSON-serializable dict.

        Defaults to the session's current view window (pass
        ``start``/``end`` for an explicit interval).  State ids are
        spelled out as :class:`~repro.core.WorkerState` names, so the
        payload is self-describing across the wire.
        """
        from .core import WorkerState, interval_report
        start = self.view.start if start is None else int(start)
        end = self.view.end if end is None else int(end)
        report = interval_report(self.trace, start, end)
        return {"start": int(report.start), "end": int(report.end),
                "tasks": int(report.tasks),
                "average_parallelism":
                    round(float(report.average_parallelism), 6),
                "locality": round(float(report.locality), 6),
                "state_cycles": {
                    WorkerState(state).name.lower(): int(cycles)
                    for state, cycles
                    in sorted(report.state_cycles.items())}}

    def render_frame(self, mode="state"):
        """Rasterize the current view into a fresh framebuffer.

        ``mode`` is a timeline-mode name from
        :func:`repro.render.timeline_mode` (``state``, ``heatmap``,
        ``typemap``, ``numa-read``, ``numa-write``, ``numa-heatmap``)
        or an already-built mode object.  Returns the
        :class:`~repro.render.Framebuffer`.
        """
        from .render import render_timeline, timeline_mode
        if isinstance(mode, str):
            mode = timeline_mode(mode)
        return render_timeline(self.trace, mode, self.view)

    # -- overview -------------------------------------------------------
    def overview(self, width=256):
        """A whole-trace dominant-state strip per core from the state
        pyramid tiles.

        Returns ``(edges, dominant, events)``: tile edge timestamps
        (length ``tiles + 1``), an ``(num_cores, tiles)`` matrix of
        dominant state ids (-1 = idle/unindexed) and the matching
        matrix of event counts (state intervals starting per tile).
        The tile level is the coarsest with at least ``width`` tiles,
        so on a memory-mapped trace this reads only the persisted tile
        blobs — the minimap never scans an event lane.
        """
        import numpy as np
        trace = self.trace
        rows, counts, level = [], [], None
        edges = None
        for core in range(trace.num_cores):
            tiles = trace.state_tiles(core)
            if tiles is None or not tiles.levels:
                rows.append(None)
                counts.append(None)
                continue
            if level is None:
                level = tiles.level_for_width(width)
                edges = tiles.edges(level)
            rows.append(tiles.dominant(level))
            counts.append(tiles.event_counts(level))
        if edges is None:
            # No indexable lane (or a sub-16-cycle trace): one tile
            # spanning everything, nothing dominant.
            edges = np.asarray([trace.begin, max(trace.end,
                                                 trace.begin + 1)],
                               dtype=np.int64)
        tiles_per_row = len(edges) - 1
        dominant = np.full((trace.num_cores, tiles_per_row), -1,
                           dtype=np.int64)
        events = np.zeros((trace.num_cores, tiles_per_row),
                          dtype=np.int64)
        for core in range(trace.num_cores):
            if rows[core] is not None and len(rows[core]) == tiles_per_row:
                dominant[core] = rows[core]
                events[core] = counts[core]
        return edges, dominant, events

    # -- annotations ----------------------------------------------------
    def annotate(self, text, timestamp=None, core=None, author=""):
        """Drop an annotation at a timestamp (default: view center)."""
        if timestamp is None:
            timestamp = (self.view.start + self.view.end) // 2
        note = Annotation(timestamp=int(timestamp), text=text, core=core,
                          author=author)
        self.annotations.add(note)
        return note

    def visible_annotations(self):
        """The annotations inside the current view window."""
        return self.annotations.in_interval(self.view.start,
                                            self.view.end)

    # -- anomaly-driven navigation ----------------------------------------
    def goto_anomaly(self, anomaly, margin=0.25):
        """Frame an :class:`Anomaly` with some context around it."""
        span = max(anomaly.end - anomaly.start, 1)
        pad = int(span * margin)
        return self.goto(anomaly.start - pad, anomaly.end + pad)

    # -- persistence ----------------------------------------------------
    def save(self, path):
        """Persist view, history, annotations and metric menu (not the
        trace) to a JSON session file."""
        payload = {
            "version": self.FORMAT_VERSION,
            "view": {"start": self.view.start, "end": self.view.end,
                     "width": self.view.width,
                     "height": self.view.height},
            "history": [{"start": view.start, "end": view.end}
                        for view in self._history],
            "annotations": [note.to_dict()
                            for note in self.annotations],
            "metrics": self.metrics.to_config(),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)

    @classmethod
    def load(cls, path, trace):
        """Restore a session file against a (re-)loaded trace."""
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("version") != cls.FORMAT_VERSION:
            raise ValueError("unsupported session file version")
        view = payload["view"]
        session = cls(trace, width=view["width"], height=view["height"])
        from dataclasses import replace
        session.view = replace(session.view, start=view["start"],
                               end=view["end"])
        session._history = [
            replace(session.view, start=entry["start"],
                    end=entry["end"])
            for entry in payload.get("history", [])
        ]
        session.annotations = AnnotationStore(
            Annotation.from_dict(entry)
            for entry in payload.get("annotations", []))
        session.metrics = DerivedMetricMenu.from_config(
            payload.get("metrics", {}))
        return session


class MultiTraceSession:
    """N traces under one synchronized interactive session.

    Each trace keeps its own :class:`AnalysisSession` (annotations,
    metric menus and history stay per trace), but navigation is
    broadcast: a zoom or scroll moves every member to the same
    ``[start, end)`` window of one shared time axis — the union of the
    member traces' time ranges — which is what makes side-by-side
    comparison panels line up.  The comparison verbs delegate to the
    experiment engine (:mod:`repro.analysis.experiments`).
    """

    def __init__(self, traces, names=None, width=1024, height=256):
        traces = list(traces)
        if not traces:
            raise ValueError("need at least one trace")
        names = (list(names) if names is not None
                 else ["trace_{}".format(i) for i in range(len(traces))])
        if len(names) != len(traces):
            raise ValueError("one name per trace required")
        self.names = names
        self.sessions = [AnalysisSession(trace, width=width,
                                         height=height)
                         for trace in traces]
        self.begin = min(int(trace.begin) for trace in traces)
        self.end = max(int(trace.end) for trace in traces)
        self.goto(self.begin, self.end)
        # The shared full-range window is the base state: drop the
        # per-member fit views the constructor pushed, so back() can
        # never pop members onto divergent (un-broadcast) views.
        for session in self.sessions:
            session._history.clear()
            session._future.clear()

    @classmethod
    def open(cls, paths, width=1024, height=256, cache=True):
        """Start a synchronized session over N trace files, each
        opened through the memory-mapped columnar cache by default
        (the :meth:`AnalysisSession.open` fast path, once per file)."""
        import os
        from .trace_format import read_trace
        traces = [read_trace(str(path), cache=True) if cache
                  else read_trace(str(path), columnar=True)
                  for path in paths]
        names = [os.path.splitext(os.path.basename(str(path)))[0]
                 for path in paths]
        return cls(traces, names=names, width=width, height=height)

    def __len__(self):
        return len(self.sessions)

    @property
    def traces(self):
        """The member traces, in session order."""
        return [session.trace for session in self.sessions]

    @property
    def view(self):
        """The shared view (every member holds an identical window)."""
        return self.sessions[0].view

    # -- broadcast navigation -----------------------------------------
    def goto(self, start, end):
        """Move every member to the ``[start, end)`` window."""
        for session in self.sessions:
            session.goto(start, end)
        return self.view

    def zoom(self, factor, center=None):
        """Zoom all members around one shared center."""
        reference = self.sessions[0].view.zoom(factor, center)
        return self.goto(reference.start, reference.end)

    def scroll(self, fraction):
        """Scroll all members by the same fraction of the window."""
        reference = self.sessions[0].view.scroll(fraction)
        return self.goto(reference.start, reference.end)

    def back(self):
        """Undo the last broadcast navigation step on every member."""
        for session in self.sessions:
            session.back()
        return self.view

    def reset_view(self):
        """Return every member to the shared full time range."""
        return self.goto(self.begin, self.end)

    # -- comparison verbs ---------------------------------------------
    def compare(self, baseline=0, candidate=1, tolerances=None):
        """Diff one member against another (indices or names);
        returns the machine-readable
        :class:`~repro.analysis.experiments.diff.TraceDiffReport`."""
        from .analysis.experiments import diff_traces
        baseline = self._resolve(baseline)
        candidate = self._resolve(candidate)
        return diff_traces(self.sessions[baseline].trace,
                           self.sessions[candidate].trace,
                           tolerances=tolerances,
                           baseline_name=self.names[baseline],
                           candidate_name=self.names[candidate])

    def render_comparison(self, mode=None, width=None, lane_height=4):
        """Side-by-side strips of every member over the current
        (shared) view window."""
        from .analysis.experiments import render_timelines_side_by_side
        view = self.view
        return render_timelines_side_by_side(
            self.traces, mode=mode,
            width=view.width if width is None else width,
            lane_height=lane_height, start=view.start, end=view.end)

    def _resolve(self, member):
        """A member index from an index or a session name."""
        if isinstance(member, str):
            return self.names.index(member)
        member = int(member)
        if not 0 <= member < len(self.sessions):
            raise ValueError(
                "no member {} in a session of {} trace(s)".format(
                    member, len(self.sessions)))
        return member
