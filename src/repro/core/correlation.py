"""Correlating performance indicators (Section V).

Aftermath attributes the increase of monotonically increasing hardware
counters to individual tasks (the counters are sampled immediately
before and after each task execution), exports the per-task values
together with task durations — honoring the active filters — and the
actual correlation test is carried out with a statistics package
(the paper uses SciPy, as do we): a least-squares linear regression
whose coefficient of determination quantifies the relationship
(Fig. 19: R^2 = 0.83 between task duration and branch mispredictions).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass

import numpy as np
from scipy import stats

from .filters import filtered_tasks


def counter_increase_per_task(trace, counter, task_filter=None):
    """Increase of a monotone counter across each task execution.

    Returns ``(columns, increases)`` where ``columns`` are the filtered
    task-execution columns and ``increases[i]`` is the counter increase
    attributed to task ``i`` (difference between the samples taken at
    the task's end and start on its core).

    Vectorized: tasks are grouped by core and each group's start/end
    sample positions come from two batched ``searchsorted`` calls over
    that core's sorted sample lane — the per-task scalar loop survives
    as the parity reference in
    :func:`repro.core.reference.counter_increase_per_task`.
    """
    counter_id = (trace.counter_id(counter) if isinstance(counter, str)
                  else counter)
    columns = filtered_tasks(trace, task_filter)
    increases = np.zeros(len(columns["task_id"]), dtype=np.float64)
    cores = columns["core"]
    for core in np.unique(cores):
        timestamps, values = trace.counter_samples(int(core), counter_id)
        if len(timestamps) == 0:
            continue
        selected = cores == core
        lo = np.searchsorted(timestamps, columns["start"][selected],
                             side="left")
        hi = np.searchsorted(timestamps, columns["end"][selected],
                             side="right") - 1
        lo = np.minimum(lo, len(values) - 1)
        hi = np.clip(hi, lo, len(values) - 1)
        increases[selected] = values[hi] - values[lo]
    return columns, increases


def counter_rate_per_task(trace, counter, task_filter=None, per=1000):
    """Counter increase per ``per`` cycles of task duration (the paper
    reports branch mispredictions per kilocycle)."""
    columns, increases = counter_increase_per_task(trace, counter,
                                                   task_filter)
    durations = (columns["end"] - columns["start"]).astype(np.float64)
    rates = np.divide(increases * per, durations,
                      out=np.zeros_like(increases), where=durations > 0)
    return columns, rates


@dataclass
class RegressionResult:
    """Least-squares fit y = slope * x + intercept."""

    slope: float
    intercept: float
    r_squared: float
    p_value: float
    samples: int

    def predict(self, x):
        """Fitted value at ``x`` (slope * x + intercept)."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    def describe(self):
        """One-line fit summary (slope, r^2, sample count)."""
        return ("y = {:.4g} * x + {:.4g}  (R^2 = {:.3f}, p = {:.2g}, "
                "n = {})".format(self.slope, self.intercept,
                                 self.r_squared, self.p_value,
                                 self.samples))


def linear_regression(x, y):
    """Least-squares regression with coefficient of determination."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) < 2:
        raise ValueError("need at least two samples for a regression")
    fit = stats.linregress(x, y)
    return RegressionResult(slope=float(fit.slope),
                            intercept=float(fit.intercept),
                            r_squared=float(fit.rvalue) ** 2,
                            p_value=float(fit.pvalue), samples=len(x))


def duration_vs_counter_rate(trace, counter, task_filter=None, per=1000):
    """The Fig. 19 scatter: ``(rates, durations, regression)``.

    ``rates`` is the per-task counter increase per ``per`` cycles,
    ``durations`` the task durations; the regression fits duration as a
    function of the rate.
    """
    columns, rates = counter_rate_per_task(trace, counter, task_filter,
                                           per=per)
    durations = (columns["end"] - columns["start"]).astype(np.float64)
    regression = linear_regression(rates, durations)
    return rates, durations, regression


def export_task_table(trace, path, counters=(), task_filter=None):
    """Export per-task data for external statistical analysis.

    Writes a CSV with one row per (filtered) task: id, type name, core,
    start, duration, and the attributed increase of every counter in
    ``counters``.  This is the paper's export path feeding SciPy; the
    filter mechanism applies to the exported data as well.
    Returns the number of rows written.
    """
    columns = filtered_tasks(trace, task_filter)
    increases = {}
    for counter in counters:
        __, values = counter_increase_per_task(trace, counter, task_filter)
        increases[counter] = values
    type_names = {info.type_id: info.name for info in trace.task_types}
    # Convert each column to Python scalars once; per-row numpy
    # indexing dominated the export of large filtered task tables.
    names = [type_names.get(type_id, "?")
             for type_id in columns["type_id"].tolist()]
    fields = [columns["task_id"].tolist(), names,
              columns["core"].tolist(), columns["start"].tolist(),
              (columns["end"] - columns["start"]).tolist()]
    fields.extend(increases[counter].tolist() for counter in counters)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["task_id", "type", "core", "start", "duration"]
                        + list(counters))
        writer.writerows(zip(*fields))
    return len(columns["task_id"])
