"""User annotations (Section VI-C).

Trace analysis can be time-consuming and collaborative; Aftermath lets
users record annotations tied to a position in the trace and saves them
*independently from the trace file*, so they can be loaded again in a
later analysis session or shared with colleagues.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional


@dataclass
class Annotation:
    """A user note anchored to a core and a timestamp."""

    timestamp: int
    text: str
    core: Optional[int] = None
    author: str = ""

    def to_dict(self):
        """JSON-pure dict form (what the session file stores)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild an annotation from its :meth:`to_dict` payload."""
        return cls(timestamp=int(data["timestamp"]), text=data["text"],
                   core=data.get("core"), author=data.get("author", ""))


class AnnotationStore:
    """An ordered collection of annotations with JSON persistence."""

    FORMAT_VERSION = 1

    def __init__(self, annotations=()):
        self._annotations: List[Annotation] = list(annotations)
        self._sort()

    def _sort(self):
        self._annotations.sort(key=lambda note: (note.timestamp,
                                                 note.core or -1))

    def __len__(self):
        return len(self._annotations)

    def __iter__(self):
        return iter(self._annotations)

    def add(self, annotation):
        """Insert one annotation, keeping the store timestamp-sorted."""
        self._annotations.append(annotation)
        self._sort()

    def remove(self, annotation):
        """Delete one annotation (identity match)."""
        self._annotations.remove(annotation)

    def in_interval(self, start, end, core=None):
        """Annotations inside [start, end), optionally on one core."""
        return [note for note in self._annotations
                if start <= note.timestamp < end
                and (core is None or note.core == core)]

    def save(self, path):
        """Persist to a JSON file separate from the trace."""
        payload = {"version": self.FORMAT_VERSION,
                   "annotations": [note.to_dict()
                                   for note in self._annotations]}
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)

    @classmethod
    def load(cls, path):
        """Read a store back from a :meth:`save` JSON file."""
        with open(path) as handle:
            payload = json.load(handle)
        version = payload.get("version")
        if version != cls.FORMAT_VERSION:
            raise ValueError("unsupported annotation file version: {!r}"
                             .format(version))
        return cls(Annotation.from_dict(entry)
                   for entry in payload["annotations"])
