"""Object-model reference implementations of the statistics views.

Every function here computes a statistic by iterating the per-event
dataclasses (:meth:`Trace.state_intervals`,
:meth:`Trace.task_executions`, ...) in plain Python — no vectorization,
no cleverness.  They are the *executable specification* of the
vectorized implementations in :mod:`repro.core.statistics`:

* the parity tests (``tests/test_columnar_parity.py``) assert the
  vectorized results are exactly equal to these, on both the object
  store (:class:`~repro.core.trace.Trace`) and the columnar store
  (:class:`~repro.core.columnar.ColumnarTrace`);
* the benchmarks use them as the object-model baseline the columnar
  hot paths are measured against
  (``benchmarks/bench_ext_outofcore.py``).

All aggregates are integer sums, so "exactly equal" means bit-identical
— including the final float divisions, which divide the same integers
in the same order as the vectorized code.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def state_time_summary(trace, start=None, end=None):
    """Per-state cycle totals, one dataclass at a time (the reference
    for :func:`repro.core.statistics.state_time_summary`)."""
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    totals: Dict[int, int] = {}
    for interval in trace.state_intervals():
        overlap = min(interval.end, end) - max(interval.start, start)
        if overlap > 0:
            totals[interval.state] = (totals.get(interval.state, 0)
                                      + overlap)
    return totals


def per_core_state_time(trace, state, start=None, end=None):
    """Reference for :func:`repro.core.statistics.per_core_state_time`."""
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    result = np.zeros(trace.num_cores, dtype=np.int64)
    for interval in trace.state_intervals():
        if interval.state != int(state):
            continue
        overlap = min(interval.end, end) - max(interval.start, start)
        if overlap > 0:
            result[interval.core] += overlap
    return result


def average_parallelism(trace, start=None, end=None):
    """Reference for :func:`repro.core.statistics.average_parallelism`."""
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    if end <= start:
        return 0.0
    busy = 0
    for execution in trace.task_executions():
        overlap = min(execution.end, end) - max(execution.start, start)
        if overlap > 0:
            busy += overlap
    return float(busy) / float(end - start)


def task_duration_histogram(trace, bins=20, start=None, end=None,
                            value_range=None):
    """Reference for
    :func:`repro.core.statistics.task_duration_histogram` (without the
    filter combinators: the window is the plain interval overlap).

    Durations are gathered per task object; the binning itself reuses
    ``np.histogram`` on the gathered array, so the comparison isolates
    the event-iteration cost and the results stay bit-identical.
    """
    window = None
    if start is not None or end is not None:
        window = (trace.begin if start is None else start,
                  trace.end if end is None else end)
    durations = []
    for execution in trace.task_executions():
        if window is not None and not (execution.start < window[1]
                                       and execution.end > window[0]):
            continue
        durations.append(execution.duration)
    durations = np.asarray(durations, dtype=np.float64)
    counts, edges = np.histogram(durations, bins=bins, range=value_range)
    total = counts.sum()
    fractions = counts / total if total else counts.astype(np.float64)
    return edges, fractions


def task_duration_stats(trace):
    """Reference for :func:`repro.core.metrics.task_duration_stats`
    (unfiltered)."""
    durations = np.asarray(
        [execution.duration for execution in trace.task_executions()],
        dtype=np.float64)
    if len(durations) == 0:
        return 0.0, 0.0
    return float(durations.mean()), float(durations.std())


def steal_matrix(trace, start=None, end=None):
    """Reference for :func:`repro.core.statistics.steal_matrix`."""
    cores = trace.num_cores
    matrix = np.zeros((cores, cores), dtype=np.int64)
    for event in trace.comm_events():
        if start is not None and event.timestamp < start:
            continue
        if end is not None and event.timestamp >= end:
            continue
        matrix[event.src_core, event.dst_core] += 1
    return matrix


def counter_increase_per_task(trace, counter, task_filter=None):
    """Reference for
    :func:`repro.core.correlation.counter_increase_per_task`: one
    scalar ``searchsorted`` pair per task, exactly the original
    per-task loop."""
    from .filters import filtered_tasks
    counter_id = (trace.counter_id(counter) if isinstance(counter, str)
                  else counter)
    columns = filtered_tasks(trace, task_filter)
    increases = np.zeros(len(columns["task_id"]), dtype=np.float64)
    per_core = {}
    for index in range(len(increases)):
        core = int(columns["core"][index])
        series = per_core.get(core)
        if series is None:
            series = per_core[core] = trace.counter_samples(core,
                                                            counter_id)
        timestamps, values = series
        if len(timestamps) == 0:
            continue
        lo = np.searchsorted(timestamps, columns["start"][index],
                             side="left")
        hi = np.searchsorted(timestamps, columns["end"][index],
                             side="right") - 1
        lo = min(max(lo, 0), len(values) - 1)
        hi = min(max(hi, lo), len(values) - 1)
        increases[index] = values[hi] - values[lo]
    return columns, increases


def counter_value_bounds(trace, counter_id, cores=None):
    """Reference for :func:`repro.render.counter_overlay.value_bounds`:
    rescan every sample of every requested core on each call (the
    per-frame waste the memoized min/max trees eliminate)."""
    cores = range(trace.num_cores) if cores is None else cores
    minimum, maximum = np.inf, -np.inf
    for core in cores:
        __, values = trace.counter_samples(core, counter_id)
        if len(values):
            minimum = min(minimum, float(values.min()))
            maximum = max(maximum, float(values.max()))
    if not np.isfinite(minimum):
        return 0.0, 1.0
    if maximum <= minimum:
        maximum = minimum + 1.0
    return minimum, maximum


def detect_locality_anomalies(trace, num_intervals=20, threshold=0.4):
    """Reference for
    :func:`repro.core.anomalies.detect_locality_anomalies`: one full
    :func:`~repro.core.numa.average_remote_fraction` pass per bin."""
    from .anomalies import Anomaly
    from .metrics import interval_edges
    from .numa import average_remote_fraction
    edges = interval_edges(trace, num_intervals)
    anomalies = []
    for index in range(num_intervals):
        start, end = int(edges[index]), int(edges[index + 1])
        remote = average_remote_fraction(trace, start=start, end=end)
        if remote >= threshold:
            anomalies.append(Anomaly(
                kind="poor-locality", severity=remote, start=start,
                end=end,
                description="{:.0%} of accessed bytes are remote"
                .format(remote)))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


def detect_load_imbalance(trace, num_intervals=10, threshold=0.25):
    """Reference for
    :func:`repro.core.anomalies.detect_load_imbalance`: one full
    :func:`~repro.core.statistics.per_core_state_time` scan per bin."""
    from .anomalies import Anomaly
    from .events import WorkerState
    from .metrics import interval_edges
    from .statistics import per_core_state_time
    edges = interval_edges(trace, num_intervals)
    anomalies = []
    for index in range(num_intervals):
        start, end = int(edges[index]), int(edges[index + 1])
        busy = per_core_state_time(trace, WorkerState.RUNNING, start,
                                   end).astype(np.float64)
        if busy.sum() == 0:
            continue
        cv = float(busy.std() / busy.mean()) if busy.mean() else 0.0
        if cv >= threshold:
            laggards = [int(core) for core in
                        np.flatnonzero(busy < busy.mean() / 2)]
            anomalies.append(Anomaly(
                kind="load-imbalance", severity=cv, start=start, end=end,
                cores=laggards or None,
                description="per-core busy time varies (CV {:.2f}); "
                "{} cores under half the mean".format(cv,
                                                      len(laggards))))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


def communication_matrix(trace, start=None, end=None, normalize=True,
                         kind="any"):
    """Reference for
    :func:`repro.core.statistics.communication_matrix`: one
    :meth:`node_of_address` lookup per access."""
    nodes = trace.topology.num_nodes
    matrix = np.zeros((nodes, nodes), dtype=np.float64)
    for access in trace.memory_accesses():
        if kind == "read" and access.is_write:
            continue
        if kind == "write" and not access.is_write:
            continue
        if start is not None and access.timestamp < start:
            continue
        if end is not None and access.timestamp >= end:
            continue
        src = trace.node_of_address(access.address)
        if src is None:
            continue
        dst = access.core // trace.topology.cores_per_node
        matrix[src, dst] += access.size
    if normalize and matrix.sum() > 0:
        matrix /= matrix.sum()
    return matrix
