"""N-ary min/max search tree for performance counters (Section VI-B-c).

For each performance counter and each core, Aftermath builds an n-ary
search tree that answers "minimum and maximum counter value in any
interval" without scanning every sample — the key optimization behind
fast counter rendering (each horizontal pixel needs exactly the min and
max of its time sub-interval, Fig. 21).

The paper uses a default arity of 100, which keeps the tree's memory
overhead below 5 % of the sample data itself (the node count of a
geometric series with ratio 1/100 is ~1.01 % of the leaves).
"""

from __future__ import annotations

import numpy as np

DEFAULT_ARITY = 100


class MinMaxTree:
    """Range-min/max over a fixed array of samples.

    ``values`` is the leaf level; each internal level stores the min and
    max of ``arity`` children.  Queries run in O(arity * log_arity(n)).
    """

    def __init__(self, values, arity=DEFAULT_ARITY):
        if arity < 2:
            raise ValueError("arity must be at least 2")
        self.arity = arity
        leaves = np.asarray(values, dtype=np.float64)
        self._mins = [leaves]
        self._maxs = [leaves]
        while len(self._mins[-1]) > 1:
            self._mins.append(self._reduce(self._mins[-1], np.fmin))
            self._maxs.append(self._reduce(self._maxs[-1], np.fmax))

    def _reduce(self, level, combine):
        count = len(level)
        parents = (count + self.arity - 1) // self.arity
        padded = np.full(parents * self.arity, level[0], dtype=np.float64)
        padded[:count] = level
        # Pad the tail with the last value so padding never wins min/max.
        padded[count:] = level[-1]
        reshaped = padded.reshape(parents, self.arity)
        return combine.reduce(reshaped, axis=1)

    def __len__(self):
        return len(self._mins[0])

    @property
    def levels(self):
        return len(self._mins)

    def overhead_fraction(self):
        """Tree nodes as a fraction of the leaf count (paper: <= 5 %)."""
        leaves = len(self._mins[0])
        if leaves == 0:
            return 0.0
        internal = sum(len(level) for level in self._mins[1:])
        return internal / leaves

    def query(self, lo, hi):
        """(min, max) of ``values[lo:hi]``; raises on an empty range."""
        if lo < 0 or hi > len(self) or lo >= hi:
            raise ValueError("invalid query range [{}, {})".format(lo, hi))
        minimum = np.inf
        maximum = -np.inf
        level = 0
        arity = self.arity
        while lo < hi:
            mins = self._mins[level]
            maxs = self._maxs[level]
            # Consume leading elements until lo is block-aligned.
            while lo % arity != 0 and lo < hi:
                minimum = min(minimum, mins[lo])
                maximum = max(maximum, maxs[lo])
                lo += 1
            # Consume trailing elements until hi is block-aligned.
            while hi % arity != 0 and lo < hi:
                hi -= 1
                minimum = min(minimum, mins[hi])
                maximum = max(maximum, maxs[hi])
            lo //= arity
            hi //= arity
            level += 1
        return float(minimum), float(maximum)


class CounterIndex:
    """Per-(core, counter) min/max trees for a whole trace, built lazily
    on first use (the paper builds them at load time; lazy construction
    gives the same complexity without penalizing unused counters)."""

    def __init__(self, trace, arity=DEFAULT_ARITY):
        self.trace = trace
        self.arity = arity
        self._trees = {}

    def tree(self, core, counter_id):
        key = (core, counter_id)
        tree = self._trees.get(key)
        if tree is None:
            __, values = self.trace.counter_samples(core, counter_id)
            tree = MinMaxTree(values, arity=self.arity)
            self._trees[key] = tree
        return tree

    def query_time_range(self, core, counter_id, start, end):
        """(min, max) of a counter on a core within the half-open time
        interval [start, end), or ``None`` if it contains no samples."""
        timestamps, __ = self.trace.counter_samples(core, counter_id)
        lo = int(np.searchsorted(timestamps, start, side="left"))
        hi = int(np.searchsorted(timestamps, end, side="left"))
        if lo >= hi:
            return None
        return self.tree(core, counter_id).query(lo, hi)
